"""Scalar/vectorised parity for the query engine, and incremental top-k.

The query-engine contract: every batch query path is bit-identical to the
scalar loop it replaces —

* ``estimate_many(users)`` == ``[estimate(u) for u in users]`` for all six
  methods, plain, sharded and snapshot-restored;
* ``estimate_fresh_many(users)`` == per-user ``estimate_fresh`` for the
  shared-sketch methods (CSE/vHLL), including on a restored estimator whose
  positions cache starts empty;
* the monitor's incremental top-k equals a full stable re-sort of the
  sliding-window estimates after arbitrary ingest/rotation sequences;
* ``ReadSnapshot.batch_spread``'s columnar integer fast path equals the
  per-user ``spread`` loop, hits and misses alike.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import CSE, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.core.batch import FreeBSBatch, FreeRSBatch
from repro.core.freebs import FreeBS
from repro.core.freers import FreeRS
from repro.core.serialization import dumps, loads
from repro.engine import ShardedEstimator
from repro.monitor import MonitorSpec, TopKTracker
from repro.streams import zipf_bipartite_stream

_SETTINGS = settings(max_examples=20, deadline=None)


def _factories():
    return {
        "FreeBS": lambda seed=3: FreeBS(1 << 12, seed=seed),
        "FreeRS": lambda seed=3: FreeRS(1 << 10, seed=seed),
        "CSE": lambda seed=3: CSE(1 << 13, virtual_size=64, seed=seed),
        "vHLL": lambda seed=3: VirtualHLL(1 << 12, virtual_size=64, seed=seed),
        "LPC": lambda seed=3: PerUserLPC(1 << 15, expected_users=40, seed=seed),
        "HLL++": lambda seed=3: PerUserHLLPP(1 << 15, expected_users=40, seed=seed),
        "FreeBS(batch)": lambda seed=3: FreeBSBatch(1 << 12, seed=seed),
        "FreeRS(batch)": lambda seed=3: FreeRSBatch(1 << 10, seed=seed),
    }


_METHOD_NAMES = list(_factories())


@pytest.fixture(scope="module")
def stream():
    return zipf_bipartite_stream(
        n_users=60, n_pairs=4_000, max_cardinality=400, duplicate_factor=0.3, seed=11
    )


def _query_users(stream):
    """Seen users plus unseen ids plus int/str-shaped near-misses."""
    seen = list(dict.fromkeys(user for user, _ in stream))
    return seen + [10**9, -5, "no-such-user", str(seen[0]), 10**20]


class TestEstimateManyParity:
    @pytest.mark.parametrize("name", _METHOD_NAMES)
    def test_plain(self, stream, name):
        estimator = _factories()[name]()
        estimator.process(stream)
        users = _query_users(stream)
        assert estimator.estimate_many(users) == [
            estimator.estimate(user) for user in users
        ]

    @pytest.mark.parametrize("name", ["FreeBS", "FreeRS", "CSE", "vHLL", "LPC", "HLL++"])
    def test_sharded(self, stream, name):
        factory = _factories()[name]
        estimator = ShardedEstimator(lambda _k: factory(seed=9), shards=3, seed=5)
        estimator.process(stream)
        users = _query_users(stream)
        assert estimator.estimate_many(users) == [
            estimator.estimate(user) for user in users
        ]

    @pytest.mark.parametrize("name", ["FreeBS", "FreeRS", "CSE", "vHLL", "LPC", "HLL++"])
    def test_snapshot_restored(self, stream, name):
        estimator = _factories()[name]()
        estimator.process(stream)
        restored = loads(dumps(estimator))
        users = _query_users(stream)
        expected = [estimator.estimate(user) for user in users]
        assert restored.estimate_many(users) == expected
        assert [restored.estimate(user) for user in users] == expected

    def test_mixed_key_types(self):
        estimator = FreeBS(1 << 12, seed=2)
        pairs = [(3, 1), ("3", 2), (("tup", 1), 3), (b"raw", 4), (3, 5)]
        for user, item in pairs:
            estimator.update(user, item)
        users = [3, "3", ("tup", 1), b"raw", "missing", 99]
        assert estimator.estimate_many(users) == [
            estimator.estimate(user) for user in users
        ]

    def test_sharded_mixed_key_routing(self):
        estimator = ShardedEstimator(lambda _k: FreeBS(1 << 12, seed=1), shards=4, seed=2)
        pairs = [(3, 1), ("3", 2), (("tup", 1), 3), (-7, 4), (2**70, 5)]
        estimator.update_batch(pairs)
        users = [user for user, _ in pairs] + ["missing", 12]
        assert estimator.estimate_many(users) == [
            estimator.estimate(user) for user in users
        ]


class TestEstimateFreshManyParity:
    @pytest.mark.parametrize("name", ["CSE", "vHLL"])
    def test_matches_scalar(self, stream, name):
        estimator = _factories()[name]()
        estimator.process(stream)
        users = _query_users(stream)
        assert estimator.estimate_fresh_many(users) == [
            estimator.estimate_fresh(user) for user in users
        ]

    @pytest.mark.parametrize("name", ["CSE", "vHLL"])
    def test_restored_positions_cache_rebuilds(self, stream, name):
        """Regression: a restored estimator's positions cache starts empty;
        ``estimate_fresh`` used to answer 0.0 for every user it actually
        tracks (present only in the serialized estimate table)."""
        estimator = _factories()[name]()
        estimator.process(stream)
        fresh_before = {
            user: estimator.estimate_fresh(user) for user in estimator.estimates()
        }
        restored = loads(dumps(estimator))
        assert not restored._positions_cache
        for user, value in fresh_before.items():
            assert restored.estimate_fresh(user) == value, f"stale for {user!r}"
        users = list(fresh_before)
        assert restored.estimate_fresh_many(users) == [
            fresh_before[user] for user in users
        ]

    @pytest.mark.parametrize("name", ["CSE", "vHLL"])
    def test_unseen_users_stay_zero(self, stream, name):
        estimator = _factories()[name]()
        estimator.process(stream[:500])
        assert estimator.estimate_fresh("never-seen") == 0.0
        assert estimator.estimate_fresh_many(["never-seen", 10**9]) == [0.0, 0.0]

    @_SETTINGS
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=25),
                st.integers(min_value=0, max_value=300),
            ),
            max_size=200,
        )
    )
    def test_property_cse_vhll(self, pairs):
        for factory in (
            lambda: CSE(1 << 11, virtual_size=32, seed=7),
            lambda: VirtualHLL(1 << 10, virtual_size=32, seed=7),
        ):
            estimator = factory()
            estimator.process(pairs)
            users = list(range(28))
            assert estimator.estimate_many(users) == [
                estimator.estimate(user) for user in users
            ]
            assert estimator.estimate_fresh_many(users) == [
                estimator.estimate_fresh(user) for user in users
            ]


def _full_resort_top(monitor, k):
    estimates = monitor.last_window_estimates()
    return sorted(estimates.items(), key=lambda item: item[1], reverse=True)[:k]


class TestIncrementalTopK:
    @pytest.mark.parametrize("method", ["FreeBS", "FreeRS", "CSE", "vHLL", "LPC", "HLL++"])
    def test_matches_full_resort_across_rotations(self, method):
        pairs = zipf_bipartite_stream(
            n_users=120, n_pairs=12_000, max_cardinality=600, duplicate_factor=0.3, seed=6
        )
        spec = MonitorSpec(
            method=method,
            memory_bits=1 << 15,
            expected_users=120,
            epoch_pairs=3_000,
            window_epochs=3,
            delta=5e-3,
            top_k=7,
        )
        monitor = spec.build()
        for start in range(0, len(pairs), 700):
            monitor.observe(pairs[start : start + 700])
            assert monitor.current_top == _full_resort_top(monitor, 7), (
                f"{method}: top-k diverged from full re-sort at pair {start + 700}"
            )
        if method in ("FreeBS", "FreeRS"):
            assert monitor.incremental_evaluations > 0

    def test_incremental_equals_forced_full_evaluation(self):
        """Scores and alerts (absolute threshold) are identical whether every
        batch is absorbed incrementally or via a full re-evaluation."""
        pairs = zipf_bipartite_stream(
            n_users=80, n_pairs=9_000, max_cardinality=500, duplicate_factor=0.4, seed=8
        )
        spec = MonitorSpec(
            method="FreeBS",
            memory_bits=1 << 16,
            expected_users=80,
            epoch_pairs=2_500,
            window_epochs=3,
            delta=None,
            threshold=120.0,
            top_k=10,
        )
        fast, slow = spec.build(), spec.build()
        for start in range(0, len(pairs), 600):
            batch = pairs[start : start + 600]
            fast_alerts = fast.observe(batch)
            slow.window.ingest(batch)
            slow_alerts = slow.evaluate()
            assert fast.last_window_estimates() == slow.last_window_estimates()
            assert fast.current_top == slow.current_top
            assert {(a.kind, a.user) for a in fast_alerts} == {
                (a.kind, a.user) for a in slow_alerts
            }
            # Within-batch alert order differs (dirty-set vs dict order), so
            # the active set is compared unordered.
            assert set(fast.active_spreaders) == set(slow.active_spreaders)
        assert fast.incremental_evaluations > 0

    def test_direct_window_ingest_falls_back_to_full(self):
        """Pairs fed around observe() must not leave the tracker stale."""
        spec = MonitorSpec(
            method="FreeBS",
            memory_bits=1 << 14,
            expected_users=20,
            epoch_pairs=10_000,
            window_epochs=2,
            delta=5e-3,
        )
        monitor = spec.build()
        monitor.observe([(1, i) for i in range(50)])
        monitor.window.ingest([(2, i) for i in range(500)])  # bypasses observe
        monitor.observe([(3, 1)])
        estimates = monitor.last_window_estimates()
        assert estimates == monitor.window.window_estimates()
        assert monitor.current_top == _full_resort_top(monitor, monitor.top_k)


class TestTopKTracker:
    @_SETTINGS
    @given(
        rounds=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=15),
                    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                ),
                max_size=8,
            ),
            max_size=12,
        ),
        k=st.integers(min_value=1, max_value=5),
    )
    def test_monotone_updates_match_full_resort(self, rounds, k):
        tracker = TopKTracker(k)
        tracker.full_refresh({})
        reference: dict = {}
        for updates in rounds:
            changed = {}
            for user, bump in updates:
                changed[user] = reference.get(user, 0.0) + bump
            reference.update(changed)
            tracker.apply_updates(changed)
            expected = sorted(
                tracker.scores.items(), key=lambda item: item[1], reverse=True
            )[:k]
            assert tracker.head == expected
            assert tracker.scores == reference

    def test_non_monotone_update_triggers_exact_rebuild(self):
        tracker = TopKTracker(2)
        tracker.full_refresh({"a": 5.0, "b": 4.0, "c": 3.0})
        assert tracker.head == [("a", 5.0), ("b", 4.0)]
        tracker.apply_updates({"a": 1.0})  # decrease: must not keep stale head
        assert tracker.head == [("b", 4.0), ("c", 3.0)]

    def test_ties_keep_first_seen_order(self):
        tracker = TopKTracker(3)
        tracker.full_refresh({"x": 2.0, "y": 2.0, "z": 2.0, "w": 2.0})
        assert tracker.head == [("x", 2.0), ("y", 2.0), ("z", 2.0)]
        tracker.apply_updates({"w": 2.0})  # equal score: rank keeps it out
        assert tracker.head == [("x", 2.0), ("y", 2.0), ("z", 2.0)]
        tracker.apply_updates({"w": 2.5})
        assert tracker.head == [("w", 2.5), ("x", 2.0), ("y", 2.0)]


class TestSnapshotBatchSpread:
    def _snapshot(self, method="FreeRS"):
        pairs = zipf_bipartite_stream(
            n_users=300, n_pairs=8_000, max_cardinality=400, duplicate_factor=0.3, seed=12
        )
        monitor = MonitorSpec(
            method=method,
            memory_bits=1 << 15,
            expected_users=300,
            epoch_pairs=3_000,
            window_epochs=3,
            delta=5e-3,
        ).build()
        monitor.observe(pairs)
        return monitor.read_snapshot()

    def test_int_fast_path_matches_spread(self):
        snapshot = self._snapshot()
        users = list(range(-5, 400)) + [10**9]
        assert snapshot.batch_spread(users) == [snapshot.spread(u) for u in users]

    def test_numpy_int_dtype_queries(self):
        snapshot = self._snapshot()
        users = np.arange(0, 120, dtype=np.int64).tolist()
        assert snapshot.batch_spread(users) == [snapshot.spread(u) for u in users]

    def test_mixed_and_string_queries_fall_back(self):
        snapshot = self._snapshot()
        some_int = next(u for u in snapshot.estimates if isinstance(u, int))
        users = [some_int, str(some_int), "missing", 10**20, -1] * 5
        assert snapshot.batch_spread(users) == [snapshot.spread(u) for u in users]

    def test_topk_deep_k_matches_ranked(self):
        snapshot = self._snapshot()
        deep = snapshot.topk(len(snapshot.estimates))
        assert deep == [(u, float(v)) for u, v in snapshot.ranked]
        head = snapshot.topk(5)
        assert head == deep[:5]
