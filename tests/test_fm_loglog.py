"""Unit tests for the FM/PCSA and LogLog sketches."""

from __future__ import annotations

import pytest

from repro.sketches import FlajoletMartinSketch, LogLogSketch
from repro.sketches.loglog import loglog_alpha


class TestFlajoletMartin:
    def test_empty_estimate_zero(self):
        assert FlajoletMartinSketch(m=32).estimate() == pytest.approx(0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FlajoletMartinSketch(m=0)
        with pytest.raises(ValueError):
            FlajoletMartinSketch(m=8, width=0)

    def test_duplicates_do_not_change_sketch(self):
        sketch = FlajoletMartinSketch(m=32, seed=1)
        sketch.add("item")
        estimate = sketch.estimate()
        for _ in range(50):
            sketch.add("item")
        assert sketch.estimate() == pytest.approx(estimate)

    @pytest.mark.parametrize("true_cardinality", [1_000, 20_000])
    def test_estimate_within_tolerance(self, true_cardinality):
        sketch = FlajoletMartinSketch(m=128, seed=3)
        for item in range(true_cardinality):
            sketch.add(item)
        relative_error = abs(sketch.estimate() - true_cardinality) / true_cardinality
        assert relative_error < 0.25

    def test_merge_equals_union(self):
        a = FlajoletMartinSketch(m=64, seed=4)
        b = FlajoletMartinSketch(m=64, seed=4)
        for item in range(2_000):
            a.add(("a", item))
            b.add(("b", item))
        union = FlajoletMartinSketch(m=64, seed=4)
        for item in range(2_000):
            union.add(("a", item))
            union.add(("b", item))
        a.merge(b)
        assert a.estimate() == pytest.approx(union.estimate())

    def test_memory_bits(self):
        assert FlajoletMartinSketch(m=16, width=32).memory_bits() == 512


class TestLogLog:
    def test_alpha_constant_converges(self):
        assert loglog_alpha(1024) == pytest.approx(0.39701, rel=0.02)

    def test_empty_estimate_small(self):
        sketch = LogLogSketch(m=64)
        assert sketch.estimate() < 64

    def test_rejects_non_positive_m(self):
        with pytest.raises(ValueError):
            LogLogSketch(m=0)

    @pytest.mark.parametrize("true_cardinality", [5_000, 50_000])
    def test_estimate_within_tolerance(self, true_cardinality):
        sketch = LogLogSketch(m=256, seed=7)
        for item in range(true_cardinality):
            sketch.add(item)
        relative_error = abs(sketch.estimate() - true_cardinality) / true_cardinality
        # LogLog RSE ~ 1.3/sqrt(m) ~ 8%; allow 4 sigma.
        assert relative_error < 0.33

    def test_duplicates_do_not_change_estimate(self):
        sketch = LogLogSketch(m=64, seed=2)
        sketch.add("x")
        estimate = sketch.estimate()
        for _ in range(20):
            sketch.add("x")
        assert sketch.estimate() == pytest.approx(estimate)

    def test_merge_equals_union(self):
        a = LogLogSketch(m=64, seed=5)
        b = LogLogSketch(m=64, seed=5)
        for item in range(3_000):
            a.add(("a", item))
            b.add(("b", item))
        union = LogLogSketch(m=64, seed=5)
        for item in range(3_000):
            union.add(("a", item))
            union.add(("b", item))
        a.merge(b)
        assert a.estimate() == pytest.approx(union.estimate())

    def test_merge_rejects_mismatched_parameters(self):
        with pytest.raises(ValueError):
            LogLogSketch(m=32).merge(LogLogSketch(m=64))

    def test_memory_bits(self):
        assert LogLogSketch(m=64, width=5).memory_bits() == 320
