"""Tests of the shared CardinalityEstimator interface and its conveniences."""

from __future__ import annotations

import pytest

from repro import CSE, ExactCounter, FreeBS, FreeRS, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.core.base import CardinalityEstimator


def _all_estimators():
    return [
        FreeBS(1 << 14, seed=1),
        FreeRS(1 << 12, seed=1),
        CSE(1 << 14, virtual_size=64, seed=1),
        VirtualHLL(1 << 12, virtual_size=64, seed=1),
        PerUserLPC(1 << 14, expected_users=20, seed=1),
        PerUserHLLPP(1 << 14, expected_users=20, seed=1),
        ExactCounter(),
    ]


@pytest.mark.parametrize("estimator", _all_estimators(), ids=lambda e: e.name)
class TestCommonInterface:
    def test_is_cardinality_estimator(self, estimator):
        assert isinstance(estimator, CardinalityEstimator)

    def test_update_returns_float(self, estimator):
        value = estimator.update("user", "item")
        assert isinstance(value, float)
        assert value >= 0.0

    def test_estimate_unseen_user_is_zero(self, estimator):
        assert estimator.estimate("never-seen") == 0.0

    def test_estimates_contains_observed_user(self, estimator):
        estimator.update("user", "item")
        assert "user" in estimator.estimates()

    def test_memory_bits_positive(self, estimator):
        estimator.update("user", "item")
        assert estimator.memory_bits() > 0

    def test_process_consumes_stream(self, estimator):
        pairs = [("a", 1), ("a", 2), ("b", 1)]
        returned = estimator.process(pairs)
        assert returned is estimator
        assert estimator.estimate("a") > 0

    def test_state_snapshot(self, estimator):
        estimator.update("a", 1)
        state = estimator.state()
        assert state.users_tracked >= 1


class TestProcessWithSnapshots:
    def test_snapshot_cadence(self):
        estimator = FreeBS(1 << 12, seed=2)
        pairs = [("u", item) for item in range(10)]
        snapshots = list(estimator.process_with_snapshots(pairs, every=4))
        assert [t for t, _ in snapshots] == [4, 8, 10]
        # Estimates grow monotonically across snapshots for a single user.
        estimates = [snapshot["u"] for _, snapshot in snapshots]
        assert estimates == sorted(estimates)

    def test_exact_multiple_of_every(self):
        estimator = FreeBS(1 << 12, seed=3)
        pairs = [("u", item) for item in range(8)]
        snapshots = list(estimator.process_with_snapshots(pairs, every=4))
        assert [t for t, _ in snapshots] == [4, 8]

    def test_rejects_bad_every(self):
        estimator = FreeBS(1 << 12)
        with pytest.raises(ValueError):
            list(estimator.process_with_snapshots([("a", 1)], every=0))
