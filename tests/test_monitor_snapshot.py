"""Tests for monitor checkpoint / recovery and the replay feed.

The acceptance property: a replay killed mid-stream and restored from the
latest snapshot produces exactly the same window estimates and the same
alert feed as an uninterrupted run — for every method, sharded or not.
"""

from __future__ import annotations

import json

import pytest

from repro.monitor import MonitorSpec, SnapshotStore, monitor_to_json, replay_feed
from repro.streams import zipf_bipartite_stream

METHODS = ["FreeBS", "FreeRS", "CSE", "vHLL", "LPC", "HLL++"]


@pytest.fixture(scope="module")
def stream():
    return zipf_bipartite_stream(
        n_users=100, n_pairs=6_000, max_cardinality=600, duplicate_factor=0.3, seed=21
    )


def _spec(method, shards=1):
    return MonitorSpec(
        method=method,
        memory_bits=1 << 15,
        virtual_size=64,
        expected_users=100,
        shards=shards,
        epoch_pairs=1_500,
        window_epochs=3,
        delta=5e-3,
    )


def _run(monitor, pairs, **kwargs):
    return list(replay_feed(monitor, pairs, batch_size=700, **kwargs))


class TestKillRestore:
    @pytest.mark.parametrize("method", METHODS)
    def test_restored_monitor_continues_identically(self, stream, method, tmp_path):
        spec = _spec(method)
        store = SnapshotStore(tmp_path / method)
        # Kill on a batch boundary — the only place the replay driver ever
        # snapshots — so the resumed run's evaluation points line up with the
        # uninterrupted reference run.
        half = 2_800  # 4 batches of 700

        # Uninterrupted reference run.
        reference = spec.build()
        reference_records = _run(reference, stream)

        # Killed run: first half, snapshot, restore, second half.
        killed = spec.build()
        _run(killed, stream[:half], snapshot_store=store)
        restored = store.restore()
        assert restored.window.pairs_ingested == killed.window.pairs_ingested
        resumed_records = _run(restored, stream, skip_pairs=restored.window.pairs_ingested)

        assert restored.window.pairs_ingested == len(stream)
        assert restored.window.window_estimates() == reference.window.window_estimates()
        reference_alerts = [r for r in reference_records if r["type"] == "alert"]
        resumed_alerts = [r for r in resumed_records if r["type"] == "alert"]
        # The resumed feed replays only the second half; its alerts must be
        # exactly the reference alerts emitted after the snapshot point.
        after_snapshot = [
            record for record in reference_alerts if record["timestamp"] >= half
        ]
        assert resumed_alerts == after_snapshot
        assert sorted(restored.active_spreaders, key=str) == sorted(
            reference.active_spreaders, key=str
        )
        assert restored.current_top == reference.current_top

    def test_sharded_monitor_round_trips(self, stream, tmp_path):
        spec = _spec("FreeRS", shards=3)
        store = SnapshotStore(tmp_path)
        monitor = spec.build()
        _run(monitor, stream[:3_000], snapshot_store=store)
        restored = store.restore()
        assert restored.window.window_estimates() == monitor.window.window_estimates()
        # Both continue identically.
        tail = stream[3_000:]
        monitor.observe(tail)
        restored.observe(tail)
        assert restored.window.window_estimates() == monitor.window.window_estimates()


class TestStore:
    def test_retention_keeps_newest(self, stream, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        monitor = _spec("FreeBS").build()
        for start in range(0, 5_000, 1_000):
            monitor.observe(stream[start : start + 1_000])
            store.save(monitor)
        paths = store.paths()
        assert len(paths) == 2
        assert store.latest() == paths[-1]
        assert store._offset(paths[-1]) == 5_000

    def test_restore_empty_store_raises(self, tmp_path):
        from repro.monitor import SnapshotError

        with pytest.raises(SnapshotError, match="no snapshot files found"):
            SnapshotStore(tmp_path / "nothing").restore()

    def test_restore_truncated_snapshot_names_path_and_recovery(self, stream, tmp_path):
        from repro.monitor import SnapshotError

        store = SnapshotStore(tmp_path)
        monitor = _spec("FreeBS").build()
        monitor.observe(stream[:1_000])
        path = store.save(monitor)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(SnapshotError) as excinfo:
            store.restore()
        message = str(excinfo.value)
        assert str(path) in message
        assert "truncated or corrupt" in message
        assert "Recovery options" in message
        assert excinfo.value.path == path

    def test_restore_wrong_payload_raises_snapshot_error(self, tmp_path):
        import json as json_module

        from repro.monitor import SnapshotError

        store = SnapshotStore(tmp_path)
        tmp_path.mkdir(parents=True, exist_ok=True)
        path = tmp_path / "snapshot-000000000001.json"
        path.write_text(json_module.dumps({"format": "something-else"}), encoding="utf-8")
        with pytest.raises(SnapshotError, match="not a loadable monitor snapshot"):
            store.restore()

    def test_snapshot_payload_is_versioned_json(self, stream, tmp_path):
        monitor = _spec("vHLL").build()
        monitor.observe(stream[:2_000])
        payload = monitor_to_json(monitor)
        assert payload["format"] == "freesketch-monitor-snapshot"
        assert payload["version"] == 1
        assert payload["spec"]["method"] == "vHLL"
        # Round-trips through plain JSON text.
        text = json.dumps(payload)
        assert json.loads(text) == payload

    def test_monitor_without_spec_is_rejected(self, stream):
        from repro.baselines import PerUserLPC
        from repro.monitor import SpreaderMonitor, WindowedEstimator

        window = WindowedEstimator(
            lambda _k: PerUserLPC(1 << 12, expected_users=10, seed=1),
            epoch_pairs=100,
            window_epochs=2,
        )
        monitor = SpreaderMonitor(window, threshold=10.0)
        with pytest.raises(ValueError):
            monitor_to_json(monitor)


class TestReplayFeed:
    def test_feed_shape_and_counts(self, stream):
        monitor = _spec("FreeRS").build()
        records = _run(monitor, stream)
        kinds = {record["type"] for record in records}
        assert {"window", "alert", "summary"} <= kinds
        summary = records[-1]
        assert summary["type"] == "summary"
        assert summary["pairs_ingested"] == len(stream)
        assert summary["alerts_emitted"] == sum(
            1 for record in records if record["type"] == "alert"
        )
        window_records = [record for record in records if record["type"] == "window"]
        assert all("sliding_top" in record for record in window_records)
        assert all(record["exactness"] == "additive" for record in window_records)

    def test_rate_throttles(self, stream):
        import time

        monitor = _spec("FreeBS").build()
        begin = time.perf_counter()
        _run(monitor, stream[:1_400], rate=20_000.0)
        elapsed = time.perf_counter() - begin
        assert elapsed >= 1_400 / 20_000.0
