"""Property-based tests for the per-user streaming estimators.

The invariants exercised here are the ones the paper's correctness argument
rests on:

* duplicate user-item pairs never change any estimate (all methods);
* a user's estimate is non-decreasing over time (FreeBS/FreeRS increment
  counters, never decrement);
* FreeBS/FreeRS incremental ``q`` bookkeeping equals the value recomputed
  from the raw array state after any update sequence;
* estimates of users never observed stay exactly zero.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import CSE, FreeBS, FreeRS, VirtualHLL

_SETTINGS = settings(max_examples=30, deadline=None)

pairs_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=500),
    ),
    min_size=0,
    max_size=300,
)


class TestDuplicateInsensitivity:
    @_SETTINGS
    @given(pairs=pairs_strategy)
    def test_freebs(self, pairs):
        once = FreeBS(1 << 12, seed=1)
        twice = FreeBS(1 << 12, seed=1)
        for user, item in pairs:
            once.update(user, item)
            twice.update(user, item)
            twice.update(user, item)
        assert once.estimates() == twice.estimates()

    @_SETTINGS
    @given(pairs=pairs_strategy)
    def test_freers(self, pairs):
        once = FreeRS(1 << 10, seed=1)
        twice = FreeRS(1 << 10, seed=1)
        for user, item in pairs:
            once.update(user, item)
            twice.update(user, item)
            twice.update(user, item)
        assert once.estimates() == twice.estimates()

    @_SETTINGS
    @given(pairs=pairs_strategy)
    def test_cse_shared_array_state(self, pairs):
        once = CSE(1 << 12, virtual_size=32, seed=1)
        twice = CSE(1 << 12, virtual_size=32, seed=1)
        for user, item in pairs:
            once.update(user, item)
            twice.update(user, item)
            twice.update(user, item)
        # Duplicates may refresh the cached estimate but must not change the
        # *fresh* estimate (the shared array is unchanged).
        for user, _ in pairs:
            assert once.estimate_fresh(user) == twice.estimate_fresh(user)


class TestMonotonicity:
    @_SETTINGS
    @given(pairs=pairs_strategy)
    def test_freebs_estimates_never_decrease(self, pairs):
        estimator = FreeBS(1 << 12, seed=2)
        running = {}
        for user, item in pairs:
            estimator.update(user, item)
            estimate = estimator.estimate(user)
            assert estimate >= running.get(user, 0.0) - 1e-12
            running[user] = estimate

    @_SETTINGS
    @given(pairs=pairs_strategy)
    def test_freers_estimates_never_decrease(self, pairs):
        estimator = FreeRS(1 << 10, seed=2)
        running = {}
        for user, item in pairs:
            estimator.update(user, item)
            estimate = estimator.estimate(user)
            assert estimate >= running.get(user, 0.0) - 1e-12
            running[user] = estimate


class TestIncrementalBookkeeping:
    @_SETTINGS
    @given(pairs=pairs_strategy)
    def test_freebs_change_probability_matches_array(self, pairs):
        estimator = FreeBS(1 << 11, seed=3)
        for user, item in pairs:
            estimator.update(user, item)
        assert estimator.change_probability == estimator._bits.zero_fraction
        assert estimator._bits.ones == estimator._bits.recount()

    @_SETTINGS
    @given(pairs=pairs_strategy)
    def test_freers_change_probability_matches_array(self, pairs):
        estimator = FreeRS(1 << 9, seed=3)
        for user, item in pairs:
            estimator.update(user, item)
        recomputed = estimator._registers.recompute_harmonic_sum() / estimator.M
        assert abs(estimator.change_probability - recomputed) < 1e-9


class TestUnseenUsers:
    @_SETTINGS
    @given(pairs=pairs_strategy)
    def test_unseen_users_stay_zero(self, pairs):
        freebs = FreeBS(1 << 12, seed=4)
        freers = FreeRS(1 << 10, seed=4)
        vhll = VirtualHLL(1 << 10, virtual_size=32, seed=4)
        for user, item in pairs:
            freebs.update(user, item)
            freers.update(user, item)
            vhll.update(user, item)
        for estimator in (freebs, freers, vhll):
            assert estimator.estimate("user-that-never-appears") == 0.0
            assert "user-that-never-appears" not in estimator.estimates()


class TestConservation:
    @_SETTINGS
    @given(pairs=pairs_strategy)
    def test_freebs_total_increment_counts_sampled_pairs(self, pairs):
        # Every sampled pair contributes at least 1 to some user's estimate
        # (increments are 1/q >= 1), so the sum of estimates is at least the
        # number of sampled pairs and zero when nothing was sampled.
        estimator = FreeBS(1 << 12, seed=5)
        for user, item in pairs:
            estimator.update(user, item)
        total_estimate = sum(estimator.estimates().values())
        assert total_estimate >= estimator.pairs_sampled - 1e-9
        if estimator.pairs_sampled == 0:
            assert total_estimate == 0.0
