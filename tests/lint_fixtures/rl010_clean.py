# dest: src/repro/runtime/example.py
"""RL010 clean: every task is joined on every path; cleanup awaits are shielded."""

import asyncio


async def joined_on_every_path(coro, flag):
    task = asyncio.create_task(coro)
    if not flag:
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        return 0
    return await task


async def gathered(make):
    first = asyncio.create_task(make())
    second = asyncio.create_task(make())
    return await asyncio.gather(first, second)


async def stored_for_later(registry, coro):
    registry.pending = asyncio.create_task(coro)  # the registry joins it


async def shielded_cleanup(writer):
    try:
        writer.write(b"bye")
    finally:
        await asyncio.shield(writer.wait_closed())
