# dest: scripts/serve_smoke.py
"""RL006 firing: the smoke script asserts on a never-registered metric."""

GHOST = "service.ghost"
