# dest: src/repro/obs/example.py
"""RL006 firing: a registration the docs catalog never mentions."""


def counter(name):
    return name


REQUESTS = counter("service.requests")
