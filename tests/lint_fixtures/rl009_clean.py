# dest: src/repro/state/example.py
"""RL009 clean: dtype facts satisfy the sink contracts on every path."""

import numpy as np


def float_columns(arena, users):
    estimates = np.zeros(len(users))
    arena.set_all_estimates(estimates)


def both_paths_float(arena, users, fast):
    if fast:
        estimates = np.zeros(len(users), dtype=np.float32)
    else:
        estimates = np.zeros(len(users), dtype=np.float64)
    arena.set_all_estimates(estimates)  # contract is kind-level: both float


def converted_before_the_sink(arena, codes, values):
    keys = np.asarray(codes, dtype=np.int64)
    arena.set_estimates(keys, values.astype(np.float64))
