# dest: src/repro/runtime/example.py
"""RL007 clean: every handle is released on all paths, or ownership moves."""

import socket


def closed_in_finally(path):
    handle = open(path)
    try:
        return handle.read()
    finally:
        handle.close()


def with_managed(path):
    with open(path) as handle:
        return handle.read()


def ownership_escapes():
    sock = socket.socket()
    return sock  # the caller owns it now


def stored_on_self(ring, path):
    ring.handle = open(path)  # the object owns it now
