# dest: src/repro/monitor/example.py
"""RL001 suppressed: the out-of-lock write documents its contract."""

import threading


class Window:
    def __init__(self):
        self.lock = threading.Lock()
        self.count = 0
        self.snapshot = None

    def publish(self):
        with self.lock:
            self.count += 1
            self.snapshot = self.count

    def reset(self):
        self.snapshot = None  # repro-lint: disable=RL001(caller holds the lock by contract)
