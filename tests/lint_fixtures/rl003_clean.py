# dest: src/repro/engine/kernels.py
"""RL003 clean: whole-array operations, no per-element Python."""

import numpy as np

from repro.engine import hot_path


def gather(values):
    return np.asarray(values, dtype=np.float64)


@hot_path
def total(values):
    return float(np.sum(values))
