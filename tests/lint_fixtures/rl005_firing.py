# dest: src/repro/sketches/example.py
"""RL005 firing: wall clocks and unseeded RNGs in sketch code."""

import random
import time

import numpy as np


def jitter():
    now = time.time()
    noise = random.random()
    legacy = np.random.rand()
    rng = np.random.default_rng()
    return now + noise + legacy + rng.random()
