# dest: src/repro/registry/specs.py
"""RL004 suppressed: an intentionally codec-less spec names its reason."""

SPECS = [
    MethodSpec(name="Ghost", tag="Ghost"),  # noqa: F821  # repro-lint: disable=RL004(experimental method, snapshots deliberately unsupported)
]
