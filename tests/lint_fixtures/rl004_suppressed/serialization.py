# dest: src/repro/core/serialization.py
"""RL004 suppressed: the codec table does not know 'Ghost' (on purpose)."""

_METHOD_STATE_CODECS = {"Other": (None, None)}
