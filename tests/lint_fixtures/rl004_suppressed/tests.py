# dest: tests/test_serialization.py
"""RL004 suppressed companion: version coverage is complete."""

VERSIONS = ["v1", "v2", "v3"]
