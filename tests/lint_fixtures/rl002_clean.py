# dest: src/repro/service/example.py
"""RL002 clean: async sleeps, and blocking work parked on the executor."""

import asyncio
import json


class Handler:
    async def handle(self, request):
        await asyncio.sleep(0.1)

        def encode():
            # Sync helper: runs on the executor, where blocking is fine.
            with self.lock:
                return json.dumps(request)

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, encode)
