# dest: src/repro/runtime/example.py
"""RL010 firing: a task joined only on one path, and unshielded cleanup.

The unjoined task is flow-dependent: ``await task`` exists — the early
return just skips it.
"""

import asyncio


async def joins_only_on_success(coro, flag):
    task = asyncio.create_task(coro)
    if not flag:
        return 0  # the task is still pending on this path
    return await task


async def closes_unshielded(writer):
    try:
        writer.write(b"bye")
    finally:
        await writer.wait_closed()
