# dest: src/repro/monitor/example.py
"""RL001 clean: every guarded write happens under the lock."""

import threading


class Window:
    def __init__(self):
        self.lock = threading.Lock()
        self.count = 0
        self.snapshot = None

    def publish(self):
        with self.lock:
            self.count += 1
            self.snapshot = self.count

    def reset(self):
        with self.lock:
            self.snapshot = None
