# dest: src/repro/runtime/example.py
"""RL008 firing: a release skipped on the early-return path, and an await
executed while a sync lock is held.

The unbalanced acquire is flow-dependent: release() *is* called — just
not on the empty-input path.
"""

import asyncio
import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()

    def drain(self, items):
        self._lock.acquire()
        if not items:
            return 0  # the lock is still held on this path
        count = len(items)
        self._lock.release()
        return count

    async def flush(self):
        with self._lock:
            await asyncio.sleep(0)  # parks the critical section on the loop
