# dest: src/repro/analysis/example.py
"""RL003 firing: an @hot_path-marked function looping over its parameter.

The marker extends the rule beyond the hot modules: this file lives
outside them, and still gets checked because of the decorator.
"""

from repro.engine import hot_path


@hot_path
def total(values):
    acc = 0.0
    for value in values:
        acc += value
    return acc
