# dest: src/repro/service/example.py
"""RL002 suppressed: a justified blocking call inside an async def."""

import json


class Handler:
    async def handle(self, request):
        return json.dumps(request)  # repro-lint: disable=RL002(tiny constant-size payload)
