# dest: src/repro/state/example.py
"""RL009 suppressed: a deliberate integer surface in the estimate column."""

import numpy as np


def histogram_counts(arena, users):
    counts = np.zeros(len(users), dtype=np.int64)
    arena.set_all_estimates(counts)  # repro-lint: disable=RL009(count debug surface reuses the column)
