# dest: src/repro/core/example.py
"""RL000 firing: a stale suppression and a reason-less one."""

VALUE = 1  # repro-lint: disable=RL005(nothing here violates determinism any more)
OTHER = 2  # repro-lint: disable=RL001
