# dest: src/repro/runtime/example.py
"""RL007 suppressed: a deliberately long-lived handle, documented inline."""


def intentionally_left_open(path):
    handle = open(path)  # repro-lint: disable=RL007(closed by the caller's atexit hook)
    handle.readline()
    return path
