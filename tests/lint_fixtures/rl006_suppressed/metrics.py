# dest: src/repro/obs/example.py
"""RL006 suppressed companion: a documented registration."""


def counter(name):
    return name


REQUESTS = counter("service.requests")
