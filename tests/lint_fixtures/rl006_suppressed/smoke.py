# dest: scripts/serve_smoke.py
"""RL006 suppressed: a forward reference to a metric a later PR registers."""

GHOST = "service.ghost"  # repro-lint: disable=RL006(registered by the next PR in the stack)
