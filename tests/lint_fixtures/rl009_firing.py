# dest: src/repro/state/example.py
"""RL009 firing: dtype facts drift into the arena estimate contract.

The first case is flow-dependent: the variable is int32 on one branch
and float64 (the np.zeros default) on the other, so the dtype reaching
the sink depends on the path taken.
"""

import numpy as np


def path_dependent_drift(arena, users, fast):
    if fast:
        estimates = np.zeros(len(users), dtype=np.int32)
    else:
        estimates = np.zeros(len(users))
    arena.set_all_estimates(estimates)


def wrong_kind(arena, users):
    counts = np.zeros(len(users), dtype=np.int64)
    arena.set_all_estimates(counts)


def impossible_assert(users):
    codes = np.zeros(len(users), dtype=np.int64)
    assert codes.dtype == np.float64
    return codes
