# dest: src/repro/runtime/example.py
"""RL008 clean: balanced releases on every path; awaits only under asyncio locks."""

import asyncio
import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._alock = asyncio.Lock()

    def drain(self, items):
        self._lock.acquire()
        try:
            return len(items)
        finally:
            self._lock.release()

    def bump(self):
        with self._lock:
            return 1

    async def flush(self):
        async with self._alock:  # asyncio locks are built to span awaits
            await asyncio.sleep(0)
