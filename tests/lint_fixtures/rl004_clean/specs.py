# dest: src/repro/registry/specs.py
"""RL004 clean: the registry entry has codec, tests and wire counterparts."""

SPECS = [
    MethodSpec(name="Ghost", tag="Ghost"),  # noqa: F821 — fixture is parsed, never run
]
