# dest: src/repro/service/frames.py
"""RL004 clean: the dtype table lifts both declared kinds."""

_KIND_DTYPES = {"u64": None, "f64": None}
