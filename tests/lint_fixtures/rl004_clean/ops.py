# dest: src/repro/service/ops.py
"""RL004 clean: every array kind and field name has its wire counterpart."""

OPS = [
    OpSpec(  # noqa: F821 — fixture is parsed, never run
        name="ghost",
        request_arrays=(("users", "u64"),),
        result_arrays=(("estimates", "f64"),),
    ),
]
