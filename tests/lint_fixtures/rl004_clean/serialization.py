# dest: src/repro/core/serialization.py
"""RL004 clean: the codec table carries the registry's 'Ghost' entry."""

_METHOD_STATE_CODECS = {"Ghost": (None, None)}
