# dest: tests/test_serialization.py
"""RL004 clean: round-trips exercise the tag and every format version."""

TAGS = ["Ghost"]
VERSIONS = ["v1", "v2", "v3"]
