# dest: src/repro/service/client.py
"""RL004 clean: the client references every declared array field."""

FIELDS = ["users", "estimates"]
