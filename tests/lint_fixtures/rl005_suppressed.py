# dest: src/repro/sketches/example.py
"""RL005 suppressed: a deliberate wall-clock read, reason given."""

import time


def bench_stamp():
    return time.time()  # repro-lint: disable=RL005(benchmark label only, never sketch state)
