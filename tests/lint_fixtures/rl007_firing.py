# dest: src/repro/runtime/example.py
"""RL007 firing: handles that leak on exception or branch paths.

Both leaks are *flow-dependent*: each handle is closed somewhere, just
not on every path — the except arm in the first case, the slow branch in
the second — which is exactly what a syntactic open/close pairing check
cannot see.
"""

import socket


def leaks_when_read_raises(path):
    handle = open(path)
    try:
        data = handle.read()
        handle.close()
        return data
    except OSError:
        return None  # the handle is still open on this arm


def leaks_on_one_branch(fast):
    sock = socket.socket()
    if fast:
        sock.close()
    return fast
