# dest: src/repro/runtime/example.py
"""RL008 suppressed: a hand-over-hand acquire, documented inline."""

import threading


class Handoff:
    def __init__(self):
        self._lock = threading.Lock()

    def seize(self):
        self._lock.acquire()  # repro-lint: disable=RL008(released by the paired finish call)
        return self
