# dest: src/repro/obs/example.py
"""RL006 clean: registration, reference and catalog row all agree."""


def counter(name):
    return name


REQUESTS = counter("service.requests")
