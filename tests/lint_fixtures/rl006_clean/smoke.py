# dest: scripts/serve_smoke.py
"""RL006 clean: the smoke script asserts on a registered metric."""

REQUESTS = "service.requests"
