# dest: src/repro/sketches/example.py
"""RL005 clean: seeded generators; timestamps arrive with the stream."""

import random

import numpy as np


def jitter(seed, timestamp):
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return timestamp + local.random() + rng.random()
