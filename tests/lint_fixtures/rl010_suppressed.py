# dest: src/repro/runtime/example.py
"""RL010 suppressed: a deliberate fire-and-forget, documented inline."""

import asyncio


async def fire_and_forget(coro):
    task = asyncio.create_task(coro)  # repro-lint: disable=RL010(the supervisor joins orphans at shutdown)
    return None
