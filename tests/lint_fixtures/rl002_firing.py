# dest: src/repro/service/example.py
"""RL002 firing: blocking calls and a lock acquisition in async defs."""

import json
import time


class Handler:
    async def handle(self, request):
        time.sleep(0.1)
        with self.lock:
            payload = json.dumps(request)
        return payload
