# dest: src/repro/core/example.py
"""RL000 clean: no suppressions at all — nothing to go stale."""

VALUE = 1
