# dest: src/repro/engine/kernels.py
"""RL003 suppressed: a bounded scalar fallback names its bound."""


def fill_misses(cache, missing):
    rows = []
    for code in missing.items():  # repro-lint: disable=RL003(cache-miss fill, bounded by misses per batch)
        rows.append(cache[code])
    return rows
