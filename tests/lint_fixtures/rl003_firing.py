# dest: src/repro/engine/kernels.py
"""RL003 firing: per-element dict hops and numpy-in-loop in a hot module."""

import numpy as np


def gather(estimates):
    out = []
    for user, value in estimates.items():
        out.append(np.float64(value))
    return out
