# dest: tests/test_serialization.py
"""RL004 firing: the round-trip suite covers v1 only — v2/v3 untested."""

VERSIONS = ["v1"]
