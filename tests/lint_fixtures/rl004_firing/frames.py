# dest: src/repro/service/frames.py
"""RL004 firing: the dtype table only knows 'f64' — 'u64' is missing."""

_KIND_DTYPES = {"f64": None}
