# dest: src/repro/service/ops.py
"""RL004 firing: an op array kind the frames layer cannot lift, and a
field name the client never references."""

OPS = [
    OpSpec(  # noqa: F821 — fixture is parsed, never run
        name="ghost",
        request_arrays=(("users", "u64"),),
        result_arrays=(("estimates", "f64"),),
    ),
]
