# dest: src/repro/registry/specs.py
"""RL004 firing: a MethodSpec with no codec entry and no round-trip test."""

SPECS = [
    MethodSpec(name="Ghost", tag="Ghost"),  # noqa: F821 — fixture is parsed, never run
]
