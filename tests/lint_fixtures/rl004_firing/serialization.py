# dest: src/repro/core/serialization.py
"""RL004 firing: the codec table misses the registry's 'Ghost' entry."""

_METHOD_STATE_CODECS = {"Other": (None, None)}
