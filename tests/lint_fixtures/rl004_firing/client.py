# dest: src/repro/service/client.py
"""RL004 firing: the client knows 'estimates' but not 'users'."""

FIELDS = ["estimates"]
