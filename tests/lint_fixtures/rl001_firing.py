# dest: src/repro/monitor/example.py
"""RL001 firing: a lock-guarded attribute written outside the lock."""

import threading


class Window:
    def __init__(self):
        self.lock = threading.Lock()
        self.count = 0
        self.snapshot = None

    def publish(self):
        with self.lock:
            self.count += 1
            self.snapshot = self.count

    def reset(self):
        self.snapshot = None  # guarded write outside `with self.lock`
