"""Tests for the epoch-rotating windowed estimator.

The load-bearing contracts:

* a tumbling window's estimates are bit-identical to a fresh estimator fed
  only that window's pairs, for all six methods (each epoch *is* such an
  estimator — the test guards the rotation bookkeeping);
* sliding-window merges are exact for the mergeable methods (CSE, vHLL,
  LPC, HLL++) and additive (sum of per-epoch estimates) for FreeBS/FreeRS;
* timestamp rotation follows the epoch grid, including empty epochs for
  gaps and ring flushes for gaps longer than the window.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines import CSE, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.core import FreeBS, FreeRS
from repro.engine import ShardedEstimator
from repro.monitor import ADDITIVE, EXACT, WindowedEstimator, merge_exactness
from repro.streams import zipf_bipartite_stream

SEED = 11

METHOD_FACTORIES = {
    "FreeBS": lambda: FreeBS(1 << 14, seed=SEED),
    "FreeRS": lambda: FreeRS(1 << 11, seed=SEED),
    "CSE": lambda: CSE(1 << 14, virtual_size=64, seed=SEED),
    "vHLL": lambda: VirtualHLL(1 << 11, virtual_size=64, seed=SEED),
    "LPC": lambda: PerUserLPC(1 << 14, expected_users=120, seed=SEED),
    "HLL++": lambda: PerUserHLLPP(1 << 15, expected_users=120, seed=SEED),
}


@pytest.fixture(scope="module")
def stream():
    return zipf_bipartite_stream(
        n_users=120, n_pairs=9_000, max_cardinality=900, duplicate_factor=0.4, seed=3
    )


def _windowed(method, epoch_pairs=2_000, window_epochs=4):
    factory = METHOD_FACTORIES[method]
    return WindowedEstimator(
        lambda _k: factory(), epoch_pairs=epoch_pairs, window_epochs=window_epochs
    )


class TestRotation:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            WindowedEstimator(lambda _k: FreeBS(64))
        with pytest.raises(ValueError):
            WindowedEstimator(lambda _k: FreeBS(64), epoch_pairs=10, epoch_span=1.0)

    def test_event_count_rotation(self, stream):
        window = _windowed("FreeBS", epoch_pairs=2_000)
        closed = window.ingest(stream)
        assert window.pairs_ingested == len(stream)
        assert all(epoch.pairs == 2_000 for epoch in closed)
        assert window.live_epoch.pairs == len(stream) % 2_000
        assert window.epochs_started == len(stream) // 2_000 + 1

    def test_ring_keeps_only_window_epochs(self, stream):
        window = _windowed("FreeBS", epoch_pairs=1_000, window_epochs=3)
        window.ingest(stream)
        assert len(window.epochs) == 3
        indices = [epoch.index for epoch in window.epochs]
        assert indices == sorted(indices)
        assert indices[-1] == window.epochs_started - 1

    @pytest.mark.parametrize("method", sorted(METHOD_FACTORIES))
    def test_tumbling_epoch_bit_identical_to_fresh_run(self, stream, method):
        """Satellite: every closed epoch equals a fresh estimator fed its slice."""
        epoch_pairs = 2_500
        window = _windowed(method, epoch_pairs=epoch_pairs, window_epochs=8)
        # Ingest in awkward batch sizes so rotations split mid-batch.
        for start in range(0, len(stream), 733):
            window.ingest(stream[start : start + 733])
        for position, epoch in enumerate(window.epochs):
            begin = epoch.index * epoch_pairs
            fresh = METHOD_FACTORIES[method]()
            fresh.process(stream[begin : begin + epoch.pairs])
            assert window.epoch_estimates(position) == fresh.estimates(), (
                f"epoch {epoch.index} of {method} diverged from a fresh run"
            )


class TestSlidingMerge:
    @pytest.mark.parametrize("method", ["CSE", "vHLL", "LPC", "HLL++"])
    def test_mergeable_methods_match_single_run(self, stream, method):
        """Sliding merge == one estimator fed the window, re-estimated fresh."""
        epoch_pairs = 2_000
        window = _windowed(method, epoch_pairs=epoch_pairs, window_epochs=4)
        window.ingest(stream)
        assert window.window_exactness() == EXACT
        merged = window.window_estimates()

        oldest = window.epochs[0]
        begin = oldest.index * epoch_pairs
        single = METHOD_FACTORIES[method]()
        single.process(stream[begin:])
        for user, estimate in merged.items():
            if hasattr(single, "estimate_fresh"):
                expected = single.estimate_fresh(user)
            else:
                expected = single.estimate(user)
            assert estimate == pytest.approx(expected, rel=1e-9, abs=1e-9), (
                f"{method} merged estimate for {user} diverged"
            )

    @pytest.mark.parametrize("method", ["FreeBS", "FreeRS"])
    def test_additive_methods_sum_epoch_estimates(self, stream, method):
        window = _windowed(method, epoch_pairs=2_000, window_epochs=4)
        window.ingest(stream)
        assert window.window_exactness() == ADDITIVE
        merged = window.window_estimates()
        expected: dict = {}
        for epoch in window.epochs:
            for user, value in epoch.estimates().items():
                expected[user] = expected.get(user, 0.0) + value
        assert merged.keys() == expected.keys()
        for user, value in expected.items():
            assert merged[user] == pytest.approx(value, rel=1e-12)

    def test_additive_window_total_tracks_exact_total(self, stream):
        """The documented tolerance: the additive window total is a sane
        estimate of the window's distinct pairs (cross-epoch duplicates are
        counted once per epoch they appear in, so it overshoots slightly)."""
        window = _windowed("FreeRS", epoch_pairs=2_000, window_epochs=4)
        window.ingest(stream)
        begin = window.epochs[0].index * 2_000
        exact = {}
        for user, item in stream[begin:]:
            exact.setdefault(user, set()).add(item)
        exact_total = sum(len(items) for items in exact.values())
        merged_total = sum(window.window_estimates().values())
        assert merged_total == pytest.approx(exact_total, rel=0.25)

    def test_sharded_epochs_merge_per_shard(self, stream):
        window = WindowedEstimator(
            lambda _k: ShardedEstimator(
                lambda _s: VirtualHLL(1 << 10, virtual_size=64, seed=SEED),
                shards=3,
                seed=SEED,
            ),
            epoch_pairs=2_000,
            window_epochs=4,
        )
        window.ingest(stream)
        assert merge_exactness(window.live_epoch.estimator) == EXACT
        merged = window.window_estimates()
        assert len(merged) > 50

    def test_window_last_restricts_the_slice(self, stream):
        window = _windowed("LPC", epoch_pairs=2_000, window_epochs=4)
        window.ingest(stream)
        live_only = window.window_estimates(last=1)
        assert live_only == window.epoch_estimates(-1)

    def test_single_epoch_window_uses_fresh_semantics(self, stream):
        """A one-epoch sliding query must answer with the same (fresh)
        semantics as a multi-epoch merge — no discontinuity at the first
        rotation for the shared-sketch methods, whose cached estimates are
        last-arrival snapshots."""
        window = _windowed("CSE", epoch_pairs=len(stream) + 1, window_epochs=4)
        window.ingest(stream)
        estimator = window.live_epoch.estimator
        merged = window.window_estimates()
        assert merged.keys() == estimator.estimates().keys()
        for user, value in merged.items():
            assert value == estimator.estimate_fresh(user)


class TestTimestampRotation:
    def test_grid_rotation_with_gaps(self):
        pairs = [(1, i) for i in range(6)]
        times = [0.0, 0.5, 1.5, 1.7, 5.2, 5.9]
        window = WindowedEstimator(
            lambda _k: FreeBS(1 << 10, seed=1), epoch_span=1.0, window_epochs=8
        )
        closed = window.ingest(pairs, times)
        # Cells: [0,1) 2 pairs, [1,2) 2 pairs, [2,3)(3,4)(4,5) empty, [5,6) live.
        assert [epoch.pairs for epoch in closed] == [2, 2, 0, 0, 0]
        assert [epoch.start_time for epoch in closed] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert window.live_epoch.start_time == 5.0
        assert window.live_epoch.pairs == 2

    def test_gap_longer_than_window_flushes_the_ring(self):
        window = WindowedEstimator(
            lambda _k: FreeBS(1 << 10, seed=1), epoch_span=1.0, window_epochs=3
        )
        window.ingest([(1, 1), (1, 2)], [0.0, 0.1])
        window.ingest([(2, 1)], [100.0])
        # Every retained epoch except the live one must be empty: the old
        # traffic is far outside the window.
        ring = window.epochs
        assert ring[-1].pairs == 1
        assert all(epoch.pairs == 0 for epoch in ring[:-1])
        assert ring[-1].start_time == math.floor(100.0)

    def test_default_clock_is_event_index(self):
        window = WindowedEstimator(
            lambda _k: FreeBS(1 << 10, seed=1), epoch_span=10.0, window_epochs=4
        )
        window.ingest([(1, i) for i in range(25)])
        assert window.epochs_started == 3
        assert window.last_timestamp == 24.0


class TestTimestampRegressions:
    """Non-monotonic arrival clocks: clamp to the live epoch, never mis-rotate.

    A regressed timestamp used to either raise mid-stream (provided
    timestamps) or silently land pairs in the wrong epoch (event-index
    timestamps generated below an earlier real clock).  The contract now:
    the pair stays in the live epoch, the regression is counted, and a
    strict mode restores the old raise for callers that want it.
    """

    def _span_window(self, strict=False):
        return WindowedEstimator(
            lambda _k: FreeBS(1 << 10, seed=1),
            epoch_span=1.0,
            window_epochs=4,
            strict_timestamps=strict,
        )

    def test_regressed_pair_lands_in_the_live_epoch(self):
        window = self._span_window()
        window.ingest([(1, 1), (1, 2)], [5.0, 5.5])
        started = window.epochs_started
        window.ingest([(2, 1)], [4.0])  # regresses below 5.5
        assert window.epochs_started == started  # no rotation happened
        assert window.live_epoch.pairs == 3
        assert window.regressions == 1
        assert window.last_timestamp == 5.5  # the clock never moves backwards

    def test_intra_batch_regression_is_clamped(self):
        window = self._span_window()
        closed = window.ingest([(1, 1), (1, 2), (1, 3)], [0.2, 0.1, 0.3])
        assert closed == []
        assert window.regressions == 1
        assert window.live_epoch.pairs == 3

    def test_strict_mode_raises(self):
        window = self._span_window(strict=True)
        window.ingest([(1, 1)], [5.0])
        with pytest.raises(ValueError):
            window.ingest([(1, 2)], [4.0])
        assert window.regressions == 0

    def test_mixing_timestamped_then_untimestamped_batches(self):
        # The event-index clock starts at pairs_ingested, far below the real
        # clock of the first batch; every generated timestamp regresses and
        # must be clamped instead of silently rotating the ring backwards.
        window = self._span_window()
        window.ingest([(1, 1), (1, 2)], [50.0, 50.5])
        started = window.epochs_started
        window.ingest([(2, 1), (2, 2)])  # event-index clock: 2.0, 3.0
        assert window.epochs_started == started
        assert window.live_epoch.pairs == 4
        assert window.regressions == 2
        assert window.last_timestamp == 50.5

    def test_event_count_mode_counts_regressions_too(self):
        window = WindowedEstimator(
            lambda _k: FreeBS(1 << 10, seed=1), epoch_pairs=10, window_epochs=4
        )
        window.ingest([(1, 1), (1, 2)], [3.0, 2.0])
        assert window.regressions == 1
        assert window.last_timestamp == 3.0

    def test_regressions_survive_snapshot_round_trip(self):
        from repro.monitor import MonitorSpec, monitor_from_json, monitor_to_json

        spec = MonitorSpec(
            method="FreeBS",
            memory_bits=1 << 12,
            epoch_pairs=None,
            epoch_span=1.0,
            threshold=5.0,
            delta=None,
        )
        monitor = spec.build()
        monitor.observe([(1, 1), (1, 2)], [5.0, 4.0])
        assert monitor.window.regressions == 1
        restored = monitor_from_json(monitor_to_json(monitor))
        assert restored.window.regressions == 1
        assert restored.window.strict_timestamps is False


class TestClosedEpochUsers:
    """Users present only in closed epochs must stay fresh in sliding queries
    — across snapshot restores and single-epoch merged copies alike."""

    @pytest.mark.parametrize("method", ["CSE", "vHLL"])
    def test_window_merged_single_epoch_is_fresh(self, method):
        window = _windowed(method, epoch_pairs=10_000, window_epochs=4)
        window.ingest([(user, item) for user in range(10) for item in range(30)])
        merged = window.window_merged(1)
        assert merged.estimates() == window.window_estimates(1), (
            "single-epoch merged copy kept stale as-of-last-arrival estimates"
        )

    @pytest.mark.parametrize("method", ["CSE", "vHLL", "FreeBS", "LPC"])
    def test_closed_epoch_only_user_survives_restore(self, method, tmp_path):
        from repro.monitor import MonitorSpec, SnapshotStore

        spec = MonitorSpec(
            method=method,
            memory_bits=1 << 14,
            expected_users=30,
            epoch_pairs=200,
            window_epochs=4,
            delta=5e-3,
        )
        monitor = spec.build()
        # "lonely" appears only in the first epoch; later batches rotate it
        # into closed-epoch territory without touching it again.
        monitor.observe([("lonely", item) for item in range(150)])
        monitor.observe([(user, item) for user in range(20) for item in range(25)])
        assert not monitor.window.epochs[0].closed or monitor.window.epochs_started > 1
        before = monitor.last_window_estimates()
        assert before.get("lonely", 0.0) > 0.0

        store = SnapshotStore(tmp_path)
        store.save(monitor)
        restored = store.restore()
        after = restored.window.window_estimates()
        assert after.get("lonely", 0.0) == before["lonely"], (
            "user present only in closed epochs dropped or stale after restore"
        )

    @pytest.mark.parametrize("method", ["CSE", "vHLL"])
    def test_fresh_estimates_cover_all_tracked_users(self, method):
        from repro.monitor.merge import fresh_estimates, tracked_users

        window = _windowed(method, epoch_pairs=500, window_epochs=4)
        pairs = [(user, item) for user in range(15) for item in range(60)]
        window.ingest(pairs)
        estimator = window.epochs[0].estimator
        fresh = fresh_estimates(estimator)
        assert set(fresh) == set(tracked_users(estimator))
        for user, value in fresh.items():
            assert value == estimator.estimate_fresh(user)
