"""Tests for continuous top-k spreader monitoring with hysteresis alerts."""

from __future__ import annotations

import pytest

from repro.baselines import ExactCounter
from repro.monitor import MonitorSpec, SpreaderMonitor, WindowedEstimator
from repro.streams import zipf_bipartite_stream


def _window(epoch_pairs=100, window_epochs=2):
    # LPC keeps the test dependent only on bitmap state, deterministic and
    # cheap; the estimator choice is orthogonal to the alerting logic.
    from repro.baselines import PerUserLPC

    return WindowedEstimator(
        lambda _k: PerUserLPC(1 << 14, expected_users=16, seed=5),
        epoch_pairs=epoch_pairs,
        window_epochs=window_epochs,
    )


def _heavy_batch(user, start, count):
    return [(user, start + offset) for offset in range(count)]


class TestValidation:
    def test_requires_exactly_one_threshold(self):
        with pytest.raises(ValueError):
            SpreaderMonitor(_window())
        with pytest.raises(ValueError):
            SpreaderMonitor(_window(), threshold=5.0, delta=0.1)

    def test_rejects_bad_hysteresis(self):
        with pytest.raises(ValueError):
            SpreaderMonitor(_window(), threshold=5.0, hysteresis=1.0)


class TestAlertLifecycle:
    def test_start_emitted_once_then_end_on_decay(self):
        monitor = SpreaderMonitor(
            _window(epoch_pairs=100, window_epochs=2), threshold=50.0, hysteresis=0.2
        )
        # Ramp one heavy user over several batches; it must alert exactly once.
        starts = []
        for round_index in range(4):
            alerts = monitor.observe(_heavy_batch("heavy", round_index * 100, 100))
            starts.extend(a for a in alerts if a.kind == "start" and a.user == "heavy")
        assert len(starts) == 1
        assert "heavy" in monitor.active_spreaders

        # Silence the heavy user; after the window rolls past its epochs the
        # windowed estimate collapses and an end event fires.
        ends = []
        for round_index in range(4):
            alerts = monitor.observe(_heavy_batch("noise", round_index * 100, 100))
            ends.extend(a for a in alerts if a.kind == "end" and a.user == "heavy")
        assert len(ends) == 1
        assert "heavy" not in monitor.active_spreaders

    def test_hysteresis_suppresses_flapping(self):
        # Enter at 50; exit at 25 (hysteresis 0.5).  An estimate oscillating
        # between ~30 and ~60 must produce exactly one start and no end.
        monitor = SpreaderMonitor(
            _window(epoch_pairs=60, window_epochs=2), threshold=50.0, hysteresis=0.5
        )
        events = []
        # Alternate heavy epochs (60 distinct) and light epochs (30 distinct):
        # the two-epoch window estimate swings between ~60 and ~90 and never
        # drops below the exit threshold.
        for round_index in range(6):
            count = 60 if round_index % 2 == 0 else 30
            batch = _heavy_batch("flappy", round_index * 1000, count)
            batch += _heavy_batch("pad", round_index * 1000, 60 - count + 30)
            events.extend(a for a in monitor.observe(batch) if a.user == "flappy")
        kinds = [event.kind for event in events]
        assert kinds == ["start"], f"expected one start, got {kinds}"

    def test_sequence_numbers_are_monotonic(self):
        monitor = SpreaderMonitor(_window(), threshold=10.0)
        sequences = []
        for round_index in range(3):
            for alert in monitor.observe(_heavy_batch(round_index, round_index * 100, 50)):
                sequences.append(alert.sequence)
        assert sequences == sorted(sequences)
        assert monitor.alerts_emitted == len(sequences)


class TestRelativeThreshold:
    def test_delta_threshold_tracks_window_total(self):
        pairs = zipf_bipartite_stream(
            n_users=150, n_pairs=8_000, max_cardinality=800, duplicate_factor=0.3, seed=9
        )
        spec = MonitorSpec(
            method="FreeRS",
            memory_bits=1 << 16,
            expected_users=150,
            epoch_pairs=2_000,
            window_epochs=4,
            delta=5e-3,
        )
        monitor = spec.build()
        alerts = []
        for start in range(0, len(pairs), 1_000):
            alerts.extend(monitor.observe(pairs[start : start + 1_000]))
        assert any(alert.kind == "start" for alert in alerts)
        assert monitor.last_enter_threshold > 0
        # Continuous top-k: ranked descending, bounded by k.
        top = monitor.current_top
        assert len(top) == spec.top_k
        estimates = [estimate for _user, estimate in top]
        assert estimates == sorted(estimates, reverse=True)
        # Every active spreader currently above the enter threshold is in the
        # window estimates with estimate >= exit threshold.
        window_estimates = monitor.window.window_estimates()
        exit_threshold = monitor.last_enter_threshold * (1 - spec.hysteresis)
        for user in monitor.active_spreaders:
            assert window_estimates.get(user, 0.0) >= exit_threshold


class TestTopKExactSanity:
    def test_topk_matches_exact_heavy_hitters(self):
        """With an exact counter per epoch the top-k must be the true top-k
        of the window (ExactCounter is not mergeable, so compare per epoch)."""
        pairs = zipf_bipartite_stream(
            n_users=80, n_pairs=4_000, max_cardinality=500, duplicate_factor=0.2, seed=4
        )
        window = WindowedEstimator(
            lambda _k: ExactCounter(), epoch_pairs=len(pairs) + 1, window_epochs=1
        )
        monitor = SpreaderMonitor(window, threshold=1e12, top_k=5)
        monitor.observe(pairs)
        exact = {}
        for user, item in pairs:
            exact.setdefault(user, set()).add(item)
        true_top = sorted(exact, key=lambda user: len(exact[user]), reverse=True)[:5]
        assert [user for user, _ in monitor.current_top] == true_top
