"""Unit tests for HyperLogLog++ (sparse representation, bias correction)."""

from __future__ import annotations

import pytest

from repro.sketches import HyperLogLog, HyperLogLogPlusPlus


class TestSparseRepresentation:
    def test_starts_sparse(self):
        sketch = HyperLogLogPlusPlus(m=256)
        assert sketch.is_sparse

    def test_densifies_after_enough_distinct_items(self):
        sketch = HyperLogLogPlusPlus(m=64, width=6)
        for item in range(200):
            sketch.add(item)
        assert not sketch.is_sparse

    def test_sparse_and_dense_estimates_agree_at_transition(self):
        # Estimates immediately before and after densification should be close.
        sparse = HyperLogLogPlusPlus(m=256, width=6, sparse=True)
        dense = HyperLogLogPlusPlus(m=256, width=6, sparse=False)
        for item in range(40):
            sparse.add(item)
            dense.add(item)
        assert sparse.estimate() == pytest.approx(dense.estimate(), rel=0.05)

    def test_sparse_disabled(self):
        sketch = HyperLogLogPlusPlus(m=64, sparse=False)
        assert not sketch.is_sparse
        sketch.add("x")
        assert sketch.estimate() > 0


class TestHLLPPAccuracy:
    def test_empty_estimate_zero(self):
        assert HyperLogLogPlusPlus(m=128).estimate() == pytest.approx(0.0)

    def test_duplicates_do_not_change_estimate(self):
        sketch = HyperLogLogPlusPlus(m=128, seed=4)
        sketch.add("a")
        first = sketch.estimate()
        for _ in range(100):
            sketch.add("a")
        assert sketch.estimate() == pytest.approx(first)

    @pytest.mark.parametrize("true_cardinality", [10, 100, 1_000, 30_000])
    def test_estimate_within_tolerance(self, true_cardinality):
        sketch = HyperLogLogPlusPlus(m=256, seed=6)
        for item in range(true_cardinality):
            sketch.add(item)
        relative_error = abs(sketch.estimate() - true_cardinality) / true_cardinality
        assert relative_error < 0.3

    def test_small_range_more_accurate_than_plain_hll_on_average(self):
        # HLL++'s raison d'etre in the paper: better small-cardinality bias.
        true_cardinality, repetitions = 300, 15
        hllpp_error = 0.0
        hll_error = 0.0
        for seed in range(repetitions):
            plus = HyperLogLogPlusPlus(m=64, width=6, seed=seed)
            plain = HyperLogLog(m=64, width=6, seed=seed)
            for item in range(true_cardinality):
                plus.add(item)
                plain.add(item)
            hllpp_error += abs(plus.estimate() - true_cardinality)
            hll_error += abs(plain.estimate() - true_cardinality)
        assert hllpp_error <= hll_error * 1.2

    def test_memory_bits_accounts_dense_equivalent(self):
        assert HyperLogLogPlusPlus(m=128, width=6).memory_bits() == 768

    def test_rejects_non_positive_m(self):
        with pytest.raises(ValueError):
            HyperLogLogPlusPlus(m=0)


class TestHLLPPMerge:
    def test_merge_sparse_into_sparse(self):
        a = HyperLogLogPlusPlus(m=256, seed=1)
        b = HyperLogLogPlusPlus(m=256, seed=1)
        for item in range(10):
            a.add(("a", item))
            b.add(("b", item))
        a.merge(b)
        assert a.estimate() == pytest.approx(20, abs=4)

    def test_merge_dense_into_dense(self):
        a = HyperLogLogPlusPlus(m=64, seed=2)
        b = HyperLogLogPlusPlus(m=64, seed=2)
        for item in range(500):
            a.add(("a", item))
            b.add(("b", item))
        union = HyperLogLogPlusPlus(m=64, seed=2)
        for item in range(500):
            union.add(("a", item))
            union.add(("b", item))
        a.merge(b)
        assert a.estimate() == pytest.approx(union.estimate(), rel=0.01)

    def test_merge_rejects_mismatched_parameters(self):
        with pytest.raises(ValueError):
            HyperLogLogPlusPlus(m=64).merge(HyperLogLogPlusPlus(m=128))
