"""Unit tests for the packed bit-array substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketches.bitarray import BitArray


class TestBitArrayBasics:
    def test_starts_all_zero(self):
        bits = BitArray(100)
        assert bits.ones == 0
        assert bits.zeros == 100
        assert bits.zero_fraction == 1.0

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            BitArray(0)

    def test_set_and_get(self):
        bits = BitArray(130)
        assert bits.set_bit(0) is True
        assert bits.set_bit(64) is True
        assert bits.set_bit(129) is True
        assert bits.get_bit(0)
        assert bits.get_bit(64)
        assert bits.get_bit(129)
        assert not bits.get_bit(1)

    def test_set_same_bit_twice_reports_no_change(self):
        bits = BitArray(10)
        assert bits.set_bit(3) is True
        assert bits.set_bit(3) is False
        assert bits.ones == 1

    def test_out_of_range_indices_raise(self):
        bits = BitArray(10)
        with pytest.raises(IndexError):
            bits.set_bit(10)
        with pytest.raises(IndexError):
            bits.set_bit(-1)
        with pytest.raises(IndexError):
            bits.get_bit(10)

    def test_len(self):
        assert len(BitArray(77)) == 77


class TestBitArrayCounting:
    def test_ones_tracks_incrementally(self):
        bits = BitArray(1000)
        for index in range(0, 1000, 3):
            bits.set_bit(index)
        assert bits.ones == len(range(0, 1000, 3))
        assert bits.ones == bits.recount()

    def test_zero_fraction(self):
        bits = BitArray(10)
        for index in range(5):
            bits.set_bit(index)
        assert bits.zero_fraction == pytest.approx(0.5)

    def test_clear(self):
        bits = BitArray(50)
        for index in range(25):
            bits.set_bit(index)
        bits.clear()
        assert bits.ones == 0
        assert bits.recount() == 0

    def test_memory_bits(self):
        assert BitArray(12345).memory_bits() == 12345


class TestBitArrayBulk:
    def test_set_bits_counts_unique_flips(self):
        bits = BitArray(64)
        flipped = bits.set_bits(np.array([1, 2, 2, 3, 1]))
        assert flipped == 3
        assert bits.ones == 3

    def test_get_bits(self):
        bits = BitArray(128)
        for index in (5, 70, 127):
            bits.set_bit(index)
        values = bits.get_bits(np.array([5, 6, 70, 127, 0]))
        assert values.tolist() == [True, False, True, True, False]

    def test_get_bits_range_check(self):
        bits = BitArray(16)
        with pytest.raises(IndexError):
            bits.get_bits(np.array([0, 16]))

    def test_to_numpy_roundtrip(self):
        bits = BitArray(70)
        indices = [0, 1, 63, 64, 69]
        for index in indices:
            bits.set_bit(index)
        dense = bits.to_numpy()
        assert dense.shape == (70,)
        assert sorted(np.nonzero(dense)[0].tolist()) == indices
