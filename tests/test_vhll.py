"""Unit tests for the vHLL baseline (virtual HLL register sharing)."""

from __future__ import annotations

import random

import pytest

from repro.baselines import VirtualHLL
from repro.baselines.exact import ExactCounter


class TestVirtualHLLBasics:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            VirtualHLL(0)
        with pytest.raises(ValueError):
            VirtualHLL(1024, virtual_size=0)
        with pytest.raises(ValueError):
            VirtualHLL(256, virtual_size=256)

    def test_unseen_user_estimate_is_zero(self):
        assert VirtualHLL(1 << 12).estimate("nobody") == 0.0
        assert VirtualHLL(1 << 12).estimate_fresh("nobody") == 0.0

    def test_duplicates_do_not_grow_estimate(self):
        estimator = VirtualHLL(1 << 12, virtual_size=64, seed=1)
        estimator.update("u", "a")
        first = estimator.estimate("u")
        for _ in range(50):
            estimator.update("u", "a")
        assert estimator.estimate("u") == pytest.approx(first)

    def test_memory_bits_accounts_width(self):
        assert VirtualHLL(1000, virtual_size=64, register_width=5).memory_bits() == 5000

    def test_estimates_returns_observed_users(self):
        estimator = VirtualHLL(1 << 12, virtual_size=64, seed=2)
        estimator.update("a", 1)
        estimator.update("b", 2)
        assert set(estimator.estimates()) == {"a", "b"}

    def test_estimate_never_negative(self):
        estimator = VirtualHLL(1 << 12, virtual_size=128, seed=3)
        # One tiny user drowned in cross-traffic: the corrected estimate may
        # be pushed toward zero but must never go negative.
        estimator.update("victim", "only-item")
        for user in range(300):
            for item in range(20):
                estimator.update(("noise", user), (user, item))
        assert estimator.estimate_fresh("victim") >= 0.0


class TestVirtualHLLAccuracy:
    def test_heavy_users_estimated_reasonably(self):
        estimator = VirtualHLL(1 << 15, virtual_size=128, seed=4)
        exact = ExactCounter()
        rng = random.Random(9)
        for _ in range(40_000):
            user = rng.randint(0, 30)
            item = rng.randint(0, 3_000)
            estimator.update(user, item)
            exact.update(user, item)
        for user, true_cardinality in exact.cardinalities().items():
            if true_cardinality >= 400:
                relative_error = abs(estimator.estimate(user) - true_cardinality) / true_cardinality
                assert relative_error < 0.5

    def test_large_range_beyond_lpc_limit(self):
        # vHLL's selling point over CSE: cardinalities far beyond m ln m.
        estimator = VirtualHLL(1 << 14, virtual_size=128, seed=5)
        true_cardinality = 30_000
        for item in range(true_cardinality):
            estimator.update("heavy", item)
        relative_error = abs(estimator.estimate("heavy") - true_cardinality) / true_cardinality
        assert relative_error < 0.4

    def test_global_noise_term_uses_small_range_correction(self):
        # On a lightly-loaded register array the noise term must not explode
        # (it would push every light user to zero).
        estimator = VirtualHLL(1 << 14, virtual_size=64, seed=6)
        for item in range(60):
            estimator.update("victim", item)
        for user in range(100):
            for item in range(10):
                estimator.update(("noise", user), (user, item))
        assert estimator.estimate_fresh("victim") > 10
