"""Unit tests for the synthetic stream generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactCounter
from repro.streams.generators import (
    StreamSpec,
    interleaved_stream,
    uniform_bipartite_stream,
    zipf_bipartite_stream,
    zipf_cardinalities,
)


class TestZipfCardinalities:
    def test_length_and_bounds(self):
        cards = zipf_cardinalities(1_000, alpha=1.3, max_cardinality=500, seed=1)
        assert cards.shape == (1_000,)
        assert cards.min() >= 1
        assert cards.max() <= 500

    def test_heavy_tail_present(self):
        cards = zipf_cardinalities(5_000, alpha=1.2, max_cardinality=2_000, seed=2)
        # Most users small, a few large: the 99th percentile should be far
        # above the median.
        assert np.percentile(cards, 99) > 5 * np.median(cards)

    def test_deterministic_per_seed(self):
        a = zipf_cardinalities(100, seed=3)
        b = zipf_cardinalities(100, seed=3)
        c = zipf_cardinalities(100, seed=4)
        assert a.tolist() == b.tolist()
        assert a.tolist() != c.tolist()

    def test_alpha_one_special_case(self):
        cards = zipf_cardinalities(500, alpha=1.0, max_cardinality=100, seed=5)
        assert cards.min() >= 1
        assert cards.max() <= 100

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            zipf_cardinalities(0)
        with pytest.raises(ValueError):
            zipf_cardinalities(10, alpha=0)
        with pytest.raises(ValueError):
            zipf_cardinalities(10, max_cardinality=1, min_cardinality=5)


class TestZipfBipartiteStream:
    def test_exact_cardinalities_match_targets_scale(self):
        pairs = zipf_bipartite_stream(
            n_users=200, n_pairs=5_000, alpha=1.3, duplicate_factor=0.0, seed=6
        )
        exact = ExactCounter()
        for user, item in pairs:
            exact.update(user, item)
        # With duplicate_factor 0, every pair is distinct.
        assert exact.total_cardinality == len(pairs)
        assert exact.total_cardinality == pytest.approx(5_000, rel=0.25)

    def test_duplicate_factor_controls_duplicates(self):
        pairs = zipf_bipartite_stream(
            n_users=100, n_pairs=2_000, duplicate_factor=1.0, seed=7
        )
        exact = ExactCounter()
        for user, item in pairs:
            exact.update(user, item)
        duplicate_ratio = 1.0 - exact.total_cardinality / len(pairs)
        assert 0.3 < duplicate_ratio < 0.6

    def test_users_are_contiguous_integers(self):
        pairs = zipf_bipartite_stream(n_users=50, n_pairs=500, seed=8)
        users = {user for user, _ in pairs}
        assert users <= set(range(50))

    def test_deterministic_per_seed(self):
        a = zipf_bipartite_stream(n_users=30, n_pairs=200, seed=9)
        b = zipf_bipartite_stream(n_users=30, n_pairs=200, seed=9)
        assert a == b

    def test_shared_item_space(self):
        pairs = zipf_bipartite_stream(
            n_users=20, n_pairs=300, seed=10, shared_item_space=True, duplicate_factor=0.0
        )
        items = {item for _, item in pairs}
        # Items drawn from a compact universe rather than user-striped ranges.
        assert max(items) < 10_000

    def test_rejects_negative_duplicate_factor(self):
        with pytest.raises(ValueError):
            zipf_bipartite_stream(n_users=10, duplicate_factor=-0.5)


class TestUniformAndInterleaved:
    def test_uniform_every_user_has_requested_cardinality(self):
        pairs = uniform_bipartite_stream(n_users=40, cardinality=25, seed=11)
        exact = ExactCounter()
        for user, item in pairs:
            exact.update(user, item)
        assert set(exact.cardinalities().values()) == {25}

    def test_uniform_rejects_bad_cardinality(self):
        with pytest.raises(ValueError):
            uniform_bipartite_stream(n_users=5, cardinality=0)

    def test_interleaved_group_ordering(self):
        pairs = interleaved_stream(early_users=10, late_users=10, cardinality=20, seed=12)
        # Every pair of an early user must appear before any pair of a late user.
        last_early_position = max(
            index for index, (user, _) in enumerate(pairs) if user < 10
        )
        first_late_position = min(
            index for index, (user, _) in enumerate(pairs) if user >= 10
        )
        assert last_early_position < first_late_position

    def test_interleaved_cardinalities(self):
        pairs = interleaved_stream(early_users=5, late_users=5, cardinality=30, seed=13)
        exact = ExactCounter()
        for user, item in pairs:
            exact.update(user, item)
        assert exact.user_count == 10
        assert set(exact.cardinalities().values()) == {30}


class TestStreamSpec:
    def test_generate_matches_parameters(self):
        spec = StreamSpec(name="test", n_users=100, target_total_cardinality=2_000, seed=14)
        pairs = spec.generate()
        exact = ExactCounter()
        for user, item in pairs:
            exact.update(user, item)
        assert exact.user_count <= 100
        assert exact.total_cardinality == pytest.approx(2_000, rel=0.3)

    def test_seed_offset_changes_realisation(self):
        spec = StreamSpec(name="test", n_users=50, target_total_cardinality=500, seed=15)
        assert spec.generate(0) != spec.generate(1)

    def test_iter_pairs(self):
        spec = StreamSpec(name="test", n_users=20, target_total_cardinality=100, seed=16)
        assert list(spec.iter_pairs()) == spec.generate()
