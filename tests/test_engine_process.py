"""Tests for the chunked batch fast path behind ``CardinalityEstimator.process``.

``process`` must be a pure performance optimisation: for every estimator —
batch-capable or not — consuming a stream through it leaves the estimator
in exactly the state the scalar ``update`` loop produces.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import CSE, ExactCounter, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.core import FreeBS, FreeRS
from repro.engine import DEFAULT_CHUNK_PAIRS, process_stream, supports_batch
from repro.streams.stream import GraphStream


def _random_pairs(count, seed=0):
    rng = random.Random(seed)
    return [(rng.randint(0, 70), rng.randint(0, 500)) for _ in range(count)]


FACTORIES = {
    "FreeBS": lambda: FreeBS(3000, seed=5),
    "FreeRS": lambda: FreeRS(700, seed=5),
    "CSE": lambda: CSE(5000, virtual_size=96, seed=5),
    "vHLL": lambda: VirtualHLL(1900, virtual_size=96, seed=5),
    "LPC": lambda: PerUserLPC(1 << 15, expected_users=70, seed=5),
    "HLL++": lambda: PerUserHLLPP(1 << 15, expected_users=70, seed=5),
}


class TestProcessRouting:
    @pytest.mark.parametrize("method", sorted(FACTORIES))
    def test_process_equals_scalar_loop(self, method):
        pairs = _random_pairs(2_000, seed=1)
        scalar = FACTORIES[method]()
        for user, item in pairs:
            scalar.update(user, item)
        processed = FACTORIES[method]().process(pairs, chunk_size=257)
        assert processed.estimates() == scalar.estimates()

    def test_process_default_chunking_equals_scalar_loop(self):
        # More pairs than one default chunk, to cover the chunk boundary.
        pairs = _random_pairs(DEFAULT_CHUNK_PAIRS + 500, seed=2)
        scalar = FACTORIES["FreeBS"]()
        for user, item in pairs:
            scalar.update(user, item)
        processed = FACTORIES["FreeBS"]().process(pairs)
        assert processed.estimates() == scalar.estimates()

    def test_process_accepts_graph_streams_and_generators(self):
        pairs = _random_pairs(1_000, seed=3)
        stream = GraphStream(pairs, name="t")
        via_stream = FACTORIES["vHLL"]().process(stream)
        via_generator = FACTORIES["vHLL"]().process(pair for pair in pairs)
        assert via_stream.estimates() == via_generator.estimates()

    def test_process_returns_self(self):
        estimator = FACTORIES["FreeRS"]()
        assert estimator.process([]) is estimator

    def test_non_batch_estimators_fall_back_to_scalar(self):
        pairs = _random_pairs(500, seed=4)
        assert not supports_batch(ExactCounter())
        exact = ExactCounter().process(pairs)
        reference = ExactCounter()
        for user, item in pairs:
            reference.update(user, item)
        assert exact.estimates() == reference.estimates()

    def test_all_six_methods_support_batch(self):
        for factory in FACTORIES.values():
            assert supports_batch(factory())

    def test_process_stream_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            process_stream(FACTORIES["FreeBS"](), [], chunk_size=-1)
        with pytest.raises(ValueError):
            process_stream(FACTORIES["FreeBS"](), [], chunk_size=0)

    def test_graphstream_with_numpy_integer_ids_feeds_the_encoder(self):
        import numpy as np

        pairs = list(zip(np.arange(50), np.arange(50) % 7))
        users, items = GraphStream(pairs).to_int_arrays()
        assert users.dtype.kind in "iu" and items.dtype.kind in "iu"
