"""Tests for the experiment harness: config, report tables, registry, and runs.

The per-experiment runs use a deliberately tiny configuration so the whole
module stays fast; the full-size runs are exercised by the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, ExperimentConfig, Table, list_experiments, run_experiment
from repro.experiments.estimators import METHOD_ORDER, build_estimators
from repro.experiments.report import render_tables


def _tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        dataset_scale=0.02,
        memory_bits=1 << 14,
        virtual_size=64,
        delta=2e-2,
        checkpoints=3,
        datasets=["chicago", "Orkut"],
    )


class TestExperimentConfig:
    def test_registers_derived_from_memory(self):
        config = ExperimentConfig(memory_bits=1 << 20, register_width=5)
        assert config.registers == (1 << 20) // 5

    def test_presets(self):
        assert ExperimentConfig.quick().dataset_scale < ExperimentConfig.full().dataset_scale
        assert ExperimentConfig.quick().memory_bits < ExperimentConfig().memory_bits

    def test_scaled_copy(self):
        config = ExperimentConfig().scaled(0.1)
        assert config.dataset_scale == 0.1


class TestTable:
    def test_add_row_and_column(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2.0)
        table.add_row(3, 4.0)
        assert table.column("a") == [1, 3]
        assert table.row_dicts()[1] == {"a": 3, "b": 4.0}

    def test_add_row_wrong_arity(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_unknown_column(self):
        table = Table("t", ["a"])
        with pytest.raises(KeyError):
            table.column("zzz")

    def test_render_contains_title_and_values(self):
        table = Table("My results", ["x", "value"])
        table.add_row("point", 0.123456)
        table.add_note("a note")
        rendered = table.render()
        assert "My results" in rendered
        assert "point" in rendered
        assert "note: a note" in rendered

    def test_to_csv(self, tmp_path):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2)
        path = tmp_path / "out.csv"
        table.to_csv(path)
        assert path.read_text().splitlines()[0] == "a,b"

    def test_render_tables_joins(self):
        tables = [Table("one", ["a"]), Table("two", ["b"])]
        joined = render_tables(tables)
        assert "one" in joined and "two" in joined


class TestEstimatorFactory:
    def test_builds_all_methods_by_default(self):
        estimators = build_estimators(ExperimentConfig.quick(), expected_users=100)
        assert list(estimators) == METHOD_ORDER

    def test_builds_subset(self):
        estimators = build_estimators(
            ExperimentConfig.quick(), expected_users=100, methods=["FreeBS", "vHLL"]
        )
        assert list(estimators) == ["FreeBS", "vHLL"]

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            build_estimators(ExperimentConfig.quick(), expected_users=10, methods=["nope"])

    def test_equal_memory_budget(self):
        config = ExperimentConfig(memory_bits=1 << 18)
        estimators = build_estimators(config, expected_users=100, methods=["FreeBS", "FreeRS", "CSE", "vHLL"])
        assert estimators["FreeBS"].memory_bits() == 1 << 18
        assert estimators["CSE"].memory_bits() == 1 << 18
        # Register methods account width * count, which equals the budget up
        # to the integer division remainder.
        assert estimators["FreeRS"].memory_bits() == pytest.approx(1 << 18, rel=0.01)
        assert estimators["vHLL"].memory_bits() == pytest.approx(1 << 18, rel=0.01)


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        names = list_experiments()
        for artefact in ["table1", "table2", "figure2", "figure3", "figure4", "figure5", "figure6"]:
            assert artefact in names

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_registry_values_are_callables(self):
        assert all(callable(function) for function in EXPERIMENTS.values())

    def test_unknown_kwargs_rejected_eagerly(self):
        with pytest.raises(TypeError, match="unexpected keyword arguments"):
            run_experiment("table1", _tiny_config(), bogus=True)

    def test_known_kwargs_still_pass_through(self):
        table = run_experiment("figure5", _tiny_config(), datasets=["chicago"])
        assert len(table.rows) > 0


class TestExperimentRuns:
    def test_table1(self):
        table = run_experiment("table1", _tiny_config())
        assert len(table.rows) == 2
        assert set(table.column("dataset")) == {"chicago", "Orkut"}

    def test_figure2(self):
        table = run_experiment("figure2", _tiny_config())
        ccdf_values = table.column("ccdf")
        assert all(0.0 <= value <= 1.0 for value in ccdf_values)

    def test_figure4(self):
        table = run_experiment("figure4", _tiny_config(), dataset="Orkut")
        assert set(table.column("method")) == set(METHOD_ORDER)

    def test_figure5_shape(self):
        table = run_experiment("figure5", _tiny_config(), datasets=["chicago"])
        methods = set(table.column("method"))
        assert "FreeBS" in methods and "vHLL" in methods
        assert all(value >= 0 for value in table.column("rse"))

    def test_figure6_checkpoints(self):
        config = _tiny_config()
        table = run_experiment("figure6", config, dataset="chicago", methods=["FreeBS", "FreeRS"])
        checkpoints = {row["checkpoint"] for row in table.row_dicts() if row["method"] == "FreeBS"}
        assert checkpoints == {1, 2, 3}

    def test_table2(self):
        table = run_experiment("table2", _tiny_config(), methods=["FreeBS", "HLL++"])
        rows = table.row_dicts()
        assert {row["method"] for row in rows} == {"FreeBS", "HLL++"}
        assert all(0.0 <= row["fnr"] <= 1.0 for row in rows)
        assert all(0.0 <= row["fpr"] <= 1.0 for row in rows)

    def test_figure3_runtime_columns(self):
        table = run_experiment("figure3", _tiny_config(), sweep=[32, 64], pairs_per_point=300)
        assert table.column("m") == [32, 64]
        for method in METHOD_ORDER:
            assert all(value > 0 for value in table.column(method))

    def test_ablation_bs_vs_rs(self):
        table = run_experiment("ablation_bs_vs_rs", _tiny_config(), group_users=30, cardinality=60)
        assert len(table.rows) == 4

    def test_ablation_memory(self):
        table = run_experiment(
            "ablation_memory", _tiny_config(), dataset="chicago", multipliers=[0.5, 1.0]
        )
        assert len(table.rows) == 8

    def test_parallel_ingest(self):
        table = run_experiment(
            "parallel_ingest", _tiny_config(), dataset="chicago", workers=[1, 2]
        )
        rows = table.row_dicts()
        assert [row["workers"] for row in rows] == [1, 2]
        assert all(row["estimates_match"] for row in rows)

    def test_ablation_m_sensitivity(self):
        table = run_experiment(
            "ablation_m_sensitivity", _tiny_config(), dataset="chicago", sweep=[32, 64]
        )
        methods = set(table.column("method"))
        assert methods == {"FreeBS", "FreeRS", "CSE", "vHLL"}


class TestRegisterWidthAblation:
    def test_sweep_reports_requested_widths(self):
        table = run_experiment(
            "ablation_register_width", _tiny_config(), dataset="chicago", widths=[4, 5]
        )
        assert table.column("width_bits") == [4, 5]
        assert table.column("max_rank") == [15, 31]

    def test_register_counts_follow_budget(self):
        config = _tiny_config()
        table = run_experiment(
            "ablation_register_width", config, dataset="chicago", widths=[4, 8]
        )
        rows = {row["width_bits"]: row for row in table.row_dicts()}
        assert rows[4]["registers"] == config.memory_bits // 4
        assert rows[8]["registers"] == config.memory_bits // 8

    def test_errors_are_finite_and_nonnegative(self):
        table = run_experiment(
            "ablation_register_width", _tiny_config(), dataset="chicago", widths=[5]
        )
        row = table.row_dicts()[0]
        assert row["rse_light_users"] >= 0.0
        assert row["rse_heavy_users"] >= 0.0
