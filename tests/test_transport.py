"""Tests for the negotiated binary wire transport.

The load-bearing contracts:

* negotiation degrades cleanly — a binary-requesting client falls back to
  NDJSON against servers that decline binary or predate the ``hello``
  exchange entirely, and a *forced* binary client fails loudly instead;
* binary answers are **bit-identical** to NDJSON answers for every op
  (same envelope, exact float equality) — the transport changes bytes on
  the wire, never what the caller observes;
* malformed frames (bad magic, unsupported version, over-cap declared
  length) answer ``bad_request`` without killing the connection, while
  truncation mid-frame — where no resync point exists — fails the
  connection after a final error frame;
* ``batch_spread`` transparently splits on ``response_too_large`` and
  surfaces every chunk's consistency stamp.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro.monitor import MonitorSpec
from repro.service import (
    OPS,
    EstimateServer,
    EstimateService,
    ServiceClient,
    ServiceError,
    frames,
)
from repro.streams import zipf_bipartite_stream

_USERS = 80


@pytest.fixture(scope="module")
def stream():
    return zipf_bipartite_stream(
        n_users=_USERS, n_pairs=6_000, max_cardinality=500, duplicate_factor=0.4, seed=9
    )


def _spec(method="FreeRS"):
    return MonitorSpec(
        method=method,
        memory_bits=1 << 14,
        expected_users=_USERS,
        epoch_pairs=1_500,
        window_epochs=4,
        delta=5e-3,
    )


class _ServerThread:
    """Run an EstimateServer on its own event loop thread for sync clients."""

    def __init__(self, service: EstimateService, transports="default"):
        self.service = service
        self.transports = transports
        self.port = None
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10.0), "server did not come up"

    def _run(self):
        async def main():
            kwargs = {} if self.transports == "default" else {
                "transports": self.transports
            }
            server = EstimateServer(self.service, port=0, **kwargs)
            await server.start()
            self.port = server.port
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await server.close()

        asyncio.run(main())

    def close(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)


def _served(stream, transports="default"):
    monitor = _spec().build()
    monitor.observe(stream[:4_000])
    service = EstimateService(monitor)
    return monitor, _ServerThread(service, transports=transports)


@pytest.fixture()
def served(stream):
    monitor, server = _served(stream)
    try:
        yield monitor, server
    finally:
        server.close()


@pytest.fixture()
def ndjson_only(stream):
    """A server that answers ``hello`` but never chooses binary."""
    monitor, server = _served(stream, transports=("ndjson",))
    try:
        yield monitor, server
    finally:
        server.close()


@pytest.fixture()
def legacy(stream):
    """A pre-negotiation server: ``hello`` falls through as ``unknown_op``."""
    monitor, server = _served(stream, transports=None)
    try:
        yield monitor, server
    finally:
        server.close()


class TestNegotiation:
    def test_binary_client_negotiates_binary(self, served):
        monitor, server = served
        with ServiceClient(port=server.port, transport="binary") as client:
            assert client.transport == "binary"
            assert client.topk(5) == monitor.current_top[:5]

    def test_auto_prefers_binary_when_offered(self, served):
        _monitor, server = served
        with ServiceClient(port=server.port, transport="auto") as client:
            assert client.transport == "binary"

    def test_auto_falls_back_when_server_declines_binary(self, ndjson_only):
        monitor, server = ndjson_only
        with ServiceClient(port=server.port, transport="auto") as client:
            assert client.transport == "ndjson"
            assert client.topk(5) == monitor.current_top[:5]

    def test_auto_falls_back_against_pre_negotiation_server(self, legacy):
        monitor, server = legacy
        with ServiceClient(port=server.port, transport="auto") as client:
            assert client.transport == "ndjson"
            assert client.topk(5) == monitor.current_top[:5]

    def test_forced_binary_fails_when_server_declines(self, ndjson_only):
        _monitor, server = ndjson_only
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(port=server.port, transport="binary")
        assert excinfo.value.code == "binary_unavailable"

    def test_forced_binary_fails_against_pre_negotiation_server(self, legacy):
        _monitor, server = legacy
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(port=server.port, transport="binary")
        assert excinfo.value.code == "binary_unavailable"

    def test_rejects_unknown_transport_name(self, served):
        _monitor, server = served
        with pytest.raises(ValueError, match="transport must be"):
            ServiceClient(port=server.port, transport="carrier-pigeon")

    def test_hello_reports_both_size_caps(self, ndjson_only):
        from repro.service import protocol

        _monitor, server = ndjson_only
        with ServiceClient(port=server.port) as client:
            result = client.request("hello", transports=["binary"])["result"]
        assert result["transport"] == "ndjson"
        assert result["transports"] == ["ndjson"]
        assert result["max_line_bytes"] == protocol.MAX_LINE_BYTES
        assert result["max_frame_bytes"] == frames.MAX_FRAME_BYTES

    def test_server_rejects_unknown_transports(self, stream):
        service = EstimateService(_spec().build())
        with pytest.raises(ValueError, match="unknown transports"):
            EstimateServer(service, transports=("ndjson", "smoke-signals"))


class TestBitIdentity:
    """Binary answers must equal NDJSON answers exactly — envelope for
    envelope, float for float — for every op in the registry."""

    def test_every_op_answers_identically(self, served):
        monitor, server = served
        users = [user for user, _ in monitor.current_top[:40]] + [10**9]
        covered = set()
        with ServiceClient(port=server.port, transport="ndjson") as text, \
                ServiceClient(port=server.port, transport="binary") as binary:

            def compare(op, **params):
                covered.add(op)
                a = dict(text.request(op, **params))
                b = dict(binary.request(op, **params))
                a.pop("id"), b.pop("id")
                return a, b

            a, b = compare("spread", user=users[0])
            assert a == b
            a, b = compare("batch_spread", users=users)
            assert a == b
            a, b = compare("topk", k=10)
            assert a == b
            a, b = compare("sliding", k_epochs=2)
            assert a == b
            a, b = compare("sliding")
            assert a == b
            a, b = compare("stats")
            # The op is counted per request, so the second client's counter
            # is one ahead by construction; everything else must match.
            a["result"].pop("queries_served"), b["result"].pop("queries_served")
            assert a == b
            a, b = compare("metrics")
            # Telemetry values advance with every request (the first metrics
            # request even mints its own request counter), so the payloads
            # cannot be bit-identical; the envelope and the enabled flag
            # must be, and the registry only ever grows between snapshots.
            result_a, result_b = a.pop("result"), b.pop("result")
            assert a == b
            assert result_a["enabled"] == result_b["enabled"]
            ids_a = {(m["name"], str(m["labels"])) for m in result_a["metrics"]}
            ids_b = {(m["name"], str(m["labels"])) for m in result_b["metrics"]}
            assert ids_a <= ids_b
        assert covered == set(OPS), "an op joined the registry untested"

    def test_numpy_array_requests_work_on_both_transports(self, served):
        monitor, server = served
        users = np.asarray(
            [user for user, _ in monitor.current_top[:16]], dtype=np.int64
        )
        expected = [monitor.last_window_estimates().get(int(u), 0.0) for u in users]
        for transport in ("ndjson", "binary"):
            with ServiceClient(port=server.port, transport=transport) as client:
                assert client.batch_spread(users) == expected

    def test_string_users_ride_the_json_header(self, stream):
        """Ids that don't fit int64 buffers stay in the JSON header — the
        binary transport degrades per field, never per connection."""
        monitor = _spec().build()
        monitor.observe([(f"u{user}", item) for user, item in stream[:3_000]])
        server = _ServerThread(EstimateService(monitor))
        estimates = monitor.last_window_estimates()
        some = list(estimates)[:8]
        try:
            with ServiceClient(port=server.port, transport="binary") as client:
                assert client.batch_spread(some) == [estimates[u] for u in some]
                assert client.topk(5) == monitor.current_top[:5]
        finally:
            server.close()


def _binary_connection(port):
    """A raw socket switched to the binary transport via ``hello``."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    reader = sock.makefile("rb")
    sock.sendall(
        json.dumps({"id": 0, "op": "hello", "transports": ["binary"]}).encode() + b"\n"
    )
    response = json.loads(reader.readline())
    assert response["result"]["transport"] == "binary"
    return sock, reader


class TestFrameRobustness:
    """Malformed frames answer ``bad_request``; only truncation — where no
    resync point exists — is allowed to end the connection."""

    @pytest.mark.parametrize(
        "header, defect",
        [
            (frames.FRAME_HEADER.pack(b"XX", frames.FRAME_VERSION, 0, 0), "magic"),
            (frames.FRAME_HEADER.pack(frames.MAGIC, 99, 0, 0), "version"),
            (
                frames.FRAME_HEADER.pack(
                    frames.MAGIC, frames.FRAME_VERSION, 0, frames.MAX_FRAME_BYTES + 1
                ),
                "exceeds",
            ),
        ],
    )
    def test_bad_headers_answer_bad_request_and_keep_the_connection(
        self, served, header, defect
    ):
        _monitor, server = served
        sock, reader = _binary_connection(server.port)
        try:
            sock.sendall(header)
            error = frames.read_frame(reader)
            assert error["ok"] is False
            assert error["error"]["code"] == "bad_request"
            assert defect in error["error"]["message"]
            # The connection realigns: a well-formed frame still answers.
            sock.sendall(frames.encode_frame({"id": 7, "op": "topk", "k": 3}))
            response = frames.read_frame(reader)
            assert response["ok"] is True and response["id"] == 7
        finally:
            sock.close()

    def test_truncated_payload_fails_the_connection_cleanly(self, served):
        _monitor, server = served
        sock, reader = _binary_connection(server.port)
        try:
            sock.sendall(
                frames.FRAME_HEADER.pack(frames.MAGIC, frames.FRAME_VERSION, 0, 100)
                + b"x" * 10
            )
            sock.shutdown(socket.SHUT_WR)
            error = frames.read_frame(reader)
            assert error["ok"] is False
            assert error["error"]["code"] == "bad_request"
            assert "mid frame payload" in error["error"]["message"]
            assert frames.read_frame(reader) is None  # server hung up
        finally:
            sock.close()

    def test_truncated_header_fails_the_connection_cleanly(self, served):
        _monitor, server = served
        sock, reader = _binary_connection(server.port)
        try:
            sock.sendall(b"FS\x01")
            sock.shutdown(socket.SHUT_WR)
            error = frames.read_frame(reader)
            assert error["ok"] is False
            assert "mid frame header" in error["error"]["message"]
            assert frames.read_frame(reader) is None
        finally:
            sock.close()

    def test_garbage_frame_payload_answers_bad_request(self, served):
        _monitor, server = served
        sock, reader = _binary_connection(server.port)
        try:
            payload = b"\xff" * 32
            sock.sendall(
                frames.FRAME_HEADER.pack(
                    frames.MAGIC, frames.FRAME_VERSION, 0, len(payload)
                )
                + payload
            )
            error = frames.read_frame(reader)
            assert error["ok"] is False
            assert error["error"]["code"] == "bad_request"
            sock.sendall(frames.encode_frame({"id": 9, "op": "stats"}))
            assert frames.read_frame(reader)["ok"] is True
        finally:
            sock.close()


class TestBatchSpreadAutoChunk:
    """``batch_spread`` splits transparently on ``response_too_large`` and
    reports every chunk's consistency stamp via ``last_response``."""

    def test_chunks_reassemble_in_order_with_stitched_stamps(
        self, served, monkeypatch
    ):
        import repro.service.protocol as protocol

        monitor, server = served
        estimates = monitor.last_window_estimates()
        users = list(estimates)[:60]
        expected = [estimates[user] for user in users]
        with ServiceClient(port=server.port) as client:
            # Small enough to force several splits, large enough that the
            # substituted error envelope and ~8-user chunks still fit.
            monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 420)
            assert client.batch_spread(users) == expected
            stitched = client.last_response["stitched"]
            assert stitched["chunks"] >= 2
            assert len(stitched["stamps"]) == stitched["chunks"]
            # No ingest ran between chunks: every stamp names one state.
            assert len({tuple(stamp) for stamp in stitched["stamps"]}) == 1
            version, pairs = stitched["stamps"][-1]
            assert client.last_response["version"] == version
            assert client.last_response["pairs_ingested"] == pairs == 4_000
            # A fitting exchange afterwards leaves a plain envelope again.
            monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 1 << 20)
            client.batch_spread(users[:4])
            assert "stitched" not in client.last_response

    def test_single_user_failure_is_surfaced_not_looped(self, served, monkeypatch):
        import repro.service.protocol as protocol

        monitor, server = served
        user = next(iter(monitor.last_window_estimates()))
        with ServiceClient(port=server.port) as client:
            monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 16)
            with pytest.raises(ServiceError) as excinfo:
                client.batch_spread([user])
            assert excinfo.value.code == "response_too_large"
