"""Tests for the async estimate-serving subsystem.

The load-bearing contracts (mirroring the CI ``serve-smoke`` job):

* every client answer (``spread`` / ``batch_spread`` / ``topk`` /
  ``sliding``) is identical to the direct monitor call on the state the
  response's ``(version, pairs_ingested)`` stamp names — before and after
  epoch rotations, and while ingest is running concurrently;
* a monitor recovered from a snapshot serves identical answers;
* protocol errors (unknown op, bad params, malformed JSON) answer with
  error envelopes and keep the connection usable.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.monitor import MonitorSpec, SnapshotStore
from repro.runtime import IngestHandle, batch_slices, ingest_handle_for_monitor
from repro.service import OPS, EstimateServer, EstimateService, ServiceClient, ServiceError
from repro.streams import zipf_bipartite_stream

_USERS = 80
_BATCH = 500


@pytest.fixture(scope="module")
def stream():
    return zipf_bipartite_stream(
        n_users=_USERS, n_pairs=6_000, max_cardinality=500, duplicate_factor=0.4, seed=9
    )


def _spec(method="FreeRS"):
    return MonitorSpec(
        method=method,
        memory_bits=1 << 14,
        expected_users=_USERS,
        epoch_pairs=1_500,
        window_epochs=4,
        delta=5e-3,
    )


class _ServerThread:
    """Run an EstimateServer on its own event loop thread for sync clients."""

    def __init__(self, service: EstimateService):
        self.service = service
        self.port = None
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10.0), "server did not come up"

    def _run(self):
        async def main():
            server = EstimateServer(self.service, port=0)
            await server.start()
            self.port = server.port
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await server.close()

        asyncio.run(main())

    def close(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)


@pytest.fixture()
def served(stream):
    monitor = _spec().build()
    monitor.observe(stream[:4_000])
    service = EstimateService(monitor)
    server = _ServerThread(service)
    try:
        yield monitor, service, server
    finally:
        server.close()


class TestQueryIdentity:
    def test_hot_ops_match_direct_monitor_calls(self, served, stream):
        monitor, _service, server = served
        estimates = monitor.last_window_estimates()
        some_users = list(estimates)[:8]
        with ServiceClient(port=server.port) as client:
            assert client.batch_spread(some_users) == [
                estimates[user] for user in some_users
            ]
            assert client.spread(some_users[0]) == estimates[some_users[0]]
            assert client.topk(monitor.top_k) == [
                (user, value) for user, value in monitor.current_top
            ]
            assert client.spread(10**9) == 0.0

    def test_sliding_matches_window_estimates(self, served):
        monitor, _service, server = served
        with ServiceClient(port=server.port) as client:
            for k in (1, 2, None):
                expected = monitor.window.window_estimates(k)
                assert client.sliding(k) == expected

    def test_sliding_stamp_names_the_merged_state_even_when_snapshot_lags(
        self, served, stream
    ):
        """With refresh_every > 1 the published snapshot lags the window;
        the sliding response must still be stamped with the state it merged,
        not the stale snapshot (the offline-reproducibility contract)."""
        monitor, service, server = served
        monitor.observe(stream[4_000:5_000])  # published snapshot NOT refreshed
        with ServiceClient(port=server.port) as client:
            estimates = client.sliding(2)
            assert client.last_pairs_ingested == 5_000
            assert estimates == monitor.window.window_estimates(2)
            # The hot path still answers from the published (older) snapshot.
            client.topk(3)
            assert client.last_pairs_ingested == 4_000

    def test_answers_identical_before_and_after_rotation(self, served, stream):
        monitor, service, server = served
        with ServiceClient(port=server.port) as client:
            before = client.topk(5)
            assert before == monitor.current_top[:5]
            # Rotate: ingesting the rest crosses several 1500-pair epochs.
            epochs_before = monitor.window.epochs_started
            monitor.observe(stream[4_000:])
            assert monitor.window.epochs_started > epochs_before
            with service.lock:
                service.refresh()
            after = client.topk(5)
            assert after == monitor.current_top[:5]
            assert client.last_pairs_ingested == len(stream)

    def test_stats_reports_state_and_op_table(self, served, stream):
        monitor, _service, server = served
        with ServiceClient(port=server.port) as client:
            client.topk(3)
            stats = client.stats()
        assert stats["pairs_ingested"] == 4_000
        assert stats["method"] == "FreeRS"
        assert stats["method_spec"]["tag"] == "FreeRS"
        assert {op["op"] for op in stats["ops"]} == set(OPS)
        assert stats["queries_served"] >= 1
        # Array-typed fields are declared in the op table so binary-capable
        # clients can discover the lift plan without out-of-band knowledge.
        by_name = {op["op"]: op for op in stats["ops"]}
        assert by_name["batch_spread"]["binary_arrays"] == {
            "request": {"users": "ids"},
            "result": {"estimates": "floats"},
        }
        assert by_name["topk"]["binary_arrays"]["result"] == {"top": "pairs"}


class TestSnapshotRecovery:
    def test_recovered_monitor_serves_identical_answers(self, served, stream, tmp_path):
        monitor, _service, server = served
        store = SnapshotStore(tmp_path / "snaps")
        store.save(monitor)
        with ServiceClient(port=server.port) as client:
            users = [user for user, _ in client.topk(10)]
            original = client.batch_spread(users)
            original_top = client.topk(10)

        recovered = store.restore()
        recovered_service = EstimateService(recovered)
        recovered_server = _ServerThread(recovered_service)
        try:
            with ServiceClient(port=recovered_server.port) as client:
                assert client.batch_spread(users) == original
                assert client.topk(10) == original_top
        finally:
            recovered_server.close()


class TestConcurrentIngest:
    def test_queries_never_block_ingest_and_stay_consistent(self, stream):
        """Readers during live ingest see exact batch-boundary states."""
        monitor = _spec().build()
        service = EstimateService(monitor)
        handle = ingest_handle_for_monitor(
            monitor,
            stream,
            batch_size=_BATCH,
            on_batch=lambda _n: service.refresh(),
            lock=service.lock,
        )
        service.attach_ingest(handle)
        server = _ServerThread(service)
        probe_users = sorted({user for user, _item in stream[:200]})[:6]
        observed = {}
        try:
            with ServiceClient(port=server.port) as client:
                handle.start()
                while True:
                    values = client.batch_spread(probe_users)
                    observed[client.last_pairs_ingested] = values
                    stats = client.stats()
                    if stats.get("ingest", {}).get("finished"):
                        break
                handle.join(10.0)
                values = client.batch_spread(probe_users)
                observed[client.last_pairs_ingested] = values
        finally:
            server.close()
        assert len(observed) >= 2, "expected answers at several ingest offsets"
        # Replay each observed offset offline: answers must match exactly.
        for offset, values in observed.items():
            assert offset % _BATCH == 0 or offset == len(stream)
            replica = _spec().build()
            for chunk, times in batch_slices(stream[:offset], batch_size=_BATCH):
                replica.observe(chunk, times)
            estimates = replica.last_window_estimates()
            assert values == [float(estimates.get(user, 0.0)) for user in probe_users], (
                f"served answer diverged from direct monitor state at pair {offset}"
            )

    def test_ingest_error_is_captured_and_surfaced(self):
        monitor = _spec().build()
        service = EstimateService(monitor)

        def poisoned_batches():
            yield [(1, 1), (1, 2)], None
            raise RuntimeError("poisoned batch")

        handle = IngestHandle(
            poisoned_batches(),
            lambda pairs, times: monitor.observe(pairs, times),
            lock=service.lock,
            on_batch=lambda _n: service.refresh(),
        )
        service.attach_ingest(handle)
        handle.start()
        for _ in range(200):
            if handle.finished:
                break
            time.sleep(0.02)
        assert handle.finished
        with pytest.raises(RuntimeError, match="background ingest failed"):
            handle.raise_if_failed()
        stats = service.handle({"op": "stats"})["result"]
        assert "poisoned batch" in stats["ingest"]["error"]


class TestProtocolErrors:
    def test_error_envelopes_keep_the_connection_usable(self, served):
        _monitor, _service, server = served
        with ServiceClient(port=server.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request("no_such_op")
            assert excinfo.value.code == "unknown_op"
            with pytest.raises(ServiceError) as excinfo:
                client.request("spread")  # missing 'user'
            assert excinfo.value.code == "bad_request"
            with pytest.raises(ServiceError) as excinfo:
                client.request("topk", k=-3)
            assert excinfo.value.code == "bad_request"
            # Connection still answers after three errors.
            assert isinstance(client.stats()["pairs_ingested"], int)

    def test_malformed_json_line_answers_bad_request(self, served):
        _monitor, _service, server = served
        with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as raw:
            raw.sendall(b"this is not json\n")
            line = raw.makefile("rb").readline()
        response = json.loads(line)
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"

    def test_responses_longer_than_one_chunk_are_reassembled(
        self, served, monkeypatch
    ):
        """The client must never truncate a long response line: a partial
        read followed by json.loads would desync the whole connection."""
        import repro.service.client as client_module

        monitor, _service, server = served
        monkeypatch.setattr(client_module, "_READ_CHUNK_BYTES", 64)
        with ServiceClient(port=server.port) as client:
            # A sliding reply enumerates ~80 users (a few KB): dozens of
            # 64-byte chunks that must reassemble to the exact answer.
            assert client.sliding() == monitor.window.window_estimates()
            # And the connection is still in sync afterwards.
            assert client.topk(3) == monitor.current_top[:3]

    def test_response_ceiling_is_enforced(self, served, monkeypatch):
        import repro.service.client as client_module

        _monitor, _service, server = served
        monkeypatch.setattr(client_module, "MAX_RESPONSE_BYTES", 256)
        with ServiceClient(port=server.port) as client:
            with pytest.raises(ConnectionError, match="exceeds"):
                client.sliding()  # enumerates every user: far over 256 B

    def test_blank_lines_are_ignored(self, served):
        _monitor, _service, server = served
        with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as raw:
            raw.sendall(b"\n\n" + json.dumps({"op": "stats", "id": 1}).encode() + b"\n")
            response = json.loads(raw.makefile("rb").readline())
        assert response["ok"] is True and response["id"] == 1


class TestResponseSizeCap:
    """The line cap is symmetric: the server must never emit a response line
    over MAX_LINE_BYTES (a conforming client may reject it) — it answers
    with a clean ``response_too_large`` error instead."""

    def test_boundary(self, served, monkeypatch):
        import repro.service.protocol as protocol

        _monitor, _service, server = served
        with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as raw:
            reader = raw.makefile("rb")

            def exchange(request_id):
                raw.sendall(
                    json.dumps({"id": request_id, "op": "topk", "k": 5}).encode() + b"\n"
                )
                return reader.readline()

            line = exchange(1)
            assert json.loads(line)["ok"] is True
            cap = len(line)
            # Exactly at the cap: the response is emitted unchanged.
            monkeypatch.setattr(protocol, "MAX_LINE_BYTES", cap)
            at_cap = exchange(2)
            assert len(at_cap) == cap and json.loads(at_cap)["ok"] is True
            # One byte under: replaced by the error envelope, id echoed.
            monkeypatch.setattr(protocol, "MAX_LINE_BYTES", cap - 1)
            over = json.loads(exchange(3))
            assert over["ok"] is False
            assert over["error"]["code"] == "response_too_large"
            assert over["id"] == 3
            # The connection stays usable once the cap allows answers again.
            monkeypatch.setattr(protocol, "MAX_LINE_BYTES", cap)
            assert json.loads(exchange(4))["ok"] is True

    def test_client_surfaces_the_error_code(self, served, monkeypatch):
        import repro.service.protocol as protocol

        _monitor, _service, server = served
        with ServiceClient(port=server.port) as client:
            monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 64)
            with pytest.raises(ServiceError) as excinfo:
                client.sliding()  # enumerates every user: far over 64 bytes
            assert excinfo.value.code == "response_too_large"
            monkeypatch.undo()
            assert client.stats()["pairs_ingested"] == 4_000  # still in sync


class TestWireKeyRoundTrip:
    """Keys read from any response feed back into any query op: the wire
    coercion (``wire_user``) is symmetric across topk / sliding / spread."""

    @pytest.fixture()
    def odd_key_server(self):
        monitor = _spec().build()
        batch = (
            [(3, item) for item in range(40)]
            + [("7", item) for item in range(30)]
            + [(("src", 9), item) for item in range(20)]
        )
        monitor.observe(batch)
        service = EstimateService(monitor)
        server = _ServerThread(service)
        try:
            yield monitor, server
        finally:
            server.close()

    def test_topk_keys_resolve_back(self, odd_key_server):
        _monitor, server = odd_key_server
        with ServiceClient(port=server.port) as client:
            top = client.topk(10)
            assert {user for user, _ in top} == {3, "7", "('src', 9)"}
            for user, value in top:
                assert client.spread(user) == value > 0.0

    def test_sliding_keys_resolve_back(self, odd_key_server):
        monitor, server = odd_key_server
        with ServiceClient(port=server.port) as client:
            sliding = client.sliding()
            assert set(sliding) == {3, "7", "('src', 9)"}
            for user, value in sliding.items():
                assert client.spread(user) == value > 0.0
            assert client.batch_spread(list(sliding)) == list(sliding.values())

    def test_int_str_duality_is_symmetric(self, odd_key_server):
        monitor, server = odd_key_server
        with ServiceClient(port=server.port) as client:
            assert client.spread("3") == client.spread(3) > 0.0
            assert client.spread(7) == client.spread("7") > 0.0
            assert client.batch_spread([3, "3", 7, "7"]) == [
                client.spread(3),
                client.spread(3),
                client.spread("7"),
                client.spread("7"),
            ]


class TestServeMonitorLifecycle:
    """End-to-end orchestration: :func:`serve_monitor` must announce the
    serving and ingest-finished records, answer queries while ingesting,
    and — on cancellation — finish the executor-side shutdown (ingest join
    + final checkpoint) even though the blocking lock work was moved off
    the event loop."""

    def _run(self, stream, tmp_path, snapshot_every=4):
        from repro.service import serve_monitor

        monitor = _spec().build()
        store = SnapshotStore(tmp_path, keep=2)
        records = []
        queried = {}

        async def main():
            ready = asyncio.Event()
            task = asyncio.create_task(
                serve_monitor(
                    monitor,
                    pairs=stream,
                    port=0,
                    batch_size=512,
                    refresh_every=1,
                    snapshot_store=store,
                    snapshot_every=snapshot_every,
                    announce=records.append,
                    ready=ready,
                )
            )
            await asyncio.wait_for(ready.wait(), 10.0)
            deadline = time.monotonic() + 30.0
            while not any(
                r["type"] in ("ingest-finished", "ingest-failed") for r in records
            ):
                assert time.monotonic() < deadline, "ingest never finished"
                await asyncio.sleep(0.05)
            # The server stays queryable after the stream drains; the sync
            # client runs on the executor so the serving loop keeps turning.
            port = records[0]["port"]

            def query():
                with ServiceClient(port=port) as client:
                    queried["topk"] = client.topk(5)
                    queried["stats"] = client.stats()

            await asyncio.get_running_loop().run_in_executor(None, query)
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)

        asyncio.run(main())
        return monitor, store, records, queried

    def test_announces_serving_then_ingest_finished(self, stream, tmp_path):
        monitor, store, records, queried = self._run(stream, tmp_path)
        assert records[0]["type"] == "serving"
        assert records[0]["ingesting"] is True
        finished = [r for r in records if r["type"] == "ingest-finished"]
        assert len(finished) == 1
        assert finished[0]["pairs_ingested"] == len(stream)
        assert queried["topk"] and queried["stats"]["pairs_ingested"] == len(stream)

    def test_final_checkpoint_covers_the_whole_stream(self, stream, tmp_path):
        monitor, store, _records, _queried = self._run(stream, tmp_path)
        latest = store.latest()
        assert latest is not None
        restored = store.restore(latest)
        assert restored.window.pairs_ingested == len(stream)
        assert restored.current_top == monitor.current_top
