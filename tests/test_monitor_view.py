"""Tests for the versioned read-snapshot export and the sliding merge cache.

The load-bearing contracts:

* a :class:`ReadSnapshot`'s spread / batch_spread / topk answers are
  identical to the direct monitor calls on the same state — this is what
  the service layer's acceptance smoke relies on;
* the :class:`SlidingMergeCache` path is bit-identical to
  ``WindowedEstimator.window_estimates`` for every method, across epoch
  rotations (cache invalidation included).
"""

from __future__ import annotations

import pytest

from repro.monitor import MonitorSpec, ReadSnapshot, SlidingMergeCache, normalize_user_key
from repro.streams import zipf_bipartite_stream

_METHODS = ["FreeBS", "FreeRS", "CSE", "vHLL", "LPC", "HLL++"]


@pytest.fixture(scope="module")
def stream():
    return zipf_bipartite_stream(
        n_users=80, n_pairs=6_000, max_cardinality=500, duplicate_factor=0.4, seed=5
    )


def _monitor(method="FreeRS", epoch_pairs=1_500, window_epochs=4):
    return MonitorSpec(
        method=method,
        memory_bits=1 << 14,
        expected_users=80,
        epoch_pairs=epoch_pairs,
        window_epochs=window_epochs,
        delta=5e-3,
    ).build()


class TestReadSnapshot:
    def test_matches_direct_monitor_calls(self, stream):
        monitor = _monitor()
        monitor.observe(stream[:4_000])
        snapshot = monitor.read_snapshot()
        assert isinstance(snapshot, ReadSnapshot)
        estimates = monitor.last_window_estimates()
        for user in list(estimates)[:20]:
            assert snapshot.spread(user) == estimates[user]
        assert snapshot.batch_spread(list(estimates)[:5]) == [
            estimates[user] for user in list(estimates)[:5]
        ]
        assert snapshot.topk(monitor.top_k) == monitor.current_top
        assert snapshot.spread("no-such-user") == 0.0
        assert snapshot.pairs_ingested == 4_000
        assert snapshot.exactness in ("exact", "additive")

    def test_snapshot_is_stable_while_monitor_moves_on(self, stream):
        monitor = _monitor()
        monitor.observe(stream[:2_000])
        snapshot = monitor.read_snapshot()
        before = dict(snapshot.estimates)
        monitor.observe(stream[2_000:4_000])
        assert dict(snapshot.estimates) == before  # old snapshot untouched
        newer = monitor.read_snapshot()
        assert newer.version > snapshot.version
        assert newer.pairs_ingested == 4_000

    def test_version_bumps_per_evaluation(self, stream):
        monitor = _monitor()
        assert monitor.version == 0
        monitor.observe(stream[:1_000])
        monitor.observe(stream[1_000:2_000])
        assert monitor.version == 2

    def test_stats_shape(self, stream):
        monitor = _monitor()
        monitor.observe(stream[:2_000])
        stats = monitor.read_snapshot().stats()
        for key in (
            "version", "method", "pairs_ingested", "epochs_started", "live_epoch",
            "exactness", "regressions", "users_tracked", "total_estimate", "epochs",
        ):
            assert key in stats
        assert stats["method"] == "FreeRS"
        assert stats["pairs_ingested"] == 2_000

    def test_user_key_normalization(self):
        estimates = {42: 1.0, "alice": 2.0}
        assert normalize_user_key(estimates, "42") == 42
        assert normalize_user_key(estimates, 42) == 42
        assert normalize_user_key(estimates, "alice") == "alice"
        assert normalize_user_key(estimates, "7") == "7"  # unseen stays as-is


class TestSlidingMergeCache:
    @pytest.mark.parametrize("method", _METHODS)
    def test_bit_identical_to_uncached_window_estimates(self, stream, method):
        monitor = _monitor(method=method)
        cache = SlidingMergeCache()
        window = monitor.window
        for start in range(0, len(stream), 900):
            monitor.observe(stream[start : start + 900])
            for last in (1, 2, window.window_epochs):
                assert cache.sliding_estimates(window, last) == window.window_estimates(
                    last
                ), f"{method} sliding({last}) diverged at pair {start + 900}"

    def test_prefix_reuse_across_queries(self, stream):
        monitor = _monitor()
        cache = SlidingMergeCache()
        monitor.observe(stream[:4_500])  # 3 epochs
        window = monitor.window
        first = cache.sliding_estimates(window)
        assert len(cache._prefixes) == 1
        second = cache.sliding_estimates(window)
        assert first == second
        assert len(cache._prefixes) == 1  # reused, not rebuilt

    def test_invalidation_on_rotation(self, stream):
        monitor = _monitor(epoch_pairs=1_000, window_epochs=3)
        cache = SlidingMergeCache()
        monitor.observe(stream[:3_500])
        window = monitor.window
        cache.sliding_estimates(window, 3)
        old_keys = set(cache._prefixes)
        monitor.observe(stream[3_500:5_500])  # rotates epochs out of the ring
        cache.sliding_estimates(window, 3)
        assert not (old_keys & set(cache._prefixes))  # stale prefixes evicted
