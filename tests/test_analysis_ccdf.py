"""Unit tests for the CCDF utilities (Figure 2 machinery)."""

from __future__ import annotations

import pytest

from repro.analysis.ccdf import ccdf, ccdf_at, ccdf_from_stream, logarithmic_thresholds
from repro.streams import GraphStream


class TestCCDF:
    def test_simple_distribution(self):
        points = ccdf([1, 1, 2, 4])
        assert points == [(1, 1.0), (2, 0.5), (4, 0.25)]

    def test_accepts_mapping(self):
        points = ccdf({"a": 1, "b": 2})
        assert points == [(1, 1.0), (2, 0.5)]

    def test_empty(self):
        assert ccdf([]) == []

    def test_monotone_decreasing(self):
        points = ccdf([1, 2, 3, 5, 8, 13, 21])
        values = [p for _, p in points]
        assert values == sorted(values, reverse=True)


class TestCCDFAt:
    def test_threshold_evaluation(self):
        values = [1, 2, 3, 10]
        evaluated = ccdf_at(values, [1, 5, 10, 20])
        assert evaluated[1] == 1.0
        assert evaluated[5] == 0.25
        assert evaluated[10] == 0.25
        assert evaluated[20] == 0.0

    def test_empty_values(self):
        assert ccdf_at([], [1, 2]) == {1: 0.0, 2: 0.0}


class TestLogarithmicThresholds:
    def test_covers_range(self):
        thresholds = logarithmic_thresholds(1000, points_per_decade=3)
        assert thresholds[0] == 1
        assert thresholds[-1] == 1000
        assert thresholds == sorted(thresholds)

    def test_strictly_increasing(self):
        thresholds = logarithmic_thresholds(500, points_per_decade=5)
        assert all(b > a for a, b in zip(thresholds, thresholds[1:]))

    def test_small_max(self):
        assert logarithmic_thresholds(0) == [1]


class TestCCDFFromStream:
    def test_stream_ccdf(self):
        stream = GraphStream([("a", 1), ("a", 2), ("a", 3), ("b", 1)])
        points = ccdf_from_stream(stream)
        assert points[0] == (1, 1.0)
        assert points[-1][0] == 3
        assert points[-1][1] == pytest.approx(0.5)

    def test_empty_stream(self):
        assert ccdf_from_stream(GraphStream([])) == []
