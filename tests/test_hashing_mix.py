"""Unit tests for the 64-bit mixing functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import (
    MASK64,
    hash64,
    hash64_array,
    hash_pair,
    splitmix64,
    splitmix64_array,
    to_unit_interval,
)


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_output_in_64_bit_range(self):
        for value in (0, 1, 2**63, MASK64):
            result = splitmix64(value)
            assert 0 <= result <= MASK64

    def test_different_inputs_give_different_outputs(self):
        outputs = {splitmix64(value) for value in range(1000)}
        assert len(outputs) == 1000

    def test_avalanche_flips_many_bits(self):
        # Flipping one input bit should flip roughly half the output bits.
        base = splitmix64(0xDEADBEEF)
        flipped = splitmix64(0xDEADBEEF ^ 1)
        differing = bin(base ^ flipped).count("1")
        assert 16 <= differing <= 48

    def test_array_matches_scalar(self):
        values = np.array([0, 1, 7, 2**40, MASK64], dtype=np.uint64)
        array_result = splitmix64_array(values)
        scalar_result = [splitmix64(int(value)) for value in values]
        assert array_result.tolist() == scalar_result


class TestHash64:
    def test_deterministic_across_calls(self):
        assert hash64("alice", seed=3) == hash64("alice", seed=3)

    def test_seed_changes_output(self):
        assert hash64("alice", seed=1) != hash64("alice", seed=2)

    def test_supports_int_str_bytes_tuple(self):
        keys = [42, "42", b"42", (4, 2)]
        outputs = {hash64(key) for key in keys}
        assert len(outputs) == len(keys)

    def test_int_and_numpy_int_agree(self):
        assert hash64(7) == hash64(np.int64(7))

    def test_distribution_roughly_uniform(self):
        buckets = np.zeros(16, dtype=np.int64)
        for value in range(4000):
            buckets[hash64(value) % 16] += 1
        assert buckets.min() > 150
        assert buckets.max() < 350

    def test_array_matches_scalar_for_ints(self):
        values = np.arange(100, dtype=np.uint64)
        array_result = hash64_array(values, seed=9)
        scalar_result = [hash64(int(value), seed=9) for value in values]
        assert array_result.tolist() == scalar_result


class TestHashPair:
    def test_depends_on_both_components(self):
        assert hash_pair("u", "a") != hash_pair("u", "b")
        assert hash_pair("u", "a") != hash_pair("v", "a")

    def test_duplicate_pairs_collide(self):
        assert hash_pair("u", "a", seed=5) == hash_pair("u", "a", seed=5)

    def test_not_symmetric(self):
        assert hash_pair("u", "a") != hash_pair("a", "u")

    def test_seed_changes_output(self):
        assert hash_pair("u", "a", seed=0) != hash_pair("u", "a", seed=1)


class TestToUnitInterval:
    def test_range(self):
        for value in (0, 1, 2**53, MASK64):
            result = to_unit_interval(value)
            assert 0.0 <= result < 1.0

    def test_monotone_in_top_bits(self):
        assert to_unit_interval(0) < to_unit_interval(MASK64)

    def test_mean_near_half(self):
        values = [to_unit_interval(hash64(i)) for i in range(2000)]
        assert abs(np.mean(values) - 0.5) < 0.02
