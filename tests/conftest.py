"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.baselines.exact import ExactCounter
from repro.streams.generators import zipf_bipartite_stream


@pytest.fixture(scope="session")
def small_stream():
    """A small heavy-tailed stream with duplicates, shared across tests.

    ~8k pairs over 400 users; session-scoped because generating it is cheap
    but re-generating it in every test adds up.
    """
    return zipf_bipartite_stream(
        n_users=400,
        n_pairs=6_000,
        alpha=1.3,
        max_cardinality=600,
        duplicate_factor=0.4,
        seed=123,
    )


@pytest.fixture(scope="session")
def small_stream_truth(small_stream):
    """Exact per-user cardinalities of ``small_stream``."""
    exact = ExactCounter()
    for user, item in small_stream:
        exact.update(user, item)
    return exact


@pytest.fixture()
def rng():
    """A seeded random.Random instance for tests that need extra randomness."""
    return random.Random(2024)
