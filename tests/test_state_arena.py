"""The columnar user-state arena: dict-parity, snapshots, growth, gauges.

The arena contract (:mod:`repro.state`): every dict-shaped view over the
numpy columns behaves exactly like the Python dict it replaced — key-type
duality (``7`` vs ``"7"``), insertion-order iteration, delete-then-reinsert
moving a key to the end — and every positions row is bit-identical whether
it comes from the dense block, a fold-mode recompute, or
``HashFamily.positions`` directly.  On top of that sit the scale behaviours
the dicts never had: amortised-doubling growth that preserves row identity
under a concurrently ingesting writer, O(1) copy-on-write score checkouts,
and occupancy gauges in the process metrics registry.
"""

from __future__ import annotations

import copy
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.baselines import CSE, VirtualHLL
from repro.core.serialization import dumps, loads
from repro.hashing import HashFamily, fold_key
from repro.state import DENSE_POSITIONS_LIMIT, FrozenScores, ScoreTable, UserArena, UserInterner

_SETTINGS = settings(max_examples=25, deadline=None)


def _arena(m=16, M=1 << 12, **kwargs) -> UserArena:
    family = HashFamily(m, M, seed=7)
    return UserArena(m=m, family=family, **kwargs)


class TestInterner:
    def test_int_and_string_keys_are_distinct_users(self):
        interner = UserInterner()
        assert interner.intern(7) != interner.intern("7")
        assert interner.lookup(7) == 0
        assert interner.lookup("7") == 1
        assert interner.users() == [7, "7"]

    def test_intern_order_is_first_seen_order(self):
        interner = UserInterner()
        keys = [5, "a", (1, 2), b"raw", 5, "a", -3]
        codes = [interner.intern(key) for key in keys]
        assert codes == [0, 1, 2, 3, 0, 1, 4]
        assert interner.users() == [5, "a", (1, 2), b"raw", -3]

    def test_vectorised_lookup_matches_dict_probes(self):
        interner = UserInterner()
        for key in range(0, 1000, 3):
            interner.intern(key)
        probes = np.array([0, 1, 3, 999, 998, -5, 10**6], dtype=np.int64)
        expected = [interner.lookup(int(p)) for p in probes]
        assert interner.lookup_many(probes).tolist() == expected

    def test_folds_match_fold_key(self):
        interner = UserInterner()
        keys = [3, "x", (1, "y"), b"z"]
        codes = np.array([interner.intern(key) for key in keys])
        assert interner.folds(codes).tolist() == [fold_key(key) for key in keys]


class TestArenaPositions:
    @pytest.mark.parametrize("mode", ["dense", "fold"])
    def test_rows_bit_identical_to_family(self, mode):
        arena = _arena(positions=mode)
        family = arena._family
        users = [1, "u2", (3, 4), b"five", -6]
        codes = arena.intern_many(users)
        rows = arena.positions_rows(codes)
        for user, row in zip(users, rows):
            np.testing.assert_array_equal(row, family.positions(user))
            code = arena.lookup(user)
            np.testing.assert_array_equal(arena.positions_row(code), row)

    def test_auto_switches_dense_to_fold_and_rows_survive(self):
        arena = _arena(positions="auto", dense_limit=64, initial_capacity=8)
        family = arena._family
        users = list(range(200))
        before = {
            user: arena.positions_row(arena.intern(user)).copy() for user in users[:40]
        }
        assert arena.positions_mode == "dense"
        arena.intern_many(users)
        assert arena.positions_mode == "fold"
        for user, row in before.items():
            np.testing.assert_array_equal(
                arena.positions_row(arena.lookup(user)), row
            )
            np.testing.assert_array_equal(row, family.positions(user))

    def test_default_dense_limit_is_above_service_scale(self):
        assert DENSE_POSITIONS_LIMIT == 1 << 17

    def test_growth_preserves_rows_under_background_ingest(self):
        """Doubling growths driven by a background ingest thread (the single
        writer, as under the service's ingest lock) while this thread keeps
        reading: every row captured before any growth must stay bit-identical
        through several doublings (row identity is positional — a grow copies
        columns but never moves a code), and reads racing a block swap see a
        consistent row either way."""
        arena = _arena(positions="dense", initial_capacity=4)
        family = arena._family
        captured = {
            user: arena.positions_row(arena.intern(user)).copy()
            for user in range(16)
        }
        errors = []

        def ingest():
            try:
                for user in range(16, 2000):
                    arena.positions_row(arena.intern(user))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        writer = threading.Thread(target=ingest)
        writer.start()
        codes = np.array([arena.lookup(user) for user in captured], dtype=np.int64)
        while writer.is_alive():
            rows = arena.positions_rows(codes)
            for (_user, row), read in zip(captured.items(), rows):
                np.testing.assert_array_equal(read, row)
        writer.join()
        assert not errors
        assert arena.growth_events > 0
        assert arena.n_users == 2000
        for user, row in captured.items():
            np.testing.assert_array_equal(
                arena.positions_rows(np.array([arena.lookup(user)]))[0], row
            )
            np.testing.assert_array_equal(row, family.positions(user))


class TestEstimatesViewDictParity:
    @_SETTINGS
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["set", "del", "setdefault", "get"]),
                st.sampled_from([1, 2, "2", (3,), b"b", True]),
                st.floats(0, 100, allow_nan=False),
            ),
            max_size=40,
        )
    )
    def test_random_op_sequences_match_a_plain_dict(self, ops):
        arena = _arena()
        view = arena.estimates
        reference = {}
        for op, key, value in ops:
            if op == "set":
                view[key] = value
                reference[key] = value
            elif op == "del":
                if key in reference:
                    del view[key]
                    del reference[key]
                else:
                    with pytest.raises(KeyError):
                        del view[key]
            elif op == "setdefault":
                assert view.setdefault(key, value) == reference.setdefault(key, value)
            else:
                assert view.get(key) == reference.get(key)
            assert dict(view.items()) == reference
            assert len(view) == len(reference)
        # Iteration order parity binds on the estimator paths (no deletion):
        # without dels the view's intern order IS dict insertion order.
        if not any(op == "del" for op, _key, _value in ops):
            assert list(view) == list(reference)
            assert list(view.items()) == list(reference.items())

    def test_gather_default_zero_matches_scalar_gets(self):
        arena = _arena()
        view = arena.estimates
        for user in [4, 9, "9", (1, 2)]:
            view[user] = float(hash(user) % 50)
        probes = [4, 9, "9", (1, 2), "missing", 123]
        assert view.gather_default_zero(probes) == [
            view.get(user, 0.0) for user in probes
        ]


class TestLoadEstimates:
    """``load_estimates`` is the snapshot-restore seam: the vectorised
    adoption (one ``intern_many`` + column write) must stay exactly
    equivalent to the per-item dict assignment it replaced."""

    def test_adopts_mapping_with_dict_key_semantics_and_order(self):
        arena = _arena()
        mapping = {7: 1.0, "7": 2.0, b"raw": 3.0, ("t", 1): 4.0, -3: 5.0}
        arena.load_estimates(mapping)
        view = arena.estimates
        assert dict(view.items()) == mapping
        # Intern order == mapping insertion order (restored estimators must
        # keep the snapshot's first-seen order).
        assert list(view) == list(mapping)

    def test_reload_clears_entries_absent_from_the_new_mapping(self):
        arena = _arena()
        arena.load_estimates({1: 1.0, 2: 2.0, 3: 3.0})
        arena.load_estimates({2: 9.0})
        view = arena.estimates
        assert dict(view.items()) == {2: 9.0}
        assert len(view) == 1
        assert view.get(1) is None and view.get(3) is None

    def test_empty_mapping_clears_everything(self):
        arena = _arena()
        arena.load_estimates({4: 4.0, 5: 5.0})
        arena.load_estimates({})
        assert len(arena.estimates) == 0
        assert dict(arena.estimates.items()) == {}

    def test_matches_per_item_view_assignment(self):
        rng = np.random.default_rng(9)
        mapping = {int(user): float(value) for user, value in zip(
            rng.integers(0, 10**12, size=500), rng.random(size=500)
        )}
        loaded, assigned = _arena(), _arena()
        loaded.load_estimates(mapping)
        for user, value in mapping.items():
            assigned.estimates[user] = value
        assert dict(loaded.estimates.items()) == dict(assigned.estimates.items())
        assert list(loaded.estimates) == list(assigned.estimates)


class TestEstimatorKeyDuality:
    @pytest.mark.parametrize("factory", [
        lambda: CSE(1 << 12, virtual_size=32, seed=3),
        lambda: VirtualHLL(1 << 11, virtual_size=32, seed=3),
    ])
    def test_int_7_and_string_7_are_distinct_users(self, factory):
        estimator = factory()
        for item in range(40):
            estimator.update(7, item)
        for item in range(5):
            estimator.update("7", item)
        assert estimator.estimate(7) != estimator.estimate("7")
        assert set(estimator.estimates()) == {7, "7"}
        restored = loads(dumps(estimator))
        assert restored.estimate(7) == estimator.estimate(7)
        assert restored.estimate("7") == estimator.estimate("7")

    @pytest.mark.parametrize("factory", [
        lambda: CSE(1 << 12, virtual_size=32, seed=5),
        lambda: VirtualHLL(1 << 11, virtual_size=32, seed=5),
    ])
    def test_tuple_and_bytes_keys_survive_snapshot_round_trips(self, factory):
        estimator = factory()
        users = [("src", 1), ("src", 2), b"\x00\xffraw", b"plain", "txt", 42]
        for user in users:
            for item in range(10):
                estimator.update(user, (user, item))
        restored = loads(dumps(estimator))
        assert list(restored.estimates()) == list(estimator.estimates())
        for user in users:
            assert restored.estimate(user) == estimator.estimate(user)
            assert restored.estimate_fresh(user) == estimator.estimate_fresh(user)
        # A second hop must be loss-free too (restore -> dump -> restore).
        twice = loads(dumps(restored))
        assert dict(twice.estimates()) == dict(estimator.estimates())
        # The restored arena keeps answering updates identically.
        follow_up = [(user, ("extra", i)) for user in users for i in range(3)]
        for (user, item), (user2, item2) in zip(follow_up, follow_up):
            assert estimator.update(user, item) == restored.update(user2, item2)


class TestScoreTable:
    @_SETTINGS
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "del"]),
                st.integers(0, 10),
                st.floats(0, 1000, allow_nan=False),
            ),
            max_size=50,
        )
    )
    def test_matches_dict_semantics_including_reinsert_order(self, ops):
        table = ScoreTable()
        reference = {}
        for op, key, value in ops:
            if op == "put":
                old = table.put(key, value)
                assert old == reference.get(key)
                reference[key] = value
            elif key in reference:
                del table[key]
                del reference[key]
            assert list(table.items()) == list(reference.items())
        assert table.total() == float(np.sum(np.asarray(list(reference.values()))) if reference else 0.0)

    def test_top_codes_equal_stable_sort(self):
        table = ScoreTable()
        values = [5.0, 3.0, 5.0, 1.0, 9.0, 3.0]
        for user, value in enumerate(values):
            table.put(user, value)
        expected = sorted(
            table.items(), key=lambda item: (-item[1], table.rank_of(item[0]))
        )[:3]
        assert [
            (table.key_at(c), table.value_at(c)) for c in table.top_codes(3)
        ] == expected

    def test_threshold_candidates_preserve_insertion_order(self):
        table = ScoreTable()
        for user, value in [("a", 5.0), ("b", 1.0), ("c", 7.0), ("d", 5.0)]:
            table.put(user, value)
        assert table.threshold_candidates(5.0) == [("a", 5.0), ("c", 7.0), ("d", 5.0)]

    def test_checkout_is_isolated_from_later_writes(self):
        table = ScoreTable()
        for user in range(8):
            table.put(user, float(user))
        frozen = table.checkout()
        expected = dict(table.items())
        table.put(3, 99.0)
        table.put(100, 1.0)
        del table[5]
        assert dict(frozen.items()) == expected
        assert frozen.get(3) == 3.0
        assert frozen.get(100) is None
        assert table[3] == 99.0

    def test_checkout_survives_concurrent_writer(self):
        table = ScoreTable()
        for user in range(64):
            table.put(user, float(user))
        frozen = table.checkout()
        expected = [float(user) for user in range(64)]
        stop = threading.Event()
        errors = []

        def writer():
            user = 64
            try:
                while not stop.is_set():
                    table.put(user, float(user))
                    table.put(user % 64, float(user))
                    user += 1
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                assert frozen.gather_exact(list(range(64))) == expected
        finally:
            stop.set()
            thread.join()
        assert not errors

    def test_gather_exact_miss_returns_none(self):
        table = ScoreTable()
        table.put(1, 1.0)
        table.put(2, 2.0)
        frozen = table.checkout()
        assert frozen.gather_exact([1, 2]) == [1.0, 2.0]
        assert frozen.gather_exact([1, 3]) is None
        assert frozen.gather_exact([1, "1"]) is None
        assert isinstance(frozen, FrozenScores)


class TestArenaLifecycle:
    def test_deepcopy_and_pickle_round_trip(self):
        import pickle

        arena = _arena()
        for user in [1, "two", (3,), b"four"]:
            arena.estimates[user] = float(len(str(user)))
        for restored in (copy.deepcopy(arena), pickle.loads(pickle.dumps(arena))):
            assert dict(restored.estimates.items()) == dict(arena.estimates.items())
            assert restored.users() == arena.users()
            np.testing.assert_array_equal(
                restored.positions_row(0), arena.positions_row(0)
            )

    def test_occupancy_gauges_track_population_and_release(self):
        users_gauge = obs.gauge("state.arena.users", owner="gauge-test")
        bytes_gauge = obs.gauge("state.arena.bytes", owner="gauge-test")
        base_users, base_bytes = users_gauge.value, bytes_gauge.value
        arena = _arena(owner="gauge-test", initial_capacity=4)
        arena.intern_many(list(range(100)))
        assert users_gauge.value == base_users + 100
        assert bytes_gauge.value > base_bytes
        assert arena.stats()["users"] == 100
        assert arena.stats()["resident_bytes"] > 0
        del arena
        import gc

        gc.collect()
        assert users_gauge.value == base_users

    def test_growth_events_counter_increments(self):
        counter = obs.counter("state.arena.growth_events", owner="growth-test")
        before = counter.value
        arena = _arena(owner="growth-test", initial_capacity=2)
        arena.intern_many(list(range(50)))
        assert arena.growth_events > 0
        assert counter.value == before + arena.growth_events
