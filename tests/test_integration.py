"""Integration tests: whole-pipeline comparisons on a shared workload.

These tests replay one realistic (small) workload through every estimator and
assert the *relative ordering* results the paper reports: the proposed
methods beat the baselines on accuracy under equal memory, super-spreader
detection works end to end, and anytime estimates are consistent with
end-of-stream estimates.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import relative_standard_error
from repro.baselines.exact import ExactCounter
from repro.detection.evaluation import detection_error_at_end
from repro.experiments.config import ExperimentConfig
from repro.experiments.estimators import METHOD_ORDER, build_estimators


@pytest.fixture(scope="module")
def workload(small_stream, small_stream_truth):
    """The shared stream plus everything the comparisons need."""
    config = ExperimentConfig(memory_bits=1 << 17, virtual_size=128, seed=3)
    estimators = build_estimators(config, expected_users=small_stream_truth.user_count)
    for user, item in small_stream:
        for estimator in estimators.values():
            estimator.update(user, item)
    return {
        "config": config,
        "estimators": estimators,
        "truth": small_stream_truth.cardinalities(),
        "pairs": small_stream,
    }


class TestEqualMemoryComparison:
    def test_all_methods_produce_estimates_for_all_users(self, workload):
        truth = workload["truth"]
        for method, estimator in workload["estimators"].items():
            estimates = estimator.estimates()
            missing = set(truth) - set(estimates)
            assert not missing, f"{method} missing estimates for {len(missing)} users"

    def test_proposed_methods_beat_virtual_sketch_baselines(self, workload):
        truth = workload["truth"]
        rse = {
            method: relative_standard_error(truth, estimator.estimates(), minimum_cardinality=5)
            for method, estimator in workload["estimators"].items()
        }
        assert rse["FreeBS"] < rse["CSE"]
        assert rse["FreeBS"] < rse["vHLL"]
        assert rse["FreeRS"] < rse["vHLL"]

    def test_freebs_most_accurate_overall_on_small_workload(self, workload):
        truth = workload["truth"]
        rse = {
            method: relative_standard_error(truth, estimator.estimates(), minimum_cardinality=5)
            for method, estimator in workload["estimators"].items()
        }
        assert min(rse, key=rse.get) in {"FreeBS", "FreeRS", "LPC"}

    def test_every_method_reasonable_on_heavy_users(self, workload):
        truth = {user: n for user, n in workload["truth"].items() if n >= 200}
        assert truth, "fixture must contain heavy users"
        for method in ["FreeBS", "FreeRS", "vHLL", "HLL++"]:
            estimates = workload["estimators"][method].estimates()
            assert relative_standard_error(truth, estimates) < 0.6, method


class TestDetectionEndToEnd:
    def test_super_spreader_detection_ordering(self, workload):
        # Fresh estimators (detection needs its own replay).
        config = workload["config"]
        pairs = workload["pairs"]
        exact = ExactCounter()
        for user, item in pairs:
            exact.update(user, item)
        results = {}
        for method in ["FreeBS", "FreeRS", "CSE", "vHLL", "HLL++"]:
            estimator = build_estimators(config, exact.user_count, methods=[method])[method]
            results[method] = detection_error_at_end(estimator, pairs, delta=5e-3)
        # The proposed methods should miss no more spreaders than the worst baseline.
        worst_baseline_fnr = max(results[m].false_negative_rate for m in ["CSE", "vHLL", "HLL++"])
        assert results["FreeBS"].false_negative_rate <= worst_baseline_fnr
        assert results["FreeRS"].false_negative_rate <= worst_baseline_fnr
        # And their false positive rates stay small in absolute terms.
        assert results["FreeBS"].false_positive_rate < 0.05
        assert results["FreeRS"].false_positive_rate < 0.05


class TestAnytimeEstimates:
    def test_freebs_anytime_estimate_matches_end_of_stream(self, workload):
        # Processing the stream in two halves must give the same final state
        # as processing it in one go (the estimator is purely incremental).
        from repro.core import FreeBS

        pairs = workload["pairs"]
        once = FreeBS(1 << 16, seed=9)
        twice = FreeBS(1 << 16, seed=9)
        for user, item in pairs:
            once.update(user, item)
        half = len(pairs) // 2
        for user, item in pairs[:half]:
            twice.update(user, item)
        midpoint_estimates = twice.estimates()
        for user, item in pairs[half:]:
            twice.update(user, item)
        assert once.estimates() == twice.estimates()
        # And the midpoint estimates never exceed the final ones.
        for user, midpoint_value in midpoint_estimates.items():
            assert midpoint_value <= twice.estimate(user) + 1e-9
