"""Unit tests for GraphStream, the dataset registry and edge-file IO."""

from __future__ import annotations

import pytest

from repro.streams import (
    DATASETS,
    Edge,
    GraphStream,
    dataset_names,
    load_dataset,
    read_edge_file,
    write_edge_file,
)
from repro.streams.io import iter_edge_file


class TestEdge:
    def test_as_pair(self):
        assert Edge("u", "d", 3).as_pair() == ("u", "d")

    def test_reversed(self):
        edge = Edge("u", "d", 3).reversed()
        assert edge.user == "d"
        assert edge.item == "u"
        assert edge.timestamp == 3

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Edge("u", "d").user = "x"


class TestGraphStream:
    def test_from_list_and_iteration(self):
        pairs = [("a", 1), ("a", 2), ("b", 1), ("a", 1)]
        stream = GraphStream(pairs, name="tiny")
        assert list(stream) == pairs
        assert len(stream) == 4

    def test_replayable_from_factory(self):
        calls = []

        def factory():
            calls.append(1)
            return [("a", 1), ("b", 2)]

        stream = GraphStream(factory)
        assert list(stream) == list(stream)
        # pairs() caches, so later iterations stop invoking the factory.
        stream.pairs()
        before = len(calls)
        list(stream)
        assert len(calls) == before

    def test_exact_statistics(self):
        pairs = [("a", 1), ("a", 2), ("b", 1), ("a", 1)]
        stream = GraphStream(pairs)
        assert stream.user_count == 2
        assert stream.total_cardinality == 3
        assert stream.max_cardinality == 2
        assert stream.cardinalities() == {"a": 2, "b": 1}
        assert stream.duplicate_ratio == pytest.approx(0.25)

    def test_prefix(self):
        stream = GraphStream([("a", i) for i in range(10)])
        assert len(stream.prefix(3)) == 3

    def test_empty_stream(self):
        stream = GraphStream([])
        assert stream.user_count == 0
        assert stream.max_cardinality == 0
        assert stream.duplicate_ratio == 0.0


class TestDatasetRegistry:
    def test_registry_contains_papers_six_datasets(self):
        assert dataset_names() == [
            "sanjose",
            "chicago",
            "Twitter",
            "Flickr",
            "Orkut",
            "LiveJournal",
        ]

    def test_load_dataset_scaled(self):
        stream = load_dataset("chicago", scale=0.05)
        assert stream.user_count > 50
        assert stream.total_cardinality > 200

    def test_load_dataset_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("not-a-dataset")

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            DATASETS["chicago"].generate(scale=0)

    def test_seed_offset_gives_new_realisation(self):
        a = DATASETS["chicago"].generate(scale=0.05, seed_offset=0)
        b = DATASETS["chicago"].generate(scale=0.05, seed_offset=1)
        assert a != b

    def test_paper_statistics_recorded(self):
        spec = DATASETS["Orkut"]
        assert spec.paper_users == 2_997_376
        assert spec.paper_average_cardinality == pytest.approx(74.6, rel=0.01)

    def test_heavy_tail_shape(self):
        # Every stand-in must be heavy tailed: max cardinality far above the mean.
        stream = load_dataset("Twitter", scale=0.05)
        cards = list(stream.cardinalities().values())
        assert max(cards) > 10 * (sum(cards) / len(cards))


class TestEdgeFileIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "edges.tsv"
        pairs = [(1, 10), (2, 20), (1, 10)]
        count = write_edge_file(path, pairs, header="test file")
        assert count == 3
        stream = read_edge_file(path)
        assert list(stream) == pairs

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n1 2\n3 4\n")
        assert list(iter_edge_file(path)) == [(1, 2), (3, 4)]

    def test_string_endpoints(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice site-a\nbob site-b\n")
        assert list(iter_edge_file(path, as_int=False)) == [
            ("alice", "site-a"),
            ("bob", "site-b"),
        ]

    def test_non_integer_falls_back_to_string(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice 5\n")
        assert list(iter_edge_file(path)) == [("alice", "5")]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("only-one-field\n")
        with pytest.raises(ValueError):
            list(iter_edge_file(path))

    def test_read_edge_file_names_stream(self, tmp_path):
        path = tmp_path / "my_trace.tsv"
        write_edge_file(path, [(1, 2)])
        assert read_edge_file(path).name == "my_trace"


class TestTimestamps:
    """Optional arrival timestamps on streams, generators and edge files."""

    def test_default_timestamps_are_event_index(self):
        stream = GraphStream([(1, 2), (3, 4), (5, 6)])
        assert not stream.has_timestamps
        assert stream.timestamps() == [0.0, 1.0, 2.0]

    def test_with_timestamps_round_trip(self):
        stream = GraphStream([(1, 2), (3, 4)]).with_timestamps([10.5, 11.0])
        assert stream.has_timestamps
        assert stream.timestamps() == [10.5, 11.0]
        assert list(stream.iter_timed()) == [(1, 2, 10.5), (3, 4, 11.0)]

    def test_prefix_slices_timestamps(self):
        stream = GraphStream([(1, 2), (3, 4), (5, 6)]).with_timestamps([1.0, 2.0, 3.0])
        assert stream.prefix(2).timestamps() == [1.0, 2.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GraphStream([(1, 2)], timestamps=[1.0, 2.0])

    def test_assign_timestamps_event_index(self):
        from repro.streams import assign_timestamps

        pairs = [(1, 2), (3, 4), (5, 6)]
        assert assign_timestamps(pairs) == [0.0, 1.0, 2.0]
        assert assign_timestamps(pairs, start=5.0) == [5.0, 6.0, 7.0]

    def test_assign_timestamps_poisson_rate(self):
        from repro.streams import assign_timestamps

        pairs = [(1, index) for index in range(2_000)]
        times = assign_timestamps(pairs, rate=100.0, seed=3)
        assert times == sorted(times)
        # ~2000 pairs at 100/s should span roughly 20 seconds.
        assert 10.0 < times[-1] < 40.0
        with pytest.raises(ValueError):
            assign_timestamps(pairs, rate=-1.0)

    def test_edge_file_timestamp_column_round_trip(self, tmp_path):
        path = tmp_path / "timed.tsv"
        pairs = [(1, 2), (3, 4)]
        write_edge_file(path, pairs, timestamps=[100.5, 200.0])
        stream = read_edge_file(path)
        assert stream.has_timestamps
        assert stream.timestamps() == [100.5, 200.0]
        assert stream.pairs() == pairs

    def test_timestamped_stream_writes_third_column_automatically(self, tmp_path):
        path = tmp_path / "timed.tsv"
        stream = GraphStream([(1, 2), (3, 4)]).with_timestamps([7.0, 8.0])
        write_edge_file(path, stream)
        assert read_edge_file(path).timestamps() == [7.0, 8.0]

    def test_two_column_file_has_no_explicit_timestamps(self, tmp_path):
        path = tmp_path / "plain.tsv"
        write_edge_file(path, [(1, 2), (3, 4)])
        stream = read_edge_file(path)
        assert not stream.has_timestamps
        assert stream.timestamps() == [0.0, 1.0]

    def test_non_numeric_third_column_is_ignored(self, tmp_path):
        # Historical behaviour: extra non-timestamp columns are ignored.
        path = tmp_path / "labels.tsv"
        path.write_text("1\t2\tsome-label\n3\t4\tother-label\n")
        stream = read_edge_file(path)
        assert stream.pairs() == [(1, 2), (3, 4)]
        assert not stream.has_timestamps

    def test_partially_timestamped_file_is_not_attached(self, tmp_path):
        # A numeric third field on only some lines is an attribute, not an
        # arrival clock — never attach a half-real clock.
        path = tmp_path / "mixed.tsv"
        path.write_text("1\t2\n3\t4\t7.5\n")
        stream = read_edge_file(path)
        assert stream.pairs() == [(1, 2), (3, 4)]
        assert not stream.has_timestamps

    def test_non_monotonic_numeric_third_column_is_ignored(self, tmp_path):
        # A numeric third column that is not non-decreasing is a weight or
        # some other attribute, not an arrival clock — do not attach it.
        path = tmp_path / "weights.tsv"
        path.write_text("1\t2\t0.9\n3\t4\t0.1\n")
        stream = read_edge_file(path)
        assert stream.pairs() == [(1, 2), (3, 4)]
        assert not stream.has_timestamps

    def test_full_float_precision_survives_round_trip(self, tmp_path):
        path = tmp_path / "epoch.tsv"
        times = [1721894400.5, 1721894401.25]
        write_edge_file(path, [(1, 2), (3, 4)], timestamps=times)
        assert read_edge_file(path).timestamps() == times

    def test_timestamp_length_mismatch_raises_not_truncates(self, tmp_path):
        path = tmp_path / "short.tsv"
        with pytest.raises(ValueError):
            write_edge_file(path, [(1, 2), (3, 4), (5, 6)], timestamps=[1.0])
        with pytest.raises(ValueError):
            write_edge_file(path, [(1, 2)], timestamps=[1.0, 2.0])
