"""Unit tests for GraphStream, the dataset registry and edge-file IO."""

from __future__ import annotations

import pytest

from repro.streams import (
    DATASETS,
    Edge,
    GraphStream,
    dataset_names,
    load_dataset,
    read_edge_file,
    write_edge_file,
)
from repro.streams.io import iter_edge_file


class TestEdge:
    def test_as_pair(self):
        assert Edge("u", "d", 3).as_pair() == ("u", "d")

    def test_reversed(self):
        edge = Edge("u", "d", 3).reversed()
        assert edge.user == "d"
        assert edge.item == "u"
        assert edge.timestamp == 3

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Edge("u", "d").user = "x"


class TestGraphStream:
    def test_from_list_and_iteration(self):
        pairs = [("a", 1), ("a", 2), ("b", 1), ("a", 1)]
        stream = GraphStream(pairs, name="tiny")
        assert list(stream) == pairs
        assert len(stream) == 4

    def test_replayable_from_factory(self):
        calls = []

        def factory():
            calls.append(1)
            return [("a", 1), ("b", 2)]

        stream = GraphStream(factory)
        assert list(stream) == list(stream)
        # pairs() caches, so later iterations stop invoking the factory.
        stream.pairs()
        before = len(calls)
        list(stream)
        assert len(calls) == before

    def test_exact_statistics(self):
        pairs = [("a", 1), ("a", 2), ("b", 1), ("a", 1)]
        stream = GraphStream(pairs)
        assert stream.user_count == 2
        assert stream.total_cardinality == 3
        assert stream.max_cardinality == 2
        assert stream.cardinalities() == {"a": 2, "b": 1}
        assert stream.duplicate_ratio == pytest.approx(0.25)

    def test_prefix(self):
        stream = GraphStream([("a", i) for i in range(10)])
        assert len(stream.prefix(3)) == 3

    def test_empty_stream(self):
        stream = GraphStream([])
        assert stream.user_count == 0
        assert stream.max_cardinality == 0
        assert stream.duplicate_ratio == 0.0


class TestDatasetRegistry:
    def test_registry_contains_papers_six_datasets(self):
        assert dataset_names() == [
            "sanjose",
            "chicago",
            "Twitter",
            "Flickr",
            "Orkut",
            "LiveJournal",
        ]

    def test_load_dataset_scaled(self):
        stream = load_dataset("chicago", scale=0.05)
        assert stream.user_count > 50
        assert stream.total_cardinality > 200

    def test_load_dataset_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("not-a-dataset")

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            DATASETS["chicago"].generate(scale=0)

    def test_seed_offset_gives_new_realisation(self):
        a = DATASETS["chicago"].generate(scale=0.05, seed_offset=0)
        b = DATASETS["chicago"].generate(scale=0.05, seed_offset=1)
        assert a != b

    def test_paper_statistics_recorded(self):
        spec = DATASETS["Orkut"]
        assert spec.paper_users == 2_997_376
        assert spec.paper_average_cardinality == pytest.approx(74.6, rel=0.01)

    def test_heavy_tail_shape(self):
        # Every stand-in must be heavy tailed: max cardinality far above the mean.
        stream = load_dataset("Twitter", scale=0.05)
        cards = list(stream.cardinalities().values())
        assert max(cards) > 10 * (sum(cards) / len(cards))


class TestEdgeFileIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "edges.tsv"
        pairs = [(1, 10), (2, 20), (1, 10)]
        count = write_edge_file(path, pairs, header="test file")
        assert count == 3
        stream = read_edge_file(path)
        assert list(stream) == pairs

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n1 2\n3 4\n")
        assert list(iter_edge_file(path)) == [(1, 2), (3, 4)]

    def test_string_endpoints(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice site-a\nbob site-b\n")
        assert list(iter_edge_file(path, as_int=False)) == [
            ("alice", "site-a"),
            ("bob", "site-b"),
        ]

    def test_non_integer_falls_back_to_string(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice 5\n")
        assert list(iter_edge_file(path)) == [("alice", "5")]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("only-one-field\n")
        with pytest.raises(ValueError):
            list(iter_edge_file(path))

    def test_read_edge_file_names_stream(self, tmp_path):
        path = tmp_path / "my_trace.tsv"
        write_edge_file(path, [(1, 2)])
        assert read_edge_file(path).name == "my_trace"
