"""Unit tests for the indexed hash-function family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import HashFamily


class TestHashFamilyConstruction:
    def test_rejects_non_positive_m(self):
        with pytest.raises(ValueError):
            HashFamily(0, 100)

    def test_rejects_non_positive_range(self):
        with pytest.raises(ValueError):
            HashFamily(4, 0)


class TestHashFamilyEvaluation:
    def test_positions_in_range(self):
        family = HashFamily(16, 97, seed=1)
        positions = family.positions("user-1")
        assert positions.shape == (16,)
        assert positions.min() >= 0
        assert positions.max() < 97

    def test_position_matches_positions(self):
        family = HashFamily(8, 1000, seed=2)
        all_positions = family.positions(1234)
        for index in range(8):
            assert family.position(1234, index) == all_positions[index]

    def test_position_index_out_of_range(self):
        family = HashFamily(4, 10)
        with pytest.raises(IndexError):
            family.position("x", 4)

    def test_deterministic(self):
        family_a = HashFamily(32, 500, seed=7)
        family_b = HashFamily(32, 500, seed=7)
        assert family_a.positions("key").tolist() == family_b.positions("key").tolist()

    def test_different_seeds_differ(self):
        family_a = HashFamily(32, 500, seed=7)
        family_b = HashFamily(32, 500, seed=8)
        assert family_a.positions("key").tolist() != family_b.positions("key").tolist()

    def test_functions_are_distinct(self):
        # Different functions of the family should map the same key to
        # different positions (except for chance collisions).
        family = HashFamily(64, 10_000, seed=3)
        positions = family.positions("same-key")
        assert len(set(positions.tolist())) > 55

    def test_positions_for_many_matches_single(self):
        family = HashFamily(8, 256, seed=11)
        keys = np.array([1, 2, 3, 99], dtype=np.uint64)
        matrix = family.positions_for_many(keys)
        assert matrix.shape == (4, 8)
        for row, key in enumerate(keys):
            assert matrix[row].tolist() == family.positions(int(key)).tolist()

    def test_distribution_over_range(self):
        family = HashFamily(4, 10, seed=5)
        counts = np.zeros(10, dtype=np.int64)
        for key in range(2000):
            for position in family.positions(key):
                counts[position] += 1
        # 8000 samples over 10 cells: each cell should be within 25% of 800.
        assert counts.min() > 600
        assert counts.max() < 1000
