"""Unit tests for super-spreader detection and its evaluation."""

from __future__ import annotations

import pytest

from repro.baselines.exact import ExactCounter
from repro.core import FreeBS, FreeRS
from repro.detection import (
    SuperSpreaderDetector,
    detection_error_at_end,
    detection_error_over_time,
    super_spreaders,
)
from repro.streams.generators import zipf_bipartite_stream


class TestSuperSpreaders:
    def test_threshold_selection(self):
        cardinalities = {"a": 100, "b": 5, "c": 40}
        spreaders = super_spreaders(cardinalities, delta=0.2)  # threshold = 29
        assert spreaders == {"a", "c"}

    def test_explicit_total(self):
        cardinalities = {"a": 100, "b": 5}
        spreaders = super_spreaders(cardinalities, delta=0.5, total_cardinality=150)
        assert spreaders == {"a"}

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            super_spreaders({"a": 1}, delta=0.0)
        with pytest.raises(ValueError):
            super_spreaders({"a": 1}, delta=1.0)


class TestSuperSpreaderDetector:
    def _build_stream(self):
        # One clear super spreader among small users.
        pairs = [("heavy", item) for item in range(500)]
        for user in range(50):
            pairs.extend((f"small-{user}", item) for item in range(5))
        return pairs

    def test_detects_heavy_user_with_exact_total(self):
        pairs = self._build_stream()
        exact = ExactCounter()
        detector = SuperSpreaderDetector(FreeBS(1 << 16), delta=0.2)
        for user, item in pairs:
            detector.update(user, item)
            exact.update(user, item)
        detected = detector.detect(exact_total=exact.total_cardinality)
        assert detected == {"heavy"}

    def test_online_mode_resolves_total_from_estimator(self):
        pairs = self._build_stream()
        detector = SuperSpreaderDetector(FreeRS(1 << 13), delta=0.2, use_exact_total=False)
        detector.process(pairs)
        assert detector.detect() == {"heavy"}

    def test_exact_total_required_when_configured(self):
        detector = SuperSpreaderDetector(FreeBS(1 << 12), delta=0.1)
        detector.update("u", "d")
        with pytest.raises(ValueError):
            detector.detect()

    def test_threshold_value(self):
        detector = SuperSpreaderDetector(FreeBS(1 << 12), delta=0.1)
        detector.update("u", "d")
        assert detector.threshold(exact_total=100) == pytest.approx(10.0)

    def test_top_users_ranked(self):
        detector = SuperSpreaderDetector(FreeBS(1 << 16), delta=0.1, use_exact_total=False)
        detector.process(self._build_stream())
        top = detector.top_users(3)
        assert top[0][0] == "heavy"
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            SuperSpreaderDetector(FreeBS(1 << 12), delta=2.0)


class TestDetectionEvaluation:
    def test_end_of_stream_scores_perfect_for_exact_estimator(self):
        pairs = zipf_bipartite_stream(n_users=100, n_pairs=2_000, seed=21)
        result = detection_error_at_end(ExactCounter(), pairs, delta=5e-3)
        assert result.false_negative_rate == 0.0
        assert result.false_positive_rate == 0.0
        assert result.true_spreaders == result.detected_spreaders

    def test_end_of_stream_with_sketch_estimator(self):
        pairs = zipf_bipartite_stream(n_users=200, n_pairs=5_000, seed=22)
        result = detection_error_at_end(FreeBS(1 << 18), pairs, delta=5e-3)
        assert result.false_negative_rate < 0.2
        assert result.false_positive_rate < 0.05

    def test_over_time_produces_requested_checkpoints(self):
        pairs = zipf_bipartite_stream(n_users=100, n_pairs=2_000, seed=23)
        results = detection_error_over_time(FreeBS(1 << 16), pairs, delta=5e-3, checkpoints=4)
        assert len(results) == 4
        assert results[-1].pairs_processed == len(pairs)
        assert [r.checkpoint for r in results] == [1, 2, 3, 4]

    def test_over_time_rejects_bad_checkpoints(self):
        with pytest.raises(ValueError):
            detection_error_over_time(FreeBS(1 << 12), [("a", 1)], checkpoints=0)

    def test_over_time_empty_stream(self):
        assert detection_error_over_time(FreeBS(1 << 12), [], checkpoints=3) == []

    def test_result_as_dict(self):
        pairs = [("a", 1), ("b", 2)]
        result = detection_error_at_end(ExactCounter(), pairs, delta=0.4)
        as_dict = result.as_dict()
        assert set(as_dict) == {
            "checkpoint",
            "pairs_processed",
            "true_spreaders",
            "detected_spreaders",
            "fnr",
            "fpr",
        }
