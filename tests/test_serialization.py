"""Tests for estimator snapshot serialization."""

from __future__ import annotations

import random

import pytest

from repro.core import FreeBS, FreeBSBatch, FreeRS, FreeRSBatch
from repro.core import serialization
from repro.baselines import ExactCounter


def _feed(estimator, pairs):
    for user, item in pairs:
        estimator.update(user, item)
    return estimator


def _pairs(count, seed=0):
    rng = random.Random(seed)
    return [(rng.randint(0, 30), rng.randint(0, 300)) for _ in range(count)]


@pytest.mark.parametrize(
    "factory",
    [
        lambda: FreeBS(1 << 12, seed=3),
        lambda: FreeRS(1 << 9, seed=3),
        lambda: FreeBSBatch(1 << 12, seed=3),
        lambda: FreeRSBatch(1 << 9, seed=3),
    ],
    ids=["FreeBS", "FreeRS", "FreeBSBatch", "FreeRSBatch"],
)
class TestRoundTrip:
    def test_estimates_survive_round_trip(self, factory):
        estimator = _feed(factory(), _pairs(2_000, seed=1))
        restored = serialization.loads(serialization.dumps(estimator))
        assert restored.estimates() == estimator.estimates()

    def test_restored_estimator_continues_identically(self, factory):
        # Process half the stream, snapshot, restore, process the second half
        # on both the original and the restored copy: results must be equal.
        first_half = _pairs(1_500, seed=2)
        second_half = _pairs(1_500, seed=3)
        original = _feed(factory(), first_half)
        restored = serialization.loads(serialization.dumps(original))
        _feed(original, second_half)
        _feed(restored, second_half)
        assert restored.estimates() == original.estimates()

    def test_file_round_trip(self, factory, tmp_path):
        estimator = _feed(factory(), _pairs(500, seed=4))
        path = tmp_path / "snapshot.json"
        serialization.save(estimator, path)
        restored = serialization.load(path)
        assert restored.estimates() == estimator.estimates()
        assert type(restored) is type(estimator)


class TestErrorsAndFormat:
    def test_rejects_unsupported_estimator(self):
        with pytest.raises(TypeError):
            serialization.dumps(ExactCounter())

    def test_rejects_garbage_payload(self):
        with pytest.raises(ValueError):
            serialization.loads('{"format": "something-else"}')

    def test_rejects_unknown_version(self):
        payload = serialization.dumps(FreeBS(1 << 10))
        tampered = payload.replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError):
            serialization.loads(tampered)

    def test_string_and_int_users_round_trip(self):
        estimator = FreeBS(1 << 10, seed=1)
        estimator.update("alice", "x")
        estimator.update(42, "y")
        restored = serialization.loads(serialization.dumps(estimator))
        assert set(restored.estimates()) == {"alice", 42}

    def test_seed_preserved(self):
        estimator = FreeRS(1 << 8, seed=77)
        estimator.update("u", "i")
        restored = serialization.loads(serialization.dumps(estimator))
        assert restored.seed == 77
