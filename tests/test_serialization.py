"""Tests for estimator snapshot serialization."""

from __future__ import annotations

import random

import pytest

from repro.core import FreeBS, FreeBSBatch, FreeRS, FreeRSBatch
from repro.core import serialization
from repro.baselines import CSE, ExactCounter, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.engine import ShardedEstimator


def _feed(estimator, pairs):
    for user, item in pairs:
        estimator.update(user, item)
    return estimator


def _pairs(count, seed=0):
    rng = random.Random(seed)
    return [(rng.randint(0, 30), rng.randint(0, 300)) for _ in range(count)]


@pytest.mark.parametrize(
    "factory",
    [
        lambda: FreeBS(1 << 12, seed=3),
        lambda: FreeRS(1 << 9, seed=3),
        lambda: FreeBSBatch(1 << 12, seed=3),
        lambda: FreeRSBatch(1 << 9, seed=3),
    ],
    ids=["FreeBS", "FreeRS", "FreeBSBatch", "FreeRSBatch"],
)
class TestRoundTrip:
    def test_estimates_survive_round_trip(self, factory):
        estimator = _feed(factory(), _pairs(2_000, seed=1))
        restored = serialization.loads(serialization.dumps(estimator))
        assert restored.estimates() == estimator.estimates()

    def test_restored_estimator_continues_identically(self, factory):
        # Process half the stream, snapshot, restore, process the second half
        # on both the original and the restored copy: results must be equal.
        first_half = _pairs(1_500, seed=2)
        second_half = _pairs(1_500, seed=3)
        original = _feed(factory(), first_half)
        restored = serialization.loads(serialization.dumps(original))
        _feed(original, second_half)
        _feed(restored, second_half)
        assert restored.estimates() == original.estimates()

    def test_file_round_trip(self, factory, tmp_path):
        estimator = _feed(factory(), _pairs(500, seed=4))
        path = tmp_path / "snapshot.json"
        serialization.save(estimator, path)
        restored = serialization.load(path)
        assert restored.estimates() == estimator.estimates()
        assert type(restored) is type(estimator)


class TestErrorsAndFormat:
    def test_rejects_unsupported_estimator(self):
        with pytest.raises(TypeError):
            serialization.dumps(ExactCounter())

    def test_rejects_garbage_payload(self):
        with pytest.raises(ValueError):
            serialization.loads('{"format": "something-else"}')

    def test_rejects_unknown_version(self):
        payload = serialization.dumps(FreeBS(1 << 10))
        tampered = payload.replace('"version": 3', '"version": 99')
        with pytest.raises(ValueError):
            serialization.loads(tampered)

    def test_string_and_int_users_round_trip(self):
        estimator = FreeBS(1 << 10, seed=1)
        estimator.update("alice", "x")
        estimator.update(42, "y")
        restored = serialization.loads(serialization.dumps(estimator))
        assert set(restored.estimates()) == {"alice", 42}

    def test_seed_preserved(self):
        estimator = FreeRS(1 << 8, seed=77)
        estimator.update("u", "i")
        restored = serialization.loads(serialization.dumps(estimator))
        assert restored.seed == 77


class TestObjectEnvelopes:
    """``to_obj``/``from_obj`` are the dict-level seam under dumps/loads —
    embedders (monitor snapshots) compose envelopes without a render +
    re-parse round-trip per estimator."""

    def test_to_obj_matches_dumps_and_from_obj_loads_it(self):
        import json

        estimator = _feed(FreeRS(1 << 9, seed=3), _pairs(1_000, seed=5))
        envelope = serialization.to_obj(estimator)
        assert envelope == json.loads(serialization.dumps(estimator))
        restored = serialization.from_obj(envelope)
        assert restored.estimates() == estimator.estimates()

    def test_from_obj_rejects_bad_envelopes(self):
        with pytest.raises(ValueError):
            serialization.from_obj({"format": "something-else"})
        envelope = serialization.to_obj(FreeBS(1 << 10))
        with pytest.raises(ValueError):
            serialization.from_obj({**envelope, "version": 99})

    def test_sharded_envelope_embeds_plain_sub_envelopes(self):
        sharded = _feed(
            ShardedEstimator(lambda k: FreeRS(1 << 8, seed=3), shards=3),
            _pairs(1_000, seed=6),
        )
        envelope = serialization.to_obj(sharded)
        for shard in envelope["body"]["sub"]:
            restored_shard = serialization.from_obj(shard)
            assert isinstance(restored_shard, FreeRS)
        assert serialization.from_obj(envelope).estimates() == sharded.estimates()


class TestVersion2Kinds:
    """Round-trips of the kinds added in format version 2."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: CSE(1 << 12, virtual_size=64, seed=3),
            lambda: VirtualHLL(1 << 10, virtual_size=64, seed=3),
            lambda: PerUserLPC(1 << 12, expected_users=30, seed=3),
            lambda: PerUserHLLPP(1 << 13, expected_users=30, seed=3),
        ],
        ids=["CSE", "vHLL", "LPC", "HLL++"],
    )
    def test_baseline_round_trip_and_continue(self, factory):
        first_half = _pairs(1_500, seed=6)
        second_half = _pairs(1_500, seed=7)
        original = _feed(factory(), first_half)
        restored = serialization.loads(serialization.dumps(original))
        assert restored.estimates() == original.estimates()
        _feed(original, second_half)
        _feed(restored, second_half)
        assert restored.estimates() == original.estimates()

    def test_sharded_round_trip_with_multiple_shards(self):
        estimator = ShardedEstimator(
            lambda _k: FreeRS(1 << 8, seed=5), shards=4, seed=5
        )
        _feed(estimator, _pairs(2_000, seed=8))
        restored = serialization.loads(serialization.dumps(estimator))
        assert isinstance(restored, ShardedEstimator)
        assert restored.num_shards == 4
        assert restored.shard_pair_counts == estimator.shard_pair_counts
        assert restored.estimates() == estimator.estimates()
        # Both continue identically through the batch path.
        tail = _pairs(1_000, seed=9)
        estimator.update_batch(tail)
        restored.update_batch(tail)
        assert restored.estimates() == estimator.estimates()

    def test_sharded_of_baselines_round_trips(self):
        estimator = ShardedEstimator(
            lambda _k: CSE(1 << 10, virtual_size=64, seed=2), shards=3, seed=2
        )
        _feed(estimator, _pairs(1_000, seed=10))
        restored = serialization.loads(serialization.dumps(estimator))
        assert restored.estimates() == estimator.estimates()

    def test_hllpp_sparse_and_dense_representations_survive(self):
        estimator = PerUserHLLPP(1 << 14, expected_users=2, seed=1)
        # One light user (stays sparse) and one heavy user (densifies).
        estimator.update("light", 1)
        for item in range(5_000):
            estimator.update("heavy", item)
        sketches = estimator._sketches
        assert sketches["light"].is_sparse and not sketches["heavy"].is_sparse
        restored = serialization.loads(serialization.dumps(estimator))
        assert restored._sketches["light"].is_sparse
        assert not restored._sketches["heavy"].is_sparse
        assert restored.estimates() == estimator.estimates()


class TestCrossVersionLoads:
    """Older envelopes (v1/v2) must stay loadable by the v3 codec table.

    The loader accepts every version in ``_ACCEPTED_VERSIONS``; a payload
    whose envelope says ``version: 1`` differs from today's only in that
    number, so for every registry tag we rewrite the header and assert the
    load is byte-for-byte equivalent to the current-version load.  A
    corrupted header (wrong format string, unknown kind, truncated body)
    must be rejected with a clear error, never half-loaded.
    """

    def _registry_estimators(self):
        from repro.experiments.config import ExperimentConfig
        from repro.registry import REGISTRY, build

        config = ExperimentConfig(memory_bits=1 << 12, seed=3)
        for name, spec in REGISTRY.items():
            estimator = _feed(build(name, config, expected_users=40), _pairs(1_200, seed=5))
            yield spec.tag, estimator

    def test_v1_payloads_load_for_every_registry_tag(self):
        import json

        seen_tags = []
        for tag, estimator in self._registry_estimators():
            envelope = json.loads(serialization.dumps(estimator))
            assert envelope["kind"] == tag
            envelope["version"] = 1
            restored = serialization.loads(json.dumps(envelope))
            assert restored.estimates() == estimator.estimates(), (
                f"v1 payload of kind {tag} did not restore identically"
            )
            seen_tags.append(tag)
        from repro.registry import REGISTRY

        assert seen_tags == [spec.tag for spec in REGISTRY.values()]

    def test_v2_payloads_load_for_every_registry_tag(self):
        import json

        # Version-2 envelopes (pre-columnar estimates) differ from v3 in the
        # estimates body: a triple list, never the columnar dict.  Rewriting
        # the header *and* downgrading the payload exercises the shape
        # dispatch in _estimates_from_payload.
        for tag, estimator in self._registry_estimators():
            envelope = json.loads(serialization.dumps(estimator))
            envelope["version"] = 2
            if isinstance(envelope["estimates"], dict):
                envelope["estimates"] = serialization._estimates_to_json(
                    estimator.estimates()
                )
            restored = serialization.loads(json.dumps(envelope))
            assert restored.estimates() == estimator.estimates(), (
                f"v2 payload of kind {tag} did not restore identically"
            )

    def test_v3_columnar_estimates_payload_round_trips(self):
        import json

        # v3's headline change: pure-int user populations ship as two base85
        # columns.  Assert the wire form is actually columnar, and that it
        # restores the exact dict (including key *types* — ints, not strs).
        estimator = _feed(FreeBS(1 << 12, seed=3), _pairs(2_000, seed=11))
        envelope = json.loads(serialization.dumps(estimator))
        assert envelope["version"] == 3
        assert envelope["estimates"]["encoding"] == "columnar-i64"
        restored = serialization.from_obj(envelope)
        assert restored.estimates() == estimator.estimates()
        assert all(type(user) is int for user in restored.estimates())

    def test_v3_mixed_keys_fall_back_to_triples(self):
        import json

        estimator = FreeBS(1 << 10, seed=1)
        estimator.update("alice", "x")
        estimator.update(42, "y")
        estimator.update(b"raw", "z")
        estimator.update(("t", 7), "w")
        envelope = json.loads(serialization.dumps(estimator))
        assert isinstance(envelope["estimates"], list)  # not columnar
        restored = serialization.from_obj(envelope)
        assert set(restored.estimates()) == {"alice", 42, b"raw", ("t", 7)}

    def test_v1_sharded_envelope_loads(self):
        import json

        estimator = _feed(
            ShardedEstimator(lambda _k: VirtualHLL(1 << 9, virtual_size=64, seed=3), shards=2),
            _pairs(1_500, seed=6),
        )
        envelope = json.loads(serialization.dumps(estimator))
        envelope["version"] = 1
        for sub in envelope["body"]["sub"]:
            sub["version"] = 1
        restored = serialization.loads(json.dumps(envelope))
        assert restored.estimates() == estimator.estimates()

    def test_corrupted_header_rejections(self):
        import json

        estimator = _feed(FreeBS(1 << 10, seed=3), _pairs(400, seed=7))
        envelope = json.loads(serialization.dumps(estimator))

        wrong_format = dict(envelope, format="not-a-freesketch-snapshot")
        with pytest.raises(ValueError, match="not a freesketch snapshot"):
            serialization.loads(json.dumps(wrong_format))

        future_version = dict(envelope, version=99)
        with pytest.raises(ValueError, match="unsupported snapshot version"):
            serialization.loads(json.dumps(future_version))

        unknown_kind = dict(envelope, kind="MysterySketch")
        with pytest.raises(ValueError, match="unknown snapshot kind"):
            serialization.loads(json.dumps(unknown_kind))

    def test_truncated_payload_rejected(self):
        payload = serialization.dumps(_feed(FreeRS(1 << 9, seed=3), _pairs(400, seed=8)))
        import json

        with pytest.raises(json.JSONDecodeError):
            serialization.loads(payload[: len(payload) // 2])
