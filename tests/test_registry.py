"""Tests for the central method registry (specs, dimensioning, parity).

The parity suite re-implements the pre-refactor construction chains
literally (the if/elif bodies that used to live in
``repro/experiments/estimators.py``) and asserts the registry builds
estimators that produce *identical* estimates on a randomized stream — the
registry migration must not change a single bit of any experiment.
"""

from __future__ import annotations

import json

import pytest

from repro.baselines import CSE, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.core import FreeBS, FreeRS
from repro.core import serialization
from repro.engine import ShardedEstimator
from repro.experiments.config import ExperimentConfig
from repro.experiments.estimators import build_estimator, build_estimators
from repro.registry import (
    METHOD_ORDER,
    REGISTRY,
    build,
    build_many,
    clamp_virtual_size,
    spec_for,
)
from repro.streams.generators import zipf_bipartite_stream

#: Configuration under which the unified clamp agrees with both legacy rules,
#: so the parity check is exact (see test_clamp_* for where they diverge).
_CONFIG = ExperimentConfig(memory_bits=1 << 16, virtual_size=128, seed=11)
_EXPECTED_USERS = 120


def _legacy_build(method: str, config: ExperimentConfig, expected_users: int):
    """The pre-refactor construction, verbatim, as the parity reference."""
    registers = config.registers
    virtual_size = min(config.virtual_size, max(16, registers // 4), registers - 1)
    if method == "FreeBS":
        return FreeBS(config.memory_bits, seed=config.seed)
    if method == "FreeRS":
        return FreeRS(registers, register_width=config.register_width, seed=config.seed)
    if method == "CSE":
        cse_virtual = min(config.virtual_size, config.memory_bits)
        return CSE(config.memory_bits, virtual_size=cse_virtual, seed=config.seed)
    if method == "vHLL":
        return VirtualHLL(
            registers,
            virtual_size=virtual_size,
            register_width=config.register_width,
            seed=config.seed,
        )
    if method == "LPC":
        return PerUserLPC(config.memory_bits, expected_users=expected_users, seed=config.seed)
    if method == "HLL++":
        return PerUserHLLPP(config.memory_bits, expected_users=expected_users, seed=config.seed)
    raise AssertionError(method)


@pytest.fixture(scope="module")
def stream_pairs():
    return list(
        zipf_bipartite_stream(n_users=_EXPECTED_USERS, n_pairs=6000, seed=5)
    )


class TestSpecs:
    def test_method_order_matches_registry(self):
        assert METHOD_ORDER == list(REGISTRY)
        assert METHOD_ORDER == ["FreeBS", "FreeRS", "CSE", "vHLL", "LPC", "HLL++"]

    def test_all_methods_support_the_batch_engine(self):
        assert all(spec.batch_engine for spec in REGISTRY.values())

    def test_merge_capability_mirrors_monitor_semantics(self):
        from repro.monitor.merge import EXACT, merge_exactness

        for name, spec in REGISTRY.items():
            estimator = build(name, _CONFIG, _EXPECTED_USERS)
            assert spec.mergeable == (merge_exactness(estimator) == EXACT), name

    def test_serialization_tags_round_trip(self, stream_pairs):
        for name, spec in REGISTRY.items():
            estimator = build(name, _CONFIG, _EXPECTED_USERS)
            for user, item in stream_pairs[:400]:
                estimator.update(user, item)
            payload = serialization.dumps(estimator)
            assert json.loads(payload)["kind"] == spec.tag
            restored = serialization.loads(payload)
            assert restored.estimates() == estimator.estimates()

    def test_spec_lookups(self):
        assert spec_for("vHLL").estimator_cls is VirtualHLL
        assert spec_for("HLL++").tag == "HLL++"
        with pytest.raises(ValueError, match="unknown method"):
            spec_for("nope")


class TestDimensioning:
    def test_clamp_agrees_with_legacy_vhll_rule(self):
        registers = _CONFIG.registers
        legacy = min(_CONFIG.virtual_size, max(16, registers // 4), registers - 1)
        assert clamp_virtual_size(_CONFIG.virtual_size, registers, strict=True) == legacy

    def test_clamp_caps_cse_at_a_quarter_of_capacity(self):
        # The legacy CSE rule allowed the virtual sketch to swallow the whole
        # bit array (min(512, 256) == 256); the unified rule caps it at a
        # quarter so the noise-subtraction term keeps head-room.
        assert clamp_virtual_size(512, 256) == 64
        assert clamp_virtual_size(512, 2048) == 512
        assert clamp_virtual_size(128, 1 << 16) == 128

    def test_clamp_keeps_vhll_constructor_invariant(self):
        # Tiny register files: the result must stay strictly below capacity.
        assert clamp_virtual_size(64, 16, strict=True) == 15
        assert clamp_virtual_size(3, 16, strict=True) == 3

    def test_clamp_rejects_nonpositive_requests(self):
        with pytest.raises(ValueError):
            clamp_virtual_size(0, 1024)

    def test_both_virtual_methods_build_under_tiny_shard_budgets(self):
        tiny = ExperimentConfig(memory_bits=1 << 10, virtual_size=1024, seed=3)
        cse = build("CSE", tiny, 10)
        vhll = build("vHLL", tiny, 10)
        assert cse.m <= cse.M // 4 or cse.m == 16
        assert vhll.m < vhll.M


class TestParity:
    @pytest.mark.parametrize("method", METHOD_ORDER)
    def test_registry_matches_legacy_construction(self, method, stream_pairs):
        legacy = _legacy_build(method, _CONFIG, _EXPECTED_USERS)
        registry_built = build(method, _CONFIG, _EXPECTED_USERS)
        assert type(registry_built) is type(legacy)
        for user, item in stream_pairs:
            legacy.update(user, item)
            registry_built.update(user, item)
        assert registry_built.estimates() == legacy.estimates()

    def test_facade_delegates_to_registry(self, stream_pairs):
        via_facade = build_estimator("FreeRS", _CONFIG, _EXPECTED_USERS)
        via_registry = build("FreeRS", _CONFIG, _EXPECTED_USERS)
        for user, item in stream_pairs[:500]:
            via_facade.update(user, item)
            via_registry.update(user, item)
        assert via_facade.estimates() == via_registry.estimates()


class TestBuildMany:
    def test_builds_all_methods_in_order(self):
        estimators = build_many(_CONFIG, _EXPECTED_USERS)
        assert list(estimators) == METHOD_ORDER

    def test_rejects_unknown_methods(self):
        with pytest.raises(ValueError, match="unknown methods"):
            build_many(_CONFIG, _EXPECTED_USERS, methods=["FreeBS", "nope"])

    def test_sharded_build_splits_the_budget(self):
        estimator = build("FreeBS", _CONFIG, _EXPECTED_USERS, shards=4)
        assert isinstance(estimator, ShardedEstimator)
        assert estimator.num_shards == 4
        assert estimator.memory_bits() == (_CONFIG.memory_bits // 4) * 4

    def test_sharded_build_rejects_starved_shards(self):
        tiny = ExperimentConfig(memory_bits=256)
        with pytest.raises(ValueError, match="too small"):
            build("FreeBS", tiny, 10, shards=8)

    def test_facade_sharded_matches_registry(self):
        facade = build_estimators(_CONFIG, _EXPECTED_USERS, methods=["vHLL"], shards=2)
        assert isinstance(facade["vHLL"], ShardedEstimator)
        assert facade["vHLL"].num_shards == 2
