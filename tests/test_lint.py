"""The lint framework: fixtures fire, clean passes, suppressions work.

Every shipped rule is proven *live* three ways, from the fixture corpus in
``tests/lint_fixtures/``:

* its ``*_firing`` fixture produces at least one finding of that rule;
* its ``*_clean`` fixture produces zero findings (of any rule);
* its ``*_suppressed`` fixture is silent **and** leaves no hygiene
  residue — the suppression is used and carries a reason.

Each fixture file names its deploy path in a ``# dest:`` header; the
harness materialises it inside a throwaway repo root so scope patterns
(``src/repro/monitor/*.py`` ...) match exactly as they do in this
repository.  Cross-file rules (RL004/RL006) use fixture *directories*.

On top of the corpus: driver behaviour (exit codes, ``--json``,
``--rules``, strict hygiene) and the meta-assertion that the fixture
corpus itself is complete for every shipped rule.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import META_RULE, all_checkers, main, run_lint

FIXTURES = Path(__file__).parent / "lint_fixtures"

RULES = sorted(checker.rule for checker in all_checkers())


def _deploy(case: str, tmp_path: Path) -> Path:
    """Materialise one fixture (file or directory) in a fresh repo root."""
    root = tmp_path / "repo"
    (root / "src" / "repro").mkdir(parents=True)  # the root marker
    source = FIXTURES / case
    files = [source] if source.is_file() else sorted(source.glob("*.py"))
    for file in files:
        text = file.read_text(encoding="utf-8")
        header = text.splitlines()[0]
        assert header.startswith("# dest:"), f"{file} lacks a '# dest:' header"
        dest = root / header.split(":", 1)[1].strip()
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(text, encoding="utf-8")
    return root


def _lint(root: Path, strict: bool = True):
    result = run_lint([root], root=root)
    return result.reportable(strict)


def _cases(rule: str, kind: str) -> list[str]:
    prefix = rule.lower()
    return sorted(
        path.name for path in FIXTURES.glob(f"{prefix}_{kind}*")
    )


class TestFixtureCorpus:
    def test_every_rule_has_firing_clean_and_suppressed_fixtures(self):
        for rule in RULES:
            assert _cases(rule, "firing"), f"no firing fixture for {rule}"
            assert _cases(rule, "clean"), f"no clean fixture for {rule}"
            assert _cases(rule, "suppressed"), f"no suppressed fixture for {rule}"
        # The meta rule has no suppressed case: hygiene findings cannot be
        # suppressed (a suppression of a suppression could never go stale).
        assert _cases(META_RULE, "firing") and _cases(META_RULE, "clean")

    @pytest.mark.parametrize("rule", RULES)
    def test_firing_fixtures_fire(self, rule, tmp_path):
        for index, case in enumerate(_cases(rule, "firing")):
            root = _deploy(case, tmp_path / str(index))
            findings = _lint(root)
            fired = [finding for finding in findings if finding.rule == rule]
            assert fired, f"{case} produced no {rule} finding: {findings}"

    @pytest.mark.parametrize("rule", RULES)
    def test_clean_fixtures_are_silent(self, rule, tmp_path):
        for index, case in enumerate(_cases(rule, "clean")):
            root = _deploy(case, tmp_path / str(index))
            findings = _lint(root)
            assert findings == [], f"{case} is not clean: {findings}"

    @pytest.mark.parametrize("rule", RULES)
    def test_suppressed_fixtures_are_silent_even_in_strict_mode(self, rule, tmp_path):
        for index, case in enumerate(_cases(rule, "suppressed")):
            root = _deploy(case, tmp_path / str(index))
            findings = _lint(root, strict=True)
            assert findings == [], f"{case} left residue: {findings}"

    def test_meta_rule_fires_on_stale_and_reasonless_suppressions(self, tmp_path):
        root = _deploy("rl000_firing.py", tmp_path)
        strict = _lint(root, strict=True)
        messages = [finding.message for finding in strict]
        assert any("silences nothing" in message for message in messages)
        assert any("carries no reason" in message for message in messages)
        assert all(finding.rule == META_RULE for finding in strict)
        # Hygiene is strict-only: the default mode stays quiet.
        assert _lint(root, strict=False) == []

    def test_findings_carry_location_rule_and_hint(self, tmp_path):
        root = _deploy("rl001_firing.py", tmp_path)
        finding = _lint(root)[0]
        assert finding.path == "src/repro/monitor/example.py"
        assert finding.line > 0 and finding.rule == "RL001"
        rendered = finding.render()
        assert rendered.startswith("src/repro/monitor/example.py:")
        assert "RL001" in rendered and "[hint:" in rendered


class TestReasonlessSuppressionNeverSilences:
    def test_reasonless_suppression_does_not_hide_the_finding(self, tmp_path):
        root = _deploy("rl001_firing.py", tmp_path)
        target = root / "src/repro/monitor/example.py"
        text = target.read_text(encoding="utf-8").replace(
            "# guarded write outside `with self.lock`",
            "# repro-lint: disable=RL001",
        )
        target.write_text(text, encoding="utf-8")
        findings = _lint(root, strict=True)
        rules = {finding.rule for finding in findings}
        # The violation still fires AND the bare suppression is flagged.
        assert rules == {"RL001", META_RULE}


class TestDriver:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        root = _deploy("rl001_clean.py", tmp_path)
        assert main([str(root), "--strict"]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_exit_one_on_findings(self, tmp_path, capsys):
        root = _deploy("rl001_firing.py", tmp_path)
        assert main([str(root)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out

    def test_exit_two_on_syntax_errors(self, tmp_path, capsys):
        root = tmp_path / "repo"
        (root / "src" / "repro").mkdir(parents=True)
        (root / "src" / "repro" / "broken.py").write_text("def oops(:\n")
        assert main([str(root)]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_json_output_is_a_findings_document(self, tmp_path, capsys):
        root = _deploy("rl005_firing.py", tmp_path)
        assert main([str(root), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["checked_files"] == 1
        assert document["rules"]  # the rule catalog rides along
        assert any(f["rule"] == "RL005" for f in document["findings"])
        for finding in document["findings"]:
            assert {"path", "line", "col", "rule", "message", "hint"} <= set(finding)

    def test_rules_filter_limits_the_run(self, tmp_path):
        # The RL005 firing fixture fires nothing when only RL001 runs.
        root = _deploy("rl005_firing.py", tmp_path)
        assert main([str(root), "--rules", "RL001"]) == 0

    def test_unknown_rule_id_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--rules", "RL999"])
        assert excinfo.value.code == 2

    def test_rule_ids_are_unique_and_titled(self):
        checkers = all_checkers()
        rules = [checker.rule for checker in checkers]
        assert len(set(rules)) == len(rules) >= 6
        assert all(checker.title for checker in checkers)


class TestRepositoryIsClean:
    def test_src_and_scripts_lint_clean_in_strict_mode(self):
        # The same invocation CI runs; a regression in the codebase (or an
        # over-eager checker) fails here first, with the rendered findings.
        repo = Path(__file__).resolve().parents[1]
        result = run_lint([repo / "src", repo / "scripts"], root=repo)
        reportable = result.reportable(strict=True)
        assert result.parse_errors == []
        assert reportable == [], "\n".join(f.render() for f in reportable)
