"""The lint framework: fixtures fire, clean passes, suppressions work.

Every shipped rule is proven *live* three ways, from the fixture corpus in
``tests/lint_fixtures/``:

* its ``*_firing`` fixture produces at least one finding of that rule;
* its ``*_clean`` fixture produces zero findings (of any rule);
* its ``*_suppressed`` fixture is silent **and** leaves no hygiene
  residue — the suppression is used and carries a reason.

Each fixture file names its deploy path in a ``# dest:`` header; the
harness materialises it inside a throwaway repo root so scope patterns
(``src/repro/monitor/*.py`` ...) match exactly as they do in this
repository.  Cross-file rules (RL004/RL006) use fixture *directories*.

On top of the corpus: driver behaviour (exit codes, ``--json``,
``--rules``, strict hygiene, resilience to unreadable files), the
flow-sensitive rules' path-dependence, the ``--fix`` round-trip property,
the incremental cache, the ratchet baseline, CLI parity and the
meta-assertion that the fixture corpus itself is complete for every
shipped rule.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.lint import META_RULE, PARSE_RULE, all_checkers, main, run_lint

FIXTURES = Path(__file__).parent / "lint_fixtures"

RULES = sorted(checker.rule for checker in all_checkers())


def _deploy(case: str, tmp_path: Path) -> Path:
    """Materialise one fixture (file or directory) in a fresh repo root."""
    root = tmp_path / "repo"
    (root / "src" / "repro").mkdir(parents=True)  # the root marker
    source = FIXTURES / case
    files = [source] if source.is_file() else sorted(source.glob("*.py"))
    for file in files:
        text = file.read_text(encoding="utf-8")
        header = text.splitlines()[0]
        assert header.startswith("# dest:"), f"{file} lacks a '# dest:' header"
        dest = root / header.split(":", 1)[1].strip()
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(text, encoding="utf-8")
    return root


def _lint(root: Path, strict: bool = True):
    result = run_lint([root], root=root)
    return result.reportable(strict)


def _cases(rule: str, kind: str) -> list[str]:
    prefix = rule.lower()
    return sorted(
        path.name for path in FIXTURES.glob(f"{prefix}_{kind}*")
    )


class TestFixtureCorpus:
    def test_every_rule_has_firing_clean_and_suppressed_fixtures(self):
        for rule in RULES:
            assert _cases(rule, "firing"), f"no firing fixture for {rule}"
            assert _cases(rule, "clean"), f"no clean fixture for {rule}"
            assert _cases(rule, "suppressed"), f"no suppressed fixture for {rule}"
        # The meta rule has no suppressed case: hygiene findings cannot be
        # suppressed (a suppression of a suppression could never go stale).
        assert _cases(META_RULE, "firing") and _cases(META_RULE, "clean")

    @pytest.mark.parametrize("rule", RULES)
    def test_firing_fixtures_fire(self, rule, tmp_path):
        for index, case in enumerate(_cases(rule, "firing")):
            root = _deploy(case, tmp_path / str(index))
            findings = _lint(root)
            fired = [finding for finding in findings if finding.rule == rule]
            assert fired, f"{case} produced no {rule} finding: {findings}"

    @pytest.mark.parametrize("rule", RULES)
    def test_clean_fixtures_are_silent(self, rule, tmp_path):
        for index, case in enumerate(_cases(rule, "clean")):
            root = _deploy(case, tmp_path / str(index))
            findings = _lint(root)
            assert findings == [], f"{case} is not clean: {findings}"

    @pytest.mark.parametrize("rule", RULES)
    def test_suppressed_fixtures_are_silent_even_in_strict_mode(self, rule, tmp_path):
        for index, case in enumerate(_cases(rule, "suppressed")):
            root = _deploy(case, tmp_path / str(index))
            findings = _lint(root, strict=True)
            assert findings == [], f"{case} left residue: {findings}"

    def test_meta_rule_fires_on_stale_and_reasonless_suppressions(self, tmp_path):
        root = _deploy("rl000_firing.py", tmp_path)
        strict = _lint(root, strict=True)
        messages = [finding.message for finding in strict]
        assert any("silences nothing" in message for message in messages)
        assert any("carries no reason" in message for message in messages)
        assert all(finding.rule == META_RULE for finding in strict)
        # Hygiene is strict-only: the default mode stays quiet.
        assert _lint(root, strict=False) == []

    def test_findings_carry_location_rule_and_hint(self, tmp_path):
        root = _deploy("rl001_firing.py", tmp_path)
        finding = _lint(root)[0]
        assert finding.path == "src/repro/monitor/example.py"
        assert finding.line > 0 and finding.rule == "RL001"
        rendered = finding.render()
        assert rendered.startswith("src/repro/monitor/example.py:")
        assert "RL001" in rendered and "[hint:" in rendered


class TestReasonlessSuppressionNeverSilences:
    def test_reasonless_suppression_does_not_hide_the_finding(self, tmp_path):
        root = _deploy("rl001_firing.py", tmp_path)
        target = root / "src/repro/monitor/example.py"
        text = target.read_text(encoding="utf-8").replace(
            "# guarded write outside `with self.lock`",
            "# repro-lint: disable=RL001",
        )
        target.write_text(text, encoding="utf-8")
        findings = _lint(root, strict=True)
        rules = {finding.rule for finding in findings}
        # The violation still fires AND the bare suppression is flagged.
        assert rules == {"RL001", META_RULE}


class TestDriver:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        root = _deploy("rl001_clean.py", tmp_path)
        assert main([str(root), "--strict"]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_exit_one_on_findings(self, tmp_path, capsys):
        root = _deploy("rl001_firing.py", tmp_path)
        assert main([str(root)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out

    def test_syntax_errors_are_findings_not_aborts(self, tmp_path, capsys):
        # One broken file must never hide the findings in the rest of the
        # tree: it yields a structured RL099 finding and the run goes on.
        root = _deploy("rl001_firing.py", tmp_path)
        (root / "src" / "repro" / "broken.py").write_text("def oops(:\n")
        assert main([str(root), "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert PARSE_RULE in out and "syntax error" in out
        assert "RL001" in out  # the healthy file was still linted

    def test_non_utf8_files_are_findings_not_aborts(self, tmp_path, capsys):
        root = _deploy("rl001_clean.py", tmp_path)
        (root / "src" / "repro" / "binary.py").write_bytes(b"data = '\xff\xfe'\n")
        assert main([str(root), "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert PARSE_RULE in out and "not valid UTF-8" in out

    def test_internal_errors_exit_two(self, tmp_path, capsys, monkeypatch):
        import repro.lint.driver as driver

        def boom(*args, **kwargs):
            raise RuntimeError("checker exploded")

        monkeypatch.setattr(driver, "run_lint", boom)
        assert main([str(tmp_path)]) == 2
        assert "internal error" in capsys.readouterr().err

    def test_json_output_is_a_findings_document(self, tmp_path, capsys):
        root = _deploy("rl005_firing.py", tmp_path)
        assert main([str(root), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["checked_files"] == 1
        assert document["rules"]  # the rule catalog rides along
        assert any(f["rule"] == "RL005" for f in document["findings"])
        for finding in document["findings"]:
            assert {"path", "line", "col", "rule", "message", "hint"} <= set(finding)

    def test_rules_filter_limits_the_run(self, tmp_path):
        # The RL005 firing fixture fires nothing when only RL001 runs.
        root = _deploy("rl005_firing.py", tmp_path)
        assert main([str(root), "--rules", "RL001"]) == 0

    def test_unknown_rule_id_is_a_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path), "--rules", "RL999"]) == 2
        assert "unknown rule ids" in capsys.readouterr().err

    def test_update_baseline_requires_baseline(self, tmp_path, capsys):
        assert main([str(tmp_path), "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_rule_ids_are_unique_and_titled(self):
        checkers = all_checkers()
        rules = [checker.rule for checker in checkers]
        assert len(set(rules)) == len(rules) >= 6
        assert all(checker.title for checker in checkers)


class TestRepositoryIsClean:
    def test_src_and_scripts_lint_clean_in_strict_mode(self):
        # The same invocation CI runs; a regression in the codebase (or an
        # over-eager checker) fails here first, with the rendered findings.
        repo = Path(__file__).resolve().parents[1]
        result = run_lint([repo / "src", repo / "scripts"], root=repo)
        reportable = result.reportable(strict=True)
        assert result.parse_errors == []
        assert reportable == [], "\n".join(f.render() for f in reportable)

    def test_checked_in_baseline_is_empty(self):
        # The ratchet starts from zero: the baseline exists (CI diffs
        # against it) but records no lingering findings.
        from repro.lint import load_baseline

        repo = Path(__file__).resolve().parents[1]
        baseline = repo / "lint-baseline.json"
        assert baseline.is_file()
        assert load_baseline(baseline) == {}


class TestFlowSensitiveRules:
    """The CFG/dataflow core sees paths, not patterns — one assertion per
    rule that a syntactic checker could not make."""

    def _messages(self, case: str, tmp_path: Path) -> list[str]:
        root = _deploy(case, tmp_path)
        return [finding.message for finding in _lint(root)]

    def test_rl007_reports_the_unreleased_paths(self, tmp_path):
        messages = self._messages("rl007_firing.py", tmp_path)
        # Both handles ARE closed somewhere; only path-sensitivity can tell
        # that the except arm / the slow branch still leaks them.
        assert sum("is not released on every path" in m for m in messages) == 2

    def test_rl008_reports_the_skipped_release_and_the_held_await(self, tmp_path):
        messages = self._messages("rl008_firing.py", tmp_path)
        assert any("is not released on every path" in m for m in messages)
        assert any("awaits while holding sync lock `self._lock`" in m for m in messages)

    def test_rl009_reports_path_dependent_dtype_drift(self, tmp_path):
        messages = self._messages("rl009_firing.py", tmp_path)
        assert any("depends on the path taken" in m for m in messages)
        assert any("dtype int64" in m for m in messages)
        assert any("every reaching definition" in m for m in messages)

    def test_rl010_reports_the_join_skipped_by_the_early_return(self, tmp_path):
        messages = self._messages("rl010_firing.py", tmp_path)
        assert any(
            "neither awaited nor cancelled on some paths" in m for m in messages
        )
        assert any("without asyncio.shield" in m for m in messages)

    def test_cfg_builder_survives_the_syntax_zoo(self, tmp_path):
        # Every construct the CFG models, in one function, analysed to
        # fixpoint without error (the result is irrelevant here).
        from repro.lint.cfg import build_cfg, function_defs

        source = '''
import asyncio

async def zoo(items, flag):
    while True:
        if flag:
            break
    else:
        flag = not flag
    for item in items:
        if item is None:
            continue
        try:
            async with make_lock() as guard:
                await guard.poke()
        except (ValueError, KeyError) as error:
            raise RuntimeError("wrapped") from error
        except Exception:
            return None
        else:
            flag = True
        finally:
            item.done = True
    match flag:
        case True:
            return 1
        case _:
            pass
    async for chunk in stream():
        with open("x") as fh, closing(fh) as duplicate:
            yield fh.read()
    return flag
'''
        tree = ast.parse(source)
        functions = function_defs(tree)
        assert len(functions) == 1
        cfg = build_cfg(functions[0])
        assert cfg.entry is not None and cfg.exit is not None

    def test_dedup_keeps_one_finding_per_site(self, tmp_path):
        # A finally body is duplicated per continuation in the CFG (normal
        # and exceptional); an offending statement inside one must still be
        # reported exactly once.
        root = tmp_path / "repo"
        target = root / "src" / "repro" / "runtime" / "example.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import asyncio\n"
            "import threading\n"
            "\n"
            "\n"
            "class Worker:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "\n"
            "    async def flush(self):\n"
            "        self._lock.acquire()\n"
            "        try:\n"
            "            self.count += 1\n"
            "        finally:\n"
            "            await asyncio.sleep(0)\n"
            "            self._lock.release()\n",
            encoding="utf-8",
        )
        findings = _lint(root)
        held_awaits = [
            f for f in findings
            if f.rule == "RL008" and "awaits while holding" in f.message
        ]
        assert len(held_awaits) == 1


class TestSuppressionEdgeCases:
    def _deploy_service(self, tmp_path: Path, body: str) -> Path:
        root = tmp_path / "repo"
        target = root / "src" / "repro" / "service" / "example.py"
        target.parent.mkdir(parents=True)
        target.write_text(body, encoding="utf-8")
        return root

    def test_two_rules_suppressed_on_one_line(self, tmp_path):
        # `open` in an async service handler fires RL002 (blocking) AND
        # RL007 (leak) on the same line; one comment silences both.
        root = self._deploy_service(
            tmp_path,
            "async def warm(path):\n"
            "    handle = open(path)  # repro-lint: disable=RL002(startup only),"
            "RL007(closed by shutdown hook)\n"
            "    handle.readline()\n",
        )
        assert _lint(root, strict=True) == []

    def test_empty_reason_neither_silences_nor_passes_hygiene(self, tmp_path):
        root = self._deploy_service(
            tmp_path,
            "import time\n\n\n"
            "async def slow():\n"
            "    time.sleep(1)  # repro-lint: disable=RL002()\n",
        )
        rules = {finding.rule for finding in _lint(root, strict=True)}
        assert rules == {"RL002", META_RULE}

    def test_stale_item_is_flagged_while_its_neighbour_still_silences(self, tmp_path):
        # RL002 fires and stays silenced; the RL005 item on the same
        # comment silences nothing and must be reported stale.
        root = self._deploy_service(
            tmp_path,
            "import time\n\n\n"
            "async def slow():\n"
            "    time.sleep(1)  # repro-lint: disable=RL002(bench harness),"
            "RL005(stale reason)\n",
        )
        strict = _lint(root, strict=True)
        assert [finding.rule for finding in strict] == [META_RULE]
        assert "RL005" in strict[0].message and "silences nothing" in strict[0].message


class TestAutofix:
    def test_time_sleep_fix_round_trips(self, tmp_path, capsys):
        root = tmp_path / "repo"
        target = root / "src" / "repro" / "service" / "example.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import asyncio\nimport time\n\n\n"
            "async def pause():\n"
            "    time.sleep(0.5)\n",
            encoding="utf-8",
        )
        assert main([str(root), "--no-cache"]) == 1
        assert "[fixable]" in capsys.readouterr().out
        assert main([str(root), "--no-cache", "--fix"]) == 0
        assert "await asyncio.sleep(0.5)" in target.read_text(encoding="utf-8")

    def test_shield_fix_round_trips(self, tmp_path, capsys):
        root = _deploy("rl010_firing.py", tmp_path)
        target = root / "src" / "repro" / "runtime" / "example.py"
        # The unjoined task has no mechanical fix; the unshielded await does.
        assert main([str(root), "--no-cache", "--fix", "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["fixes"]["total"] == 1
        text = target.read_text(encoding="utf-8")
        assert "await asyncio.shield(writer.wait_closed())" in text
        ast.parse(text)  # the rewrite is still valid Python

    def test_stale_suppression_fix_deletes_the_comment(self, tmp_path):
        root = _deploy("rl001_clean.py", tmp_path)
        target = root / "src" / "repro" / "monitor" / "example.py"
        text = target.read_text(encoding="utf-8")
        target.write_text(
            text + "\n# repro-lint: disable=RL001(long gone)\n", encoding="utf-8"
        )
        assert main([str(root), "--no-cache", "--strict", "--fix"]) == 0
        assert "repro-lint" not in target.read_text(encoding="utf-8")

    def test_partial_stale_rewrite_keeps_the_live_item(self, tmp_path):
        root = _deploy("rl002_suppressed.py", tmp_path)
        files = list((root / "src").rglob("*.py"))
        assert len(files) == 1
        target = files[0]
        text = target.read_text(encoding="utf-8")
        assert "disable=RL002(" in text
        # Graft a stale item onto the live comment.
        stale = text.replace("# repro-lint: disable=RL002(",
                             "# repro-lint: disable=RL005(never fired),RL002(", 1)
        target.write_text(stale, encoding="utf-8")
        assert main([str(root), "--no-cache", "--strict", "--fix"]) == 0
        fixed = target.read_text(encoding="utf-8")
        assert "RL005" not in fixed and "disable=RL002(" in fixed

    @pytest.mark.parametrize(
        "case", sorted(path.name for path in FIXTURES.glob("*_firing*"))
    )
    def test_fix_leaves_zero_fixable_findings(self, case, tmp_path):
        # The round-trip property: after --fix, a re-lint of the tree may
        # still report findings, but none of them may carry a fix.
        root = _deploy(case, tmp_path)
        main([str(root), "--no-cache", "--strict", "--fix"])
        for finding in _lint(root, strict=True):
            assert finding.fix is None, finding.render()
        for file in (root / "src").rglob("*.py"):
            ast.parse(file.read_text(encoding="utf-8"))


class TestIncrementalCache:
    def test_warm_run_replays_identical_findings(self, tmp_path, capsys):
        root = _deploy("rl001_firing.py", tmp_path)
        assert main([str(root), "--json"]) == 1
        cold = json.loads(capsys.readouterr().out)
        assert cold["cache"]["hits"] == 0 and cold["cache"]["misses"] == 1
        assert (root / ".repro-lint-cache.json").is_file()
        assert main([str(root), "--json"]) == 1
        warm = json.loads(capsys.readouterr().out)
        assert warm["findings"] == cold["findings"]
        assert warm["cache"]["hits"] == 1 and warm["cache"]["misses"] == 0
        assert warm["cache"]["crossfile_hit"]

    def test_editing_a_file_invalidates_only_it(self, tmp_path, capsys):
        root = _deploy("rl001_firing.py", tmp_path)
        second = root / "src" / "repro" / "monitor" / "other.py"
        second.write_text("VALUE = 1\n", encoding="utf-8")
        main([str(root), "--json"])
        capsys.readouterr()
        second.write_text("VALUE = 2\n", encoding="utf-8")
        assert main([str(root), "--json"]) == 1
        warm = json.loads(capsys.readouterr().out)
        assert warm["cache"]["hits"] == 1 and warm["cache"]["misses"] == 1

    def test_fixed_code_is_relinted_not_replayed(self, tmp_path, capsys):
        root = _deploy("rl001_firing.py", tmp_path)
        main([str(root), "--json"])
        capsys.readouterr()
        target = root / "src" / "repro" / "monitor" / "example.py"
        text = target.read_text(encoding="utf-8")
        target.write_text(
            text.replace(
                "        self.snapshot = None  # guarded write outside `with self.lock`",
                "        with self.lock:\n            self.snapshot = None",
            ),
            encoding="utf-8",
        )
        assert main([str(root), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["findings"] == []


class TestBaselineRatchet:
    def test_known_findings_pass_new_findings_fail(self, tmp_path, capsys):
        root = _deploy("rl001_firing.py", tmp_path)
        baseline = root / "lint-baseline.json"
        args = [str(root), "--no-cache", "--baseline", str(baseline)]
        assert main([*args, "--update-baseline"]) == 0
        capsys.readouterr()
        # The recorded finding no longer fails the run...
        assert main(args) == 0
        capsys.readouterr()
        # ...but a finding at a new location does, and is the only one shown.
        second = root / "src" / "repro" / "monitor" / "example2.py"
        second.write_text(
            (FIXTURES / "rl001_firing.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert main([*args, "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert all(f["path"].endswith("example2.py") for f in document["baseline"]["new"])
        assert all(f["path"].endswith("example.py") for f in document["baseline"]["known"])

    def test_fixed_findings_show_up_as_resolved(self, tmp_path, capsys):
        root = _deploy("rl001_firing.py", tmp_path)
        baseline = root / "lint-baseline.json"
        args = [str(root), "--no-cache", "--baseline", str(baseline)]
        assert main([*args, "--update-baseline"]) == 0
        capsys.readouterr()
        target = root / "src" / "repro" / "monitor" / "example.py"
        target.write_text(
            (FIXTURES / "rl001_clean.py").read_text(encoding="utf-8"), encoding="utf-8"
        )
        assert main([*args, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["baseline"]["resolved"]  # the ratchet can now shrink


class TestCliParity:
    """``repro.cli lint`` and ``python -m repro.lint`` share one argument
    set and one runner — same flags, same exit codes, same output."""

    def test_same_json_document_and_exit_code(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        root = _deploy("rl001_firing.py", tmp_path)
        argv = [str(root), "--strict", "--json", "--no-cache"]
        module_exit = main(argv)
        module_doc = json.loads(capsys.readouterr().out)
        cli_exit = cli_main(["lint", *argv])
        cli_doc = json.loads(capsys.readouterr().out)
        assert (module_exit, module_doc) == (cli_exit, cli_doc) == (1, cli_doc)

    def test_same_exit_code_on_clean_trees(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        root = _deploy("rl001_clean.py", tmp_path)
        argv = [str(root), "--strict", "--no-cache"]
        assert main(argv) == cli_main(["lint", *argv]) == 0
