"""Unit tests for HyperLogLog and its constants."""

from __future__ import annotations

import math

import pytest

from repro.sketches import HyperLogLog, alpha_m
from repro.sketches.hll import beta_m


class TestAlphaBeta:
    def test_alpha_reference_values(self):
        assert alpha_m(16) == pytest.approx(0.673)
        assert alpha_m(32) == pytest.approx(0.697)
        assert alpha_m(64) == pytest.approx(0.709)
        assert alpha_m(1024) == pytest.approx(0.7213 / (1 + 1.079 / 1024))

    def test_alpha_rejects_non_positive(self):
        with pytest.raises(ValueError):
            alpha_m(0)

    def test_beta_decreases_with_m(self):
        assert beta_m(16) > beta_m(64) > beta_m(1024)

    def test_analytic_standard_error_scales_with_sqrt_m(self):
        small = HyperLogLog(m=64).analytic_standard_error()
        large = HyperLogLog(m=1024).analytic_standard_error()
        assert large < small
        assert large == pytest.approx(beta_m(1024) / math.sqrt(1024))


class TestHyperLogLog:
    def test_empty_estimate_is_zero(self):
        assert HyperLogLog(m=64).estimate() == pytest.approx(0.0)

    def test_rejects_non_positive_m(self):
        with pytest.raises(ValueError):
            HyperLogLog(m=0)

    def test_duplicates_do_not_change_registers(self):
        sketch = HyperLogLog(m=64, seed=2)
        sketch.add("item")
        before = sketch.registers.values.copy()
        for _ in range(100):
            sketch.add("item")
        assert (sketch.registers.values == before).all()

    @pytest.mark.parametrize("true_cardinality", [100, 1_000, 20_000])
    def test_estimate_within_tolerance(self, true_cardinality):
        sketch = HyperLogLog(m=256, seed=5)
        for item in range(true_cardinality):
            sketch.add(item)
        relative_error = abs(sketch.estimate() - true_cardinality) / true_cardinality
        # 256 registers -> ~6.5% asymptotic RSE; allow 4 sigma.
        assert relative_error < 4 * sketch.analytic_standard_error()

    def test_small_range_uses_linear_counting(self):
        sketch = HyperLogLog(m=256, seed=1)
        for item in range(20):
            sketch.add(item)
        # With only 20 items the raw estimate is far below 2.5m, so the
        # estimate should be very close to exact thanks to linear counting.
        assert abs(sketch.estimate() - 20) < 3

    def test_memory_bits(self):
        assert HyperLogLog(m=128, width=5).memory_bits() == 640

    def test_merge_equals_union(self):
        a = HyperLogLog(m=128, seed=3)
        b = HyperLogLog(m=128, seed=3)
        for item in range(500):
            a.add(("a", item))
            b.add(("b", item))
        union = HyperLogLog(m=128, seed=3)
        for item in range(500):
            union.add(("a", item))
            union.add(("b", item))
        a.merge(b)
        assert a.estimate() == pytest.approx(union.estimate())

    def test_merge_rejects_mismatched_parameters(self):
        with pytest.raises(ValueError):
            HyperLogLog(m=64).merge(HyperLogLog(m=128))
