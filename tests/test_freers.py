"""Unit tests for FreeRS (paper Algorithm 2)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.exact import ExactCounter
from repro.core import FreeRS


class TestFreeRSBasics:
    def test_rejects_non_positive_registers(self):
        with pytest.raises(ValueError):
            FreeRS(0)

    def test_unseen_user_estimate_is_zero(self):
        assert FreeRS(1024).estimate("nobody") == 0.0

    def test_first_pair_increments_by_one(self):
        estimator = FreeRS(4096, seed=1)
        estimator.update("u", "d1")
        assert estimator.estimate("u") == pytest.approx(1.0)

    def test_duplicate_pairs_do_not_increase_estimate(self):
        estimator = FreeRS(4096, seed=2)
        estimator.update("u", "d")
        first = estimator.estimate("u")
        for _ in range(100):
            estimator.update("u", "d")
        assert estimator.estimate("u") == pytest.approx(first)

    def test_memory_bits_accounts_width(self):
        assert FreeRS(1000, register_width=5).memory_bits() == 5000
        assert FreeRS(1000, register_width=6).memory_bits() == 6000

    def test_update_returns_current_estimate(self):
        estimator = FreeRS(1 << 12, seed=3)
        returned = estimator.update("u", "x")
        assert returned == estimator.estimate("u")

    def test_change_probability_starts_at_one_and_decreases(self):
        estimator = FreeRS(512, seed=4)
        assert estimator.change_probability == pytest.approx(1.0)
        for item in range(2_000):
            estimator.update("u", item)
        assert estimator.change_probability < 0.9

    def test_counters_track_processed_and_sampled(self):
        estimator = FreeRS(1 << 12, seed=5)
        for item in range(100):
            estimator.update("u", item)
        assert estimator.pairs_processed == 100
        assert 0 < estimator.pairs_sampled <= 100


class TestFreeRSAccuracy:
    def test_estimates_track_exact_counts(self):
        estimator = FreeRS(1 << 14, seed=6)
        exact = ExactCounter()
        rng = random.Random(11)
        for _ in range(30_000):
            user = rng.randint(0, 30)
            item = rng.randint(0, 2_000)
            estimator.update(user, item)
            exact.update(user, item)
        for user, true_cardinality in exact.cardinalities().items():
            if true_cardinality >= 100:
                relative_error = abs(estimator.estimate(user) - true_cardinality) / true_cardinality
                assert relative_error < 0.3

    def test_unbiased_over_repetitions(self):
        # Theorem 2: E[n_hat] = n.
        true_cardinality, repetitions = 200, 30
        total = 0.0
        for seed in range(repetitions):
            estimator = FreeRS(1 << 11, seed=seed)
            for item in range(true_cardinality):
                estimator.update("u", item)
            for item in range(500):
                estimator.update("other", ("o", item))
            total += estimator.estimate("u")
        mean_estimate = total / repetitions
        assert abs(mean_estimate - true_cardinality) / true_cardinality < 0.12

    def test_total_cardinality_estimate(self):
        estimator = FreeRS(1 << 13, seed=7)
        exact = ExactCounter()
        for user in range(20):
            for item in range(100):
                estimator.update(user, item)
                exact.update(user, item)
        estimate = estimator.total_cardinality_estimate()
        assert abs(estimate - exact.total_cardinality) / exact.total_cardinality < 0.15

    def test_large_cardinality_beyond_bit_sharing_range(self):
        # With only 512 registers (2560 bits), FreeRS should still track a
        # cardinality in the tens of thousands — far beyond the M ln M limit
        # an equally-sized bit array would have.
        estimator = FreeRS(512, seed=8)
        true_cardinality = 50_000
        for item in range(true_cardinality):
            estimator.update("heavy", item)
        relative_error = abs(estimator.estimate("heavy") - true_cardinality) / true_cardinality
        assert relative_error < 0.35

    def test_handles_register_saturation_gracefully(self):
        # Tiny register width saturates quickly; estimates must stay finite.
        estimator = FreeRS(64, register_width=3, seed=9)
        for item in range(10_000):
            estimator.update("u", item)
        assert estimator.estimate("u") > 0
        assert estimator.change_probability > 0
