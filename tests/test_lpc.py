"""Unit tests for Linear Probabilistic Counting."""

from __future__ import annotations

import math

import pytest

from repro.sketches import LinearProbabilisticCounter


class TestLPCBasics:
    def test_empty_estimate_is_zero(self):
        assert LinearProbabilisticCounter(256).estimate() == pytest.approx(0.0)

    def test_rejects_non_positive_m(self):
        with pytest.raises(ValueError):
            LinearProbabilisticCounter(0)

    def test_duplicates_do_not_change_estimate(self):
        sketch = LinearProbabilisticCounter(512, seed=1)
        for _ in range(50):
            sketch.add("same-item")
        assert sketch.estimate() == pytest.approx(
            -512 * math.log(511 / 512), rel=1e-9
        )

    def test_add_returns_change_flag(self):
        sketch = LinearProbabilisticCounter(128)
        assert sketch.add("x") is True
        assert sketch.add("x") is False

    def test_memory_bits(self):
        assert LinearProbabilisticCounter(1024).memory_bits() == 1024


class TestLPCAccuracy:
    @pytest.mark.parametrize("true_cardinality", [50, 200, 800])
    def test_estimate_within_tolerance(self, true_cardinality):
        sketch = LinearProbabilisticCounter(4096, seed=3)
        for item in range(true_cardinality):
            sketch.add(item)
        estimate = sketch.estimate()
        assert abs(estimate - true_cardinality) / true_cardinality < 0.12

    def test_saturation_pins_at_max(self):
        sketch = LinearProbabilisticCounter(16, seed=2)
        for item in range(10_000):
            sketch.add(item)
        assert sketch.is_saturated()
        assert sketch.estimate() == pytest.approx(sketch.max_estimate)

    def test_max_estimate_is_m_ln_m(self):
        sketch = LinearProbabilisticCounter(100)
        assert sketch.max_estimate == pytest.approx(100 * math.log(100))

    def test_analytic_error_model_positive_and_growing(self):
        sketch = LinearProbabilisticCounter(256)
        assert sketch.analytic_variance(100) > 0
        assert sketch.analytic_variance(400) > sketch.analytic_variance(100)
        assert sketch.analytic_standard_error(0) == 0.0

    def test_empirical_error_matches_analytic_order(self):
        # Average over repetitions: the empirical RSE should be within a small
        # factor of the analytic standard error.
        m, n, repetitions = 1024, 500, 20
        errors = []
        for seed in range(repetitions):
            sketch = LinearProbabilisticCounter(m, seed=seed)
            for item in range(n):
                sketch.add((seed, item))
            errors.append((sketch.estimate() - n) / n)
        empirical_rse = math.sqrt(sum(error**2 for error in errors) / repetitions)
        analytic = sketch.analytic_standard_error(n)
        assert empirical_rse < 3 * analytic


class TestLPCMerge:
    def test_merge_equals_union(self):
        a = LinearProbabilisticCounter(512, seed=9)
        b = LinearProbabilisticCounter(512, seed=9)
        for item in range(100):
            a.add(("a", item))
        for item in range(100):
            b.add(("b", item))
        union = LinearProbabilisticCounter(512, seed=9)
        for item in range(100):
            union.add(("a", item))
            union.add(("b", item))
        a.merge(b)
        assert a.estimate() == pytest.approx(union.estimate())

    def test_merge_rejects_mismatched_parameters(self):
        a = LinearProbabilisticCounter(128, seed=0)
        b = LinearProbabilisticCounter(256, seed=0)
        with pytest.raises(ValueError):
            a.merge(b)
