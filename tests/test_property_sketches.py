"""Property-based tests (hypothesis) for the sketch substrates and sketches.

These tests check structural invariants that must hold for *every* input, not
just the fixtures: duplicate insensitivity, order insensitivity of sketch
state, incremental bookkeeping consistency, and monotonicity.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sketches import (
    BitArray,
    HyperLogLog,
    HyperLogLogPlusPlus,
    LinearProbabilisticCounter,
    RegisterArray,
)

# Keep hypothesis example counts moderate: every example replays a stream.
_SETTINGS = settings(max_examples=40, deadline=None)

items_strategy = st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=300)


class TestBitArrayProperties:
    @_SETTINGS
    @given(indices=st.lists(st.integers(min_value=0, max_value=255), max_size=400))
    def test_incremental_ones_matches_recount(self, indices):
        bits = BitArray(256)
        for index in indices:
            bits.set_bit(index)
        assert bits.ones == bits.recount()
        assert bits.ones == len(set(indices))

    @_SETTINGS
    @given(indices=st.lists(st.integers(min_value=0, max_value=127), max_size=200))
    def test_ones_plus_zeros_is_size(self, indices):
        bits = BitArray(128)
        for index in indices:
            bits.set_bit(index)
        assert bits.ones + bits.zeros == 128


class TestRegisterArrayProperties:
    @_SETTINGS
    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=1, max_value=40),
            ),
            max_size=300,
        )
    )
    def test_incremental_harmonic_sum_matches_recompute(self, updates):
        registers = RegisterArray(64, width=5)
        for index, rank in updates:
            registers.update(index, rank)
        assert abs(registers.harmonic_sum - registers.recompute_harmonic_sum()) < 1e-9
        assert registers.zeros == registers.recount_zeros()

    @_SETTINGS
    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=31),
                st.integers(min_value=1, max_value=100),
            ),
            max_size=200,
        )
    )
    def test_registers_never_decrease(self, updates):
        registers = RegisterArray(32, width=5)
        previous = [0] * 32
        for index, rank in updates:
            registers.update(index, rank)
            current = [registers.get(i) for i in range(32)]
            assert all(c >= p for c, p in zip(current, previous))
            previous = current


class TestSketchProperties:
    @_SETTINGS
    @given(items=items_strategy)
    def test_lpc_duplicate_insensitive(self, items):
        once = LinearProbabilisticCounter(512, seed=1)
        twice = LinearProbabilisticCounter(512, seed=1)
        for item in items:
            once.add(item)
            twice.add(item)
            twice.add(item)
        assert once.estimate() == twice.estimate()

    @_SETTINGS
    @given(items=items_strategy)
    def test_lpc_order_insensitive(self, items):
        forward = LinearProbabilisticCounter(512, seed=2)
        backward = LinearProbabilisticCounter(512, seed=2)
        for item in items:
            forward.add(item)
        for item in reversed(items):
            backward.add(item)
        assert forward.estimate() == backward.estimate()

    @_SETTINGS
    @given(items=items_strategy)
    def test_hll_duplicate_and_order_insensitive(self, items):
        reference = HyperLogLog(m=64, seed=3)
        shuffled = HyperLogLog(m=64, seed=3)
        for item in items:
            reference.add(item)
        for item in reversed(items):
            shuffled.add(item)
            shuffled.add(item)
        assert reference.estimate() == shuffled.estimate()

    @_SETTINGS
    @given(items=items_strategy)
    def test_hll_estimate_monotone_in_insertions(self, items):
        sketch = HyperLogLog(m=64, seed=4)
        previous_estimate = 0.0
        for item in items:
            sketch.add(item)
            estimate = sketch.estimate()
            assert estimate >= previous_estimate - 1e-9
            previous_estimate = estimate

    @_SETTINGS
    @given(items=items_strategy)
    def test_hllpp_sparse_dense_consistency(self, items):
        sparse = HyperLogLogPlusPlus(m=128, seed=5, sparse=True)
        dense = HyperLogLogPlusPlus(m=128, seed=5, sparse=False)
        for item in items:
            sparse.add(item)
            dense.add(item)
        # Both representations must agree (within float noise) on the estimate.
        assert abs(sparse.estimate() - dense.estimate()) < max(
            1e-6, 0.02 * max(sparse.estimate(), 1.0)
        )

    @_SETTINGS
    @given(
        left=items_strategy,
        right=items_strategy,
    )
    def test_hll_merge_commutes(self, left, right):
        a = HyperLogLog(m=64, seed=6)
        b = HyperLogLog(m=64, seed=6)
        for item in left:
            a.add(("L", item))
        for item in right:
            b.add(("R", item))
        ab = HyperLogLog(m=64, seed=6)
        ba = HyperLogLog(m=64, seed=6)
        for item in left:
            ab.add(("L", item))
            ba.add(("L", item))
        for item in right:
            ab.add(("R", item))
            ba.add(("R", item))
        a.merge(b)
        assert a.estimate() == ab.estimate() == ba.estimate()
