"""Unit tests for the packed register-array substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketches.registers import RegisterArray


class TestRegisterArrayBasics:
    def test_starts_all_zero(self):
        registers = RegisterArray(64, width=5)
        assert registers.zeros == 64
        assert registers.harmonic_sum == pytest.approx(64.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RegisterArray(0)
        with pytest.raises(ValueError):
            RegisterArray(10, width=0)
        with pytest.raises(ValueError):
            RegisterArray(10, width=9)

    def test_update_raises_register(self):
        registers = RegisterArray(8)
        assert registers.update(3, 4) is True
        assert registers.get(3) == 4

    def test_update_ignores_smaller_rank(self):
        registers = RegisterArray(8)
        registers.update(2, 5)
        assert registers.update(2, 3) is False
        assert registers.get(2) == 5

    def test_update_saturates_at_width(self):
        registers = RegisterArray(4, width=5)
        registers.update(0, 99)
        assert registers.get(0) == 31

    def test_index_range_checks(self):
        registers = RegisterArray(4)
        with pytest.raises(IndexError):
            registers.update(4, 1)
        with pytest.raises(IndexError):
            registers.get(-1)

    def test_len_and_memory(self):
        registers = RegisterArray(100, width=5)
        assert len(registers) == 100
        assert registers.memory_bits() == 500


class TestRegisterArrayAccounting:
    def test_harmonic_sum_matches_recompute(self):
        registers = RegisterArray(256, width=5)
        rng = np.random.default_rng(4)
        for _ in range(2000):
            registers.update(int(rng.integers(0, 256)), int(rng.geometric(0.5)))
        assert registers.harmonic_sum == pytest.approx(registers.recompute_harmonic_sum())

    def test_zero_count_matches_recount(self):
        registers = RegisterArray(128)
        rng = np.random.default_rng(5)
        for _ in range(300):
            registers.update(int(rng.integers(0, 128)), int(rng.geometric(0.5)))
        assert registers.zeros == registers.recount_zeros()

    def test_clear(self):
        registers = RegisterArray(16)
        registers.update(1, 3)
        registers.clear()
        assert registers.zeros == 16
        assert registers.harmonic_sum == pytest.approx(16.0)

    def test_get_many(self):
        registers = RegisterArray(32)
        registers.update(0, 2)
        registers.update(31, 7)
        values = registers.get_many(np.array([0, 1, 31]))
        assert values.tolist() == [2, 0, 7]

    def test_get_many_range_check(self):
        registers = RegisterArray(8)
        with pytest.raises(IndexError):
            registers.get_many(np.array([7, 8]))

    def test_values_view_reflects_updates(self):
        registers = RegisterArray(4)
        registers.update(2, 6)
        assert registers.values[2] == 6
