"""Bit-for-bit scalar/batch equivalence of the engine's vectorised paths.

The engine's contract is strict: for every estimator, replaying a stream
through ``update_batch`` (in any chunking) leaves the estimator in exactly
the state the scalar ``update`` loop produces — same cached estimates (to
the last bit), same shared-array contents, same incremental bookkeeping.
These tests enforce that for the four shared-memory methods and the two
per-user baselines on randomized streams.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import CSE, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.core import FreeBS, FreeRS
from repro.engine import EncodedBatch


def _random_pairs(count, n_users=50, n_items=600, seed=0):
    rng = random.Random(seed)
    return [(rng.randint(0, n_users), rng.randint(0, n_items)) for _ in range(count)]


def _drive_scalar(estimator, pairs):
    for user, item in pairs:
        estimator.update(user, item)
    return estimator


def _drive_batch(estimator, pairs, chunk):
    for start in range(0, len(pairs), chunk):
        estimator.update_batch(pairs[start : start + chunk])
    return estimator


FACTORIES = {
    # Deliberately non-power-of-two sizes: the scalar increments divide by
    # raw counts, so power-of-two sizes would mask rounding differences.
    "FreeBS": lambda: FreeBS(3000, seed=5),
    "FreeRS": lambda: FreeRS(700, seed=5),
    "CSE": lambda: CSE(5000, virtual_size=96, seed=5),
    "vHLL": lambda: VirtualHLL(1900, virtual_size=96, seed=5),
    "LPC": lambda: PerUserLPC(1 << 15, expected_users=50, seed=5),
    "HLL++": lambda: PerUserHLLPP(1 << 15, expected_users=50, seed=5),
}


class TestScalarBatchEquivalence:
    @pytest.mark.parametrize("method", sorted(FACTORIES))
    @pytest.mark.parametrize("chunk", [1, 17, 500, 10_000])
    def test_estimates_bit_identical(self, method, chunk):
        pairs = _random_pairs(2_000, seed=chunk)
        scalar = _drive_scalar(FACTORIES[method](), pairs)
        batch = _drive_batch(FACTORIES[method](), pairs, chunk)
        assert batch.estimates() == scalar.estimates()

    def test_freebs_internal_state_matches(self):
        pairs = _random_pairs(3_000, seed=1)
        scalar = _drive_scalar(FACTORIES["FreeBS"](), pairs)
        batch = _drive_batch(FACTORIES["FreeBS"](), pairs, 129)
        assert scalar._bits.to_numpy().tolist() == batch._bits.to_numpy().tolist()
        assert scalar.change_probability == batch.change_probability
        assert scalar.pairs_processed == batch.pairs_processed
        assert scalar.pairs_sampled == batch.pairs_sampled

    def test_freers_internal_state_matches(self):
        pairs = _random_pairs(3_000, seed=2)
        scalar = _drive_scalar(FACTORIES["FreeRS"](), pairs)
        batch = _drive_batch(FACTORIES["FreeRS"](), pairs, 129)
        assert scalar._registers.values.tolist() == batch._registers.values.tolist()
        # The incrementally-maintained harmonic sum must follow the exact
        # scalar floating-point trajectory, not just approximate it.
        assert scalar._registers.harmonic_sum == batch._registers.harmonic_sum
        assert scalar.pairs_sampled == batch.pairs_sampled

    def test_cse_shared_array_and_fresh_estimates_match(self):
        pairs = _random_pairs(3_000, seed=3)
        scalar = _drive_scalar(FACTORIES["CSE"](), pairs)
        batch = _drive_batch(FACTORIES["CSE"](), pairs, 129)
        assert scalar._bits.to_numpy().tolist() == batch._bits.to_numpy().tolist()
        for user in {user for user, _ in pairs}:
            assert scalar.estimate_fresh(user) == batch.estimate_fresh(user)

    def test_vhll_shared_array_and_fresh_estimates_match(self):
        pairs = _random_pairs(3_000, seed=4)
        scalar = _drive_scalar(FACTORIES["vHLL"](), pairs)
        batch = _drive_batch(FACTORIES["vHLL"](), pairs, 129)
        assert scalar._registers.values.tolist() == batch._registers.values.tolist()
        assert scalar._registers.harmonic_sum == batch._registers.harmonic_sum
        for user in {user for user, _ in pairs}:
            assert scalar.estimate_fresh(user) == batch.estimate_fresh(user)

    def test_per_user_sketch_allocation_matches(self):
        pairs = _random_pairs(2_000, seed=5)
        scalar = _drive_scalar(FACTORIES["LPC"](), pairs)
        batch = _drive_batch(FACTORIES["LPC"](), pairs, 129)
        assert scalar.users_allocated == batch.users_allocated
        assert scalar.memory_bits() == batch.memory_bits()

    def test_string_keys_supported(self):
        pairs = [(f"user-{i % 7}", f"item-{i % 40}") for i in range(500)]
        scalar = _drive_scalar(CSE(4000, virtual_size=64, seed=1), pairs)
        batch = _drive_batch(CSE(4000, virtual_size=64, seed=1), pairs, 37)
        assert batch.estimates() == scalar.estimates()

    def test_register_saturation_handled(self):
        scalar = VirtualHLL(600, virtual_size=32, register_width=3, seed=3)
        batch = VirtualHLL(600, virtual_size=32, register_width=3, seed=3)
        pairs = [("u", item) for item in range(4_000)]
        _drive_scalar(scalar, pairs)
        _drive_batch(batch, pairs, 333)
        assert batch.estimates() == scalar.estimates()

    def test_empty_batch_is_noop(self):
        for factory in FACTORIES.values():
            estimator = factory()
            estimator.update_batch([])
            assert estimator.estimates() == {}

    def test_update_encoded_empty_batch_is_noop(self):
        estimator = FACTORIES["vHLL"]()
        estimator.update_encoded(
            EncodedBatch.from_int_arrays(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
        )
        assert estimator.estimates() == {}


class TestBatchProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=120),
            ),
            max_size=150,
        ),
        chunk=st.integers(min_value=1, max_value=40),
    )
    def test_cse_batch_equals_scalar(self, pairs, chunk):
        scalar = _drive_scalar(CSE(2048, virtual_size=32, seed=13), pairs)
        batch = _drive_batch(CSE(2048, virtual_size=32, seed=13), pairs, chunk)
        assert batch.estimates() == scalar.estimates()

    @settings(max_examples=20, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=120),
            ),
            max_size=150,
        ),
        chunk=st.integers(min_value=1, max_value=40),
    )
    def test_vhll_batch_equals_scalar(self, pairs, chunk):
        scalar = _drive_scalar(VirtualHLL(900, virtual_size=32, seed=13), pairs)
        batch = _drive_batch(VirtualHLL(900, virtual_size=32, seed=13), pairs, chunk)
        assert batch.estimates() == scalar.estimates()

    @settings(max_examples=20, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=-(2**70), max_value=2**70),
                st.integers(min_value=-(2**70), max_value=2**70),
            ),
            max_size=100,
        ),
        chunk=st.integers(min_value=1, max_value=40),
    )
    def test_freebs_batch_equals_scalar_on_extreme_ids(self, pairs, chunk):
        scalar = _drive_scalar(FreeBS(1 << 10, seed=13), pairs)
        batch = _drive_batch(FreeBS(1 << 10, seed=13), pairs, chunk)
        assert batch.estimates() == scalar.estimates()
