"""Tests for the sharding layer: routing, equivalence and mergeable state.

The property the layer promises (and the acceptance criterion of the engine
refactor): a sharded run over a stream produces, for every user, exactly
the estimate an *unsharded* estimator of the same configuration would
produce if it were fed only the pairs routed to that user's shard — and
workers that own disjoint shard sets can be merged into a state
bit-identical to a single-process run.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import VirtualHLL
from repro.core import FreeBS, FreeRS
from repro.engine import ShardedEstimator


def _random_pairs(count, n_users=60, n_items=400, seed=0):
    rng = random.Random(seed)
    return [(rng.randint(0, n_users), rng.randint(0, n_items)) for _ in range(count)]


def _unsharded_reference(sharded, factory, pairs):
    """Run one unsharded estimator per shard over its routed sub-stream."""
    references = [factory(k) for k in range(sharded.num_shards)]
    for user, item in pairs:
        references[sharded.shard_of(user)].update(user, item)
    combined = {}
    for reference in references:
        combined.update(reference.estimates())
    return combined


class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_sharded_equals_unsharded_per_shard_runs(self, shards):
        pairs = _random_pairs(3_000, seed=shards)
        factory = lambda k: FreeBS(2048, seed=9)  # noqa: E731
        sharded = ShardedEstimator(factory, shards=shards, seed=21)
        for start in range(0, len(pairs), 311):
            sharded.update_batch(pairs[start : start + 311])
        assert sharded.estimates() == _unsharded_reference(sharded, factory, pairs)

    def test_single_shard_equals_plain_estimator(self):
        pairs = _random_pairs(2_000, seed=7)
        plain = FreeRS(700, seed=3)
        for user, item in pairs:
            plain.update(user, item)
        sharded = ShardedEstimator(lambda k: FreeRS(700, seed=3), shards=1, seed=5)
        sharded.update_batch(pairs)
        assert sharded.estimates() == plain.estimates()

    def test_scalar_and_batch_routing_agree(self):
        pairs = _random_pairs(2_000, seed=8)
        factory = lambda k: VirtualHLL(1900, virtual_size=64, seed=2)  # noqa: E731
        by_scalar = ShardedEstimator(factory, shards=3, seed=11)
        by_batch = ShardedEstimator(factory, shards=3, seed=11)
        for user, item in pairs:
            by_scalar.update(user, item)
        for start in range(0, len(pairs), 173):
            by_batch.update_batch(pairs[start : start + 173])
        assert by_scalar.estimates() == by_batch.estimates()
        assert by_scalar.shard_pair_counts == by_batch.shard_pair_counts

    def test_estimate_routes_to_owner_shard(self):
        pairs = _random_pairs(1_000, seed=9)
        sharded = ShardedEstimator(lambda k: FreeBS(2048, seed=1), shards=4, seed=2)
        sharded.update_batch(pairs)
        combined = sharded.estimates()
        for user in {user for user, _ in pairs}:
            assert sharded.estimate(user) == combined[user]
        assert sharded.estimate("never-seen") == 0.0

    def test_memory_is_summed_across_shards(self):
        sharded = ShardedEstimator(lambda k: FreeBS(2048, seed=1), shards=4, seed=2)
        assert sharded.memory_bits() == 4 * 2048

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            ShardedEstimator(lambda k: FreeBS(64), shards=0)

    def test_factory_rejects_budget_too_small_for_shards(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.estimators import build_estimators

        config = ExperimentConfig(memory_bits=256)
        with pytest.raises(ValueError, match="too small"):
            build_estimators(config, expected_users=10, methods=["FreeBS"], shards=8)

    def test_factory_sharded_memory_totals_the_budget(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.estimators import build_estimators

        config = ExperimentConfig(memory_bits=1 << 16)
        built = build_estimators(config, expected_users=10, methods=["FreeBS"], shards=4)
        assert built["FreeBS"].memory_bits() == 1 << 16


class TestMerge:
    def _split_run(self, pairs, shards, owned_by_first):
        factory = lambda k: FreeBS(2048, seed=9)  # noqa: E731
        full = ShardedEstimator(factory, shards=shards, seed=4)
        full.update_batch(pairs)
        worker_a = ShardedEstimator(factory, shards=shards, seed=4)
        worker_b = ShardedEstimator(factory, shards=shards, seed=4)
        worker_a.update_batch(
            [(u, i) for u, i in pairs if full.shard_of(u) in owned_by_first]
        )
        worker_b.update_batch(
            [(u, i) for u, i in pairs if full.shard_of(u) not in owned_by_first]
        )
        return full, worker_a, worker_b

    def test_merge_of_disjoint_workers_equals_single_run(self):
        pairs = _random_pairs(3_000, seed=10)
        full, worker_a, worker_b = self._split_run(pairs, shards=4, owned_by_first={0, 1})
        merged = worker_a.merge(worker_b)
        assert merged is worker_a
        assert merged.estimates() == full.estimates()
        assert merged.shard_pair_counts == full.shard_pair_counts

    def test_merge_is_independent_of_later_source_updates(self):
        # A worker that keeps streaming after being merged must not mutate
        # the coordinator's merged state (shards are adopted by deep copy).
        pairs = _random_pairs(1_000, seed=12)
        full, worker_a, worker_b = self._split_run(pairs, shards=4, owned_by_first={0, 1})
        merged = worker_a.merge(worker_b)
        snapshot = merged.estimates()
        for user, item in _random_pairs(500, seed=13):
            worker_b.update(user, item)
        assert merged.estimates() == snapshot

    def test_merge_rejects_overlapping_shards(self):
        pairs = _random_pairs(500, seed=11)
        factory = lambda k: FreeBS(2048, seed=9)  # noqa: E731
        worker_a = ShardedEstimator(factory, shards=2, seed=4)
        worker_b = ShardedEstimator(factory, shards=2, seed=4)
        worker_a.update_batch(pairs)
        worker_b.update_batch(pairs)
        with pytest.raises(ValueError, match="disjoint"):
            worker_a.merge(worker_b)

    def test_merge_rejects_mismatched_configuration(self):
        factory = lambda k: FreeBS(2048, seed=9)  # noqa: E731
        base = ShardedEstimator(factory, shards=2, seed=4)
        with pytest.raises(ValueError):
            base.merge(ShardedEstimator(factory, shards=3, seed=4))
        with pytest.raises(ValueError):
            base.merge(ShardedEstimator(factory, shards=2, seed=5))
        with pytest.raises(TypeError):
            base.merge(FreeBS(2048, seed=9))


class TestShardedProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=25),
                st.integers(min_value=0, max_value=150),
            ),
            max_size=200,
        ),
        shards=st.integers(min_value=1, max_value=6),
    )
    def test_sharded_then_merged_equals_unsharded(self, pairs, shards):
        factory = lambda k: FreeBS(1024, seed=13)  # noqa: E731
        sharded = ShardedEstimator(factory, shards=shards, seed=3)
        sharded.update_batch(pairs)
        assert sharded.estimates() == _unsharded_reference(sharded, factory, pairs)
