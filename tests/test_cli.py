"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.streams.io import read_edge_file, write_edge_file


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_experiment_arguments(self):
        args = build_parser().parse_args(["run-experiment", "table1", "--preset", "quick"])
        assert args.experiment == "table1"
        assert args.preset == "quick"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-experiment", "figure99"])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate", "some.tsv"])
        assert args.method == "FreeRS"
        assert args.top == 10


class TestCommands:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output
        assert "figure5" in output

    def test_generate_dataset_and_estimate(self, tmp_path, capsys):
        path = tmp_path / "chicago.tsv"
        assert main(["generate-dataset", "chicago", str(path), "--scale", "0.02"]) == 0
        assert path.exists()
        stream = read_edge_file(path)
        assert len(stream) > 100

        assert main(["estimate", str(path), "--method", "FreeBS", "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "estimated_cardinality" in output

    def test_run_experiment_table1_with_csv(self, tmp_path, capsys, monkeypatch):
        # Patch the quick preset to an even smaller configuration so the CLI
        # test stays fast.
        from repro.experiments.config import ExperimentConfig

        tiny = ExperimentConfig(
            dataset_scale=0.02, memory_bits=1 << 14, virtual_size=64, datasets=["chicago"]
        )
        monkeypatch.setattr(ExperimentConfig, "quick", classmethod(lambda cls: tiny))
        csv_path = tmp_path / "table1.csv"
        assert main(["run-experiment", "table1", "--preset", "quick", "--csv", str(csv_path)]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert csv_path.exists()

    def test_estimate_rejects_unknown_method(self, tmp_path):
        path = tmp_path / "edges.tsv"
        write_edge_file(path, [(1, 2)])
        with pytest.raises(SystemExit):
            main(["estimate", str(path), "--method", "NotAMethod"])
