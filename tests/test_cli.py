"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.streams.io import read_edge_file, write_edge_file


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_experiment_arguments(self):
        args = build_parser().parse_args(["run-experiment", "table1", "--preset", "quick"])
        assert args.experiment == "table1"
        assert args.preset == "quick"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-experiment", "figure99"])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate", "some.tsv"])
        assert args.method == "FreeRS"
        assert args.top == 10

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "some.tsv"])
        assert args.port == 0  # pick a free port, announced on stdout
        assert args.refresh_every == 1
        assert args.host == "127.0.0.1"
        assert args.resume is False

    def test_serve_without_stream_or_resume_rejected(self):
        with pytest.raises(SystemExit, match="needs a stream"):
            main(["serve"])

    def test_serve_epoch_mode_required_for_fresh_monitor(self, tmp_path):
        path = tmp_path / "edges.tsv"
        write_edge_file(path, [(1, 2), (1, 3)])
        with pytest.raises(SystemExit, match="epoch-pairs"):
            main(["serve", str(path)])


class TestCommands:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output
        assert "figure5" in output

    def test_generate_dataset_and_estimate(self, tmp_path, capsys):
        path = tmp_path / "chicago.tsv"
        assert main(["generate-dataset", "chicago", str(path), "--scale", "0.02"]) == 0
        assert path.exists()
        stream = read_edge_file(path)
        assert len(stream) > 100

        assert main(["estimate", str(path), "--method", "FreeBS", "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "estimated_cardinality" in output

    def test_run_experiment_table1_with_csv(self, tmp_path, capsys, monkeypatch):
        # Patch the quick preset to an even smaller configuration so the CLI
        # test stays fast.
        from repro.experiments.config import ExperimentConfig

        tiny = ExperimentConfig(
            dataset_scale=0.02, memory_bits=1 << 14, virtual_size=64, datasets=["chicago"]
        )
        monkeypatch.setattr(ExperimentConfig, "quick", classmethod(lambda cls: tiny))
        csv_path = tmp_path / "table1.csv"
        assert main(["run-experiment", "table1", "--preset", "quick", "--csv", str(csv_path)]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert csv_path.exists()

    def test_estimate_rejects_unknown_method(self, tmp_path):
        path = tmp_path / "edges.tsv"
        write_edge_file(path, [(1, 2)])
        with pytest.raises(SystemExit):
            main(["estimate", str(path), "--method", "NotAMethod"])


class TestRunCommand:
    def _dataset(self, tmp_path):
        path = tmp_path / "chicago.tsv"
        assert main(["generate-dataset", "chicago", str(path), "--scale", "0.02"]) == 0
        return path

    def test_run_parallel_matches_single_process_json(self, tmp_path, capsys):
        path = self._dataset(tmp_path)
        single_json = tmp_path / "single.json"
        parallel_json = tmp_path / "parallel.json"
        base = ["run", str(path), "--method", "vHLL", "--memory-bits", str(1 << 16)]
        assert main(base + ["--workers", "1", "--shards", "2", "--json", str(single_json)]) == 0
        assert main(base + ["--workers", "2", "--json", str(parallel_json)]) == 0
        assert single_json.read_text() == parallel_json.read_text()
        output = capsys.readouterr().out
        assert "workers=2 shards=2" in output
        assert "estimated_cardinality" in output

    def test_run_rejects_fewer_shards_than_workers(self, tmp_path):
        path = self._dataset(tmp_path)
        with pytest.raises(SystemExit):
            main(["run", str(path), "--workers", "4", "--shards", "2"])


class TestMonitorCommand:
    def _dataset(self, tmp_path):
        path = tmp_path / "chicago.tsv"
        assert main(["generate-dataset", "chicago", str(path), "--scale", "0.02"]) == 0
        return path

    def test_monitor_emits_windows_and_alerts(self, tmp_path, capsys):
        import json

        path = self._dataset(tmp_path)
        capsys.readouterr()
        feed_path = tmp_path / "feed.jsonl"
        assert (
            main(
                [
                    "monitor",
                    str(path),
                    "--method",
                    "FreeRS",
                    "--memory-bits",
                    str(1 << 15),
                    "--epoch-pairs",
                    "500",
                    "--window",
                    "3",
                    "--out",
                    str(feed_path),
                ]
            )
            == 0
        )
        lines = [json.loads(line) for line in feed_path.read_text().splitlines()]
        kinds = {record["type"] for record in lines}
        assert {"window", "alert", "summary"} <= kinds
        stdout_lines = capsys.readouterr().out.strip().splitlines()
        assert len(stdout_lines) == len(lines)

    def test_monitor_snapshot_and_resume(self, tmp_path, capsys):
        path = self._dataset(tmp_path)
        snapshot_dir = tmp_path / "snaps"
        args = [
            "monitor",
            str(path),
            "--epoch-pairs",
            "400",
            "--memory-bits",
            str(1 << 14),
            "--snapshot-dir",
            str(snapshot_dir),
            "--snapshot-every",
            "2",
        ]
        assert main(args) == 0
        assert list(snapshot_dir.glob("snapshot-*.json"))
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        output = capsys.readouterr().out
        assert "# resumed from" in output

    def test_monitor_resume_without_snapshots_exits_with_clear_error(self, tmp_path):
        path = self._dataset(tmp_path)
        snapshot_dir = tmp_path / "empty-snaps"
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["monitor", str(path), "--epoch-pairs", "400",
                 "--snapshot-dir", str(snapshot_dir), "--resume"]
            )
        message = str(excinfo.value)
        assert "--resume failed" in message
        assert "no snapshot files found" in message
        assert str(snapshot_dir) in message

    def test_monitor_resume_truncated_snapshot_exits_with_clear_error(self, tmp_path):
        path = self._dataset(tmp_path)
        snapshot_dir = tmp_path / "snaps"
        args = [
            "monitor", str(path), "--epoch-pairs", "400",
            "--memory-bits", str(1 << 14),
            "--snapshot-dir", str(snapshot_dir), "--snapshot-every", "2",
        ]
        assert main(args) == 0
        latest = sorted(snapshot_dir.glob("snapshot-*.json"))[-1]
        text = latest.read_text(encoding="utf-8")
        latest.write_text(text[: len(text) // 3], encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(args + ["--resume"])
        message = str(excinfo.value)
        assert str(latest) in message
        assert "truncated or corrupt" in message
        assert "Recovery options" in message

    def test_monitor_requires_one_epoch_mode(self, tmp_path):
        path = self._dataset(tmp_path)
        with pytest.raises(SystemExit):
            main(["monitor", str(path)])
        with pytest.raises(SystemExit):
            main(["monitor", str(path), "--epoch-pairs", "10", "--epoch-span", "5"])

    def test_monitor_absolute_threshold_flag(self, tmp_path, capsys):
        import json

        path = self._dataset(tmp_path)
        capsys.readouterr()
        assert (
            main(["monitor", str(path), "--epoch-pairs", "500", "--threshold", "8"]) == 0
        )
        records = [
            json.loads(line) for line in capsys.readouterr().out.strip().splitlines()
        ]
        windows = [record for record in records if record["type"] == "window"]
        assert windows and all(record["enter_threshold"] == 8.0 for record in windows)
        with pytest.raises(SystemExit):
            main(["monitor", str(path), "--epoch-pairs", "500",
                  "--threshold", "8", "--delta", "0.01"])

    def test_monitor_epoch_span_uses_event_index_clock(self, tmp_path, capsys):
        import json

        path = self._dataset(tmp_path)
        capsys.readouterr()
        assert main(["monitor", str(path), "--epoch-span", "600", "--window", "2"]) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.strip().splitlines()
        ]
        windows = [record for record in records if record["type"] == "window"]
        assert windows and windows[0]["end_time"] == 600.0
