"""Unit tests for the per-user sketch baselines and the exact counter."""

from __future__ import annotations

import pytest

from repro.baselines import ExactCounter, PerUserHLLPP, PerUserLPC


class TestExactCounter:
    def test_counts_distinct_items_per_user(self):
        exact = ExactCounter()
        exact.update("u", "a")
        exact.update("u", "a")
        exact.update("u", "b")
        exact.update("v", "a")
        assert exact.cardinality("u") == 2
        assert exact.cardinality("v") == 1
        assert exact.estimate("u") == 2.0

    def test_unseen_user_is_zero(self):
        assert ExactCounter().cardinality("x") == 0
        assert ExactCounter().estimate("x") == 0.0

    def test_total_cardinality_and_users(self):
        exact = ExactCounter()
        for user in range(5):
            for item in range(10):
                exact.update(user, item)
                exact.update(user, item)  # duplicates ignored
        assert exact.total_cardinality == 50
        assert exact.user_count == 5
        assert exact.pairs_processed == 100
        assert exact.max_cardinality() == 10

    def test_cardinalities_and_estimates_agree(self):
        exact = ExactCounter()
        exact.update(1, 1)
        exact.update(1, 2)
        assert exact.cardinalities() == {1: 2}
        assert exact.estimates() == {1: 2.0}

    def test_items_of(self):
        exact = ExactCounter()
        exact.update("u", "a")
        exact.update("u", "b")
        assert set(exact.items_of("u")) == {"a", "b"}

    def test_memory_reported_positive(self):
        exact = ExactCounter()
        exact.update("u", "a")
        assert exact.memory_bits() > 0


class TestPerUserLPC:
    def test_budget_division(self):
        estimator = PerUserLPC(memory_bits=10_000, expected_users=100)
        assert estimator.bits_per_user == 100

    def test_explicit_bits_override(self):
        estimator = PerUserLPC(memory_bits=10_000, expected_users=100, bits_per_user=256)
        assert estimator.bits_per_user == 256

    def test_rejects_bad_expected_users(self):
        with pytest.raises(ValueError):
            PerUserLPC(memory_bits=1000, expected_users=0)

    def test_minimum_bits_enforced(self):
        estimator = PerUserLPC(memory_bits=100, expected_users=1_000)
        assert estimator.bits_per_user >= 8

    def test_estimates_track_counts(self):
        estimator = PerUserLPC(memory_bits=1 << 16, expected_users=10, seed=1)
        for item in range(200):
            estimator.update("u", item)
        assert estimator.estimate("u") == pytest.approx(200, rel=0.15)

    def test_memory_grows_with_users(self):
        estimator = PerUserLPC(memory_bits=1 << 14, expected_users=16, seed=2)
        estimator.update("a", 1)
        first = estimator.memory_bits()
        estimator.update("b", 1)
        assert estimator.memory_bits() == 2 * first
        assert estimator.users_allocated == 2

    def test_range_limited_by_per_user_budget(self):
        # With a tiny per-user bitmap, heavy users saturate (the paper's
        # motivation for sharing memory instead of splitting it).
        estimator = PerUserLPC(memory_bits=3_200, expected_users=100, seed=3)
        for item in range(10_000):
            estimator.update("heavy", item)
        assert estimator.estimate("heavy") < 10_000 * 0.5


class TestPerUserHLLPP:
    def test_budget_division(self):
        estimator = PerUserHLLPP(memory_bits=60_000, expected_users=100)
        assert estimator.registers_per_user == 100

    def test_rejects_bad_expected_users(self):
        with pytest.raises(ValueError):
            PerUserHLLPP(memory_bits=1000, expected_users=0)

    def test_estimates_track_counts(self):
        estimator = PerUserHLLPP(memory_bits=1 << 16, expected_users=8, seed=4)
        for item in range(5_000):
            estimator.update("u", item)
        assert estimator.estimate("u") == pytest.approx(5_000, rel=0.3)

    def test_duplicates_ignored(self):
        estimator = PerUserHLLPP(memory_bits=1 << 14, expected_users=4, seed=5)
        estimator.update("u", "a")
        first = estimator.estimate("u")
        for _ in range(20):
            estimator.update("u", "a")
        assert estimator.estimate("u") == pytest.approx(first)

    def test_users_allocated(self):
        estimator = PerUserHLLPP(memory_bits=1 << 14, expected_users=4, seed=6)
        estimator.update("a", 1)
        estimator.update("b", 1)
        assert estimator.users_allocated == 2
