"""Unit tests for FreeBS (paper Algorithm 1)."""

from __future__ import annotations

import math
import random

import pytest

from repro.baselines.exact import ExactCounter
from repro.core import FreeBS


class TestFreeBSBasics:
    def test_rejects_non_positive_memory(self):
        with pytest.raises(ValueError):
            FreeBS(0)

    def test_unseen_user_estimate_is_zero(self):
        assert FreeBS(1024).estimate("nobody") == 0.0

    def test_first_pair_increments_by_one(self):
        # The very first update sees an empty array (q_B = 1), so the user's
        # estimate must increase by exactly 1.
        estimator = FreeBS(4096, seed=1)
        estimator.update("u", "d1")
        assert estimator.estimate("u") == pytest.approx(1.0)

    def test_duplicate_pairs_do_not_increase_estimate(self):
        estimator = FreeBS(4096, seed=2)
        estimator.update("u", "d")
        first = estimator.estimate("u")
        for _ in range(100):
            estimator.update("u", "d")
        assert estimator.estimate("u") == pytest.approx(first)

    def test_estimates_returns_all_observed_users(self):
        estimator = FreeBS(1 << 14, seed=3)
        estimator.update("a", 1)
        estimator.update("b", 1)
        estimator.update("b", 2)
        estimates = estimator.estimates()
        assert set(estimates) == {"a", "b"}

    def test_memory_bits(self):
        assert FreeBS(12_345).memory_bits() == 12_345

    def test_update_returns_current_estimate(self):
        estimator = FreeBS(1 << 12, seed=4)
        returned = estimator.update("u", "x")
        assert returned == estimator.estimate("u")

    def test_change_probability_decreases(self):
        estimator = FreeBS(1 << 10, seed=5)
        assert estimator.change_probability == pytest.approx(1.0)
        for item in range(200):
            estimator.update("u", item)
        assert estimator.change_probability < 1.0

    def test_counters_track_processed_and_sampled(self):
        estimator = FreeBS(1 << 14, seed=6)
        for item in range(50):
            estimator.update("u", item)
        for _ in range(25):
            estimator.update("u", 0)
        assert estimator.pairs_processed == 75
        assert estimator.pairs_sampled <= 50


class TestFreeBSAccuracy:
    def test_estimates_track_exact_counts(self):
        estimator = FreeBS(1 << 17, seed=7)
        exact = ExactCounter()
        rng = random.Random(7)
        for _ in range(30_000):
            user = rng.randint(0, 30)
            item = rng.randint(0, 2_000)
            estimator.update(user, item)
            exact.update(user, item)
        for user, true_cardinality in exact.cardinalities().items():
            if true_cardinality >= 100:
                relative_error = abs(estimator.estimate(user) - true_cardinality) / true_cardinality
                assert relative_error < 0.25

    def test_unbiased_over_repetitions(self):
        # Theorem 1: E[n_hat] = n.  Average many independent runs.
        true_cardinality, repetitions = 200, 30
        total = 0.0
        for seed in range(repetitions):
            estimator = FreeBS(1 << 12, seed=seed)
            for item in range(true_cardinality):
                estimator.update("u", item)
            # Load the array with another user's items to exercise sharing.
            for item in range(500):
                estimator.update("other", ("o", item))
            total += estimator.estimate("u")
        mean_estimate = total / repetitions
        assert abs(mean_estimate - true_cardinality) / true_cardinality < 0.1

    def test_total_cardinality_estimate(self):
        estimator = FreeBS(1 << 16, seed=8)
        exact = ExactCounter()
        for user in range(20):
            for item in range(100):
                estimator.update(user, item)
                exact.update(user, item)
        estimate = estimator.total_cardinality_estimate()
        assert abs(estimate - exact.total_cardinality) / exact.total_cardinality < 0.1

    def test_max_estimate_is_m_ln_m(self):
        estimator = FreeBS(1000)
        assert estimator.max_estimate == pytest.approx(1000 * math.log(1000))

    def test_small_users_unaffected_by_heavy_users_much(self):
        # A user with 10 items should stay near 10 even when another user has
        # thousands, as long as the array is not saturated.
        estimator = FreeBS(1 << 18, seed=9)
        for item in range(10):
            estimator.update("small", item)
        for item in range(20_000):
            estimator.update("heavy", ("h", item))
        assert estimator.estimate("small") == pytest.approx(10, abs=3)
