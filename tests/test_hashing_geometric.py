"""Unit tests for the Geometric(1/2) rank functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import geometric_rank, geometric_rank_array, hash64, rho_from_hash


class TestRhoFromHash:
    def test_all_zero_bits(self):
        assert rho_from_hash(0, 8) == 9

    def test_top_bit_set(self):
        assert rho_from_hash(0b10000000, 8) == 1

    def test_lowest_bit_set(self):
        assert rho_from_hash(0b00000001, 8) == 8

    def test_masks_to_width(self):
        # Bits above the window must be ignored.
        assert rho_from_hash(0x100, 8) == 9

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            rho_from_hash(3, 0)


class TestGeometricRank:
    def test_zero_hash_gets_max(self):
        assert geometric_rank(0, max_rank=31) == 31

    def test_full_hash_gets_one(self):
        assert geometric_rank((1 << 64) - 1) == 1

    def test_cap_applies(self):
        assert geometric_rank(1, max_rank=5) == 5

    def test_rejects_non_positive_max(self):
        with pytest.raises(ValueError):
            geometric_rank(7, max_rank=0)

    def test_distribution_is_geometric_half(self):
        # P(rank = k) should be about 2^-k.
        ranks = [geometric_rank(hash64(i)) for i in range(20_000)]
        counts = np.bincount(ranks, minlength=6)
        total = len(ranks)
        assert abs(counts[1] / total - 0.5) < 0.02
        assert abs(counts[2] / total - 0.25) < 0.02
        assert abs(counts[3] / total - 0.125) < 0.015

    def test_array_matches_scalar(self):
        hashes = np.array([hash64(i) for i in range(500)], dtype=np.uint64)
        array_ranks = geometric_rank_array(hashes, max_rank=31)
        scalar_ranks = [geometric_rank(int(value), max_rank=31) for value in hashes]
        assert array_ranks.tolist() == scalar_ranks

    def test_array_handles_zeros(self):
        hashes = np.array([0, 0], dtype=np.uint64)
        assert geometric_rank_array(hashes, max_rank=12).tolist() == [12, 12]

    def test_array_rejects_non_positive_max(self):
        with pytest.raises(ValueError):
            geometric_rank_array(np.array([1], dtype=np.uint64), max_rank=0)
