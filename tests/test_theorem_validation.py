"""Statistical validation of the paper's theorems on controlled workloads.

These tests run many independent repetitions of small controlled streams and
check that the empirical mean and spread of the FreeBS/FreeRS estimators are
consistent with Theorem 1 and Theorem 2 (unbiasedness; variance below the
stated bound, up to sampling noise).  They are the reproduction's first line
of defence against silent estimator regressions.
"""

from __future__ import annotations

import math
import statistics

import pytest

from repro.analysis.variance import freebs_variance_bound, freers_variance_bound
from repro.core import FreeBS, FreeRS


def _run_freebs(seed: int, user_cardinality: int, noise_cardinality: int, memory_bits: int) -> float:
    estimator = FreeBS(memory_bits, seed=seed)
    for item in range(noise_cardinality):
        estimator.update("noise", ("n", item))
    for item in range(user_cardinality):
        estimator.update("target", item)
    return estimator.estimate("target")


def _run_freers(seed: int, user_cardinality: int, noise_cardinality: int, registers: int) -> float:
    estimator = FreeRS(registers, seed=seed)
    for item in range(noise_cardinality):
        estimator.update("noise", ("n", item))
    for item in range(user_cardinality):
        estimator.update("target", item)
    return estimator.estimate("target")


class TestTheorem1FreeBS:
    REPETITIONS = 40
    USER_CARDINALITY = 150
    NOISE_CARDINALITY = 1_500
    MEMORY_BITS = 1 << 12

    @pytest.fixture(scope="class")
    def samples(self):
        return [
            _run_freebs(seed, self.USER_CARDINALITY, self.NOISE_CARDINALITY, self.MEMORY_BITS)
            for seed in range(self.REPETITIONS)
        ]

    def test_unbiased(self, samples):
        mean = statistics.mean(samples)
        standard_error = statistics.stdev(samples) / math.sqrt(len(samples))
        # The empirical mean should be within ~4 standard errors of the truth.
        assert abs(mean - self.USER_CARDINALITY) < 4 * standard_error + 1.0

    def test_variance_within_theorem_bound(self, samples):
        empirical_variance = statistics.variance(samples)
        bound = freebs_variance_bound(
            self.USER_CARDINALITY,
            self.USER_CARDINALITY + self.NOISE_CARDINALITY,
            self.MEMORY_BITS,
        )
        # Allow slack for the chi-square spread of a 40-sample variance estimate.
        assert empirical_variance < 2.0 * bound

    def test_spread_is_nontrivial(self, samples):
        # Sanity check that the workload actually exercises sharing noise
        # (otherwise the variance bound test would be vacuous).
        assert statistics.stdev(samples) > 0.5


class TestTheorem2FreeRS:
    REPETITIONS = 40
    USER_CARDINALITY = 150
    NOISE_CARDINALITY = 3_000
    REGISTERS = 1 << 10

    @pytest.fixture(scope="class")
    def samples(self):
        return [
            _run_freers(seed, self.USER_CARDINALITY, self.NOISE_CARDINALITY, self.REGISTERS)
            for seed in range(self.REPETITIONS)
        ]

    def test_unbiased(self, samples):
        mean = statistics.mean(samples)
        standard_error = statistics.stdev(samples) / math.sqrt(len(samples))
        assert abs(mean - self.USER_CARDINALITY) < 4 * standard_error + 1.0

    def test_variance_within_theorem_bound(self, samples):
        empirical_variance = statistics.variance(samples)
        bound = freers_variance_bound(
            self.USER_CARDINALITY,
            self.USER_CARDINALITY + self.NOISE_CARDINALITY,
            self.REGISTERS,
        )
        assert empirical_variance < 2.0 * bound


class TestSectionIVCComparisons:
    """Qualitative comparisons stated in the paper's Section IV-C."""

    def test_freebs_beats_freers_when_array_sparse(self):
        # Early / light load: bit sharing should have lower error than
        # register sharing under equal memory (bits = 5x registers).
        memory_bits = 1 << 13
        registers = memory_bits // 5
        user_cardinality, noise, repetitions = 100, 400, 30
        bs_errors, rs_errors = [], []
        for seed in range(repetitions):
            bs = _run_freebs(seed, user_cardinality, noise, memory_bits)
            rs = _run_freers(seed, user_cardinality, noise, registers)
            bs_errors.append((bs - user_cardinality) ** 2)
            rs_errors.append((rs - user_cardinality) ** 2)
        assert statistics.mean(bs_errors) < statistics.mean(rs_errors)

    def test_freers_extends_range_beyond_bit_sharing(self):
        # Heavy load: the bit array saturates (its estimate is capped at
        # M ln M) while the register array keeps tracking.
        memory_bits = 1 << 10
        registers = memory_bits // 5
        heavy = 30_000
        bs = FreeBS(memory_bits, seed=1)
        rs = FreeRS(registers, seed=1)
        for item in range(heavy):
            bs.update("u", item)
            rs.update("u", item)
        bs_error = abs(bs.estimate("u") - heavy) / heavy
        rs_error = abs(rs.estimate("u") - heavy) / heavy
        assert rs_error < bs_error
