"""Unit tests for the accuracy metrics."""

from __future__ import annotations

import math

import pytest

from repro.analysis.metrics import (
    aggregate_error,
    detection_confusion,
    mean_absolute_relative_error,
    relative_standard_error,
    rse_by_cardinality,
    rse_curve,
    scatter_summary,
)


class TestRelativeStandardError:
    def test_perfect_estimates_give_zero(self):
        truth = {"a": 10, "b": 20}
        assert relative_standard_error(truth, {"a": 10.0, "b": 20.0}) == 0.0

    def test_known_value(self):
        truth = {"a": 10}
        estimates = {"a": 12.0}
        assert relative_standard_error(truth, estimates) == pytest.approx(0.2)

    def test_missing_estimates_count_as_zero(self):
        truth = {"a": 10}
        assert relative_standard_error(truth, {}) == pytest.approx(1.0)

    def test_minimum_cardinality_filter(self):
        truth = {"small": 1, "big": 100}
        estimates = {"small": 50.0, "big": 100.0}
        assert relative_standard_error(truth, estimates, minimum_cardinality=10) == 0.0

    def test_empty_truth(self):
        assert relative_standard_error({}, {}) == 0.0


class TestAggregateError:
    def test_summary_fields(self):
        truth = {"a": 10, "b": 20}
        estimates = {"a": 11.0, "b": 18.0}
        summary = aggregate_error(truth, estimates)
        assert summary.count == 2
        assert summary.mean_relative_error == pytest.approx((0.1 - 0.1) / 2)
        assert summary.mean_absolute_relative_error == pytest.approx(0.1)
        assert summary.max_relative_error == pytest.approx(0.1)
        assert summary.rse == pytest.approx(0.1)

    def test_as_dict(self):
        summary = aggregate_error({"a": 10}, {"a": 10.0})
        assert summary.as_dict()["count"] == 1.0

    def test_empty(self):
        summary = aggregate_error({}, {})
        assert summary.count == 0
        assert summary.rse == 0.0

    def test_mare_matches_function(self):
        truth = {"a": 10, "b": 5}
        estimates = {"a": 12.0, "b": 5.0}
        assert mean_absolute_relative_error(truth, estimates) == pytest.approx(
            aggregate_error(truth, estimates).mean_absolute_relative_error
        )


class TestRSEByCardinality:
    def test_groups_by_exact_cardinality(self):
        truth = {"a": 10, "b": 10, "c": 100}
        estimates = {"a": 11.0, "b": 9.0, "c": 100.0}
        by_cardinality = rse_by_cardinality(truth, estimates)
        assert set(by_cardinality) == {10, 100}
        assert by_cardinality[10] == pytest.approx(0.1)
        assert by_cardinality[100] == 0.0

    def test_ignores_zero_cardinality(self):
        assert rse_by_cardinality({"a": 0}, {"a": 5.0}) == {}


class TestRSECurve:
    def test_buckets_are_geometric(self):
        truth = {f"u{i}": 10 for i in range(5)} | {f"v{i}": 1000 for i in range(5)}
        estimates = {user: value * 1.1 for user, value in truth.items()}
        curve = rse_curve(truth, estimates, buckets_per_decade=1)
        assert len(curve) == 2
        for _, rse, count in curve:
            assert rse == pytest.approx(0.1, rel=1e-6)
            assert count == 5

    def test_rejects_bad_bucket_count(self):
        with pytest.raises(ValueError):
            rse_curve({}, {}, buckets_per_decade=0)

    def test_minimum_cardinality_filter(self):
        truth = {"a": 1, "b": 1000}
        estimates = {"a": 100.0, "b": 1000.0}
        curve = rse_curve(truth, estimates, minimum_cardinality=10)
        assert len(curve) == 1


class TestScatterSummary:
    def test_mean_and_percentiles(self):
        truth = {f"u{i}": 100 for i in range(20)}
        estimates = {f"u{i}": 90.0 + i for i in range(20)}
        rows = scatter_summary(truth, estimates, buckets_per_decade=1)
        assert len(rows) == 1
        _, mean, p10, p90 = rows[0]
        assert mean == pytest.approx(sum(90.0 + i for i in range(20)) / 20)
        assert p10 < mean < p90


class TestDetectionConfusion:
    def test_perfect_detection(self):
        fnr, fpr = detection_confusion({"a", "b"}, {"a", "b"}, population=10)
        assert fnr == 0.0
        assert fpr == 0.0

    def test_missed_and_false_positive(self):
        fnr, fpr = detection_confusion({"a", "b"}, {"a", "c"}, population=10)
        assert fnr == pytest.approx(0.5)
        assert fpr == pytest.approx(0.1)

    def test_empty_truth_and_population(self):
        fnr, fpr = detection_confusion(set(), {"x"}, population=0)
        assert fnr == 0.0
        assert fpr == 0.0
