"""Tests for the vectorised batch estimators (exact equivalence with scalar).

The batch implementations exist purely for throughput; their contract is that
feeding a stream through ``update_batch`` (in any chunking) produces exactly
the same estimates and exactly the same shared-array state as feeding the
same stream pair-by-pair to the scalar estimator with the same seed.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    FreeBS,
    FreeBSBatch,
    FreeRS,
    FreeRSBatch,
    encode_int_pairs,
    encode_pairs,
)
from repro.hashing import pair_key


def _random_pairs(count, n_users=40, n_items=400, seed=0):
    rng = random.Random(seed)
    return [(rng.randint(0, n_users), rng.randint(0, n_items)) for _ in range(count)]


class TestEncoding:
    def test_encode_pairs_keys_match_pair_key(self):
        pairs = [("alice", "x"), ("bob", "y"), ("alice", "x")]
        codes, keys, decode = encode_pairs(pairs)
        assert keys.tolist() == [pair_key(u, i) for u, i in pairs]
        assert decode[codes[0]] == "alice"
        assert codes[0] == codes[2]

    def test_encode_int_pairs_matches_scalar_keys(self):
        users = np.array([1, 2, 3, 1], dtype=np.int64)
        items = np.array([10, 20, 30, 10], dtype=np.int64)
        codes, keys, decode = encode_int_pairs(users, items)
        expected = [pair_key(int(u), int(i)) for u, i in zip(users, items)]
        assert keys.tolist() == expected
        assert decode[int(codes[0])] == 1

    def test_encode_int_pairs_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            encode_int_pairs(np.array([1, 2]), np.array([1]))

    def test_empty_batch_is_noop(self):
        estimator = FreeBSBatch(1 << 12)
        estimator.update_batch([])
        assert estimator.estimates() == {}


class TestFreeBSBatchEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 7, 100, 10_000])
    def test_matches_scalar_for_any_chunking(self, chunk_size):
        pairs = _random_pairs(3_000, seed=chunk_size)
        scalar = FreeBS(1 << 13, seed=5)
        batch = FreeBSBatch(1 << 13, seed=5)
        for user, item in pairs:
            scalar.update(user, item)
        for start in range(0, len(pairs), chunk_size):
            batch.update_batch(pairs[start : start + chunk_size])
        assert batch.estimates() == scalar.estimates()
        assert batch.change_probability == pytest.approx(scalar.change_probability)

    def test_encoded_fast_path_matches_scalar(self):
        rng = np.random.default_rng(3)
        users = rng.integers(0, 50, size=5_000)
        items = rng.integers(0, 800, size=5_000)
        scalar = FreeBS(1 << 13, seed=2)
        batch = FreeBSBatch(1 << 13, seed=2)
        for user, item in zip(users, items):
            scalar.update(int(user), int(item))
        batch.update_batch_encoded(*encode_int_pairs(users, items))
        assert batch.estimates() == scalar.estimates()

    def test_to_scalar_snapshot(self):
        pairs = _random_pairs(1_000, seed=11)
        batch = FreeBSBatch(1 << 12, seed=7)
        batch.update_batch(pairs)
        snapshot = batch.to_scalar()
        assert snapshot.estimates() == batch.estimates()
        assert snapshot.change_probability == pytest.approx(batch.change_probability)

    def test_total_cardinality_estimate(self):
        pairs = [(u, i) for u in range(20) for i in range(50)]
        batch = FreeBSBatch(1 << 15, seed=1)
        batch.update_batch(pairs)
        assert batch.total_cardinality_estimate() == pytest.approx(1_000, rel=0.1)

    def test_rejects_bad_memory(self):
        with pytest.raises(ValueError):
            FreeBSBatch(0)

    def test_scalar_interface_delegates(self):
        batch = FreeBSBatch(1 << 12, seed=9)
        value = batch.update("u", "item")
        assert value == batch.estimate("u") > 0


class TestFreeRSBatchEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 13, 500, 10_000])
    def test_matches_scalar_for_any_chunking(self, chunk_size):
        pairs = _random_pairs(3_000, seed=chunk_size + 100)
        scalar = FreeRS(1 << 10, seed=5)
        batch = FreeRSBatch(1 << 10, seed=5)
        for user, item in pairs:
            scalar.update(user, item)
        for start in range(0, len(pairs), chunk_size):
            batch.update_batch(pairs[start : start + chunk_size])
        estimates_scalar = scalar.estimates()
        estimates_batch = batch.estimates()
        assert set(estimates_scalar) == set(estimates_batch)
        for user, value in estimates_scalar.items():
            assert estimates_batch[user] == pytest.approx(value, rel=1e-9, abs=1e-9)
        assert batch.change_probability == pytest.approx(scalar.change_probability)

    def test_encoded_fast_path_matches_scalar(self):
        rng = np.random.default_rng(4)
        users = rng.integers(0, 50, size=5_000)
        items = rng.integers(0, 800, size=5_000)
        scalar = FreeRS(1 << 10, seed=2)
        batch = FreeRSBatch(1 << 10, seed=2)
        for user, item in zip(users, items):
            scalar.update(int(user), int(item))
        batch.update_batch_encoded(*encode_int_pairs(users, items))
        for user, value in scalar.estimates().items():
            assert batch.estimate(user) == pytest.approx(value, rel=1e-9, abs=1e-9)

    def test_to_scalar_snapshot(self):
        pairs = _random_pairs(1_000, seed=21)
        batch = FreeRSBatch(1 << 9, seed=7)
        batch.update_batch(pairs)
        snapshot = batch.to_scalar()
        for user, value in batch.estimates().items():
            assert snapshot.estimate(user) == pytest.approx(value)
        assert snapshot.change_probability == pytest.approx(batch.change_probability)

    def test_total_cardinality_estimate(self):
        pairs = [(u, i) for u in range(20) for i in range(50)]
        batch = FreeRSBatch(1 << 12, seed=1)
        batch.update_batch(pairs)
        assert batch.total_cardinality_estimate() == pytest.approx(1_000, rel=0.15)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FreeRSBatch(0)
        with pytest.raises(ValueError):
            FreeRSBatch(64, register_width=0)

    def test_register_saturation_handled(self):
        batch = FreeRSBatch(32, register_width=3, seed=3)
        batch.update_batch([("u", item) for item in range(5_000)])
        assert batch.estimate("u") > 0
        assert batch.change_probability > 0


class TestBatchProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=200),
            ),
            max_size=200,
        ),
        chunk=st.integers(min_value=1, max_value=50),
    )
    def test_freebs_batch_equals_scalar(self, pairs, chunk):
        scalar = FreeBS(1 << 10, seed=13)
        batch = FreeBSBatch(1 << 10, seed=13)
        for user, item in pairs:
            scalar.update(user, item)
        for start in range(0, len(pairs), chunk):
            batch.update_batch(pairs[start : start + chunk])
        assert batch.estimates() == scalar.estimates()

    @settings(max_examples=25, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=200),
            ),
            max_size=200,
        ),
        chunk=st.integers(min_value=1, max_value=50),
    )
    def test_freers_batch_equals_scalar(self, pairs, chunk):
        scalar = FreeRS(1 << 8, seed=13)
        batch = FreeRSBatch(1 << 8, seed=13)
        for user, item in pairs:
            scalar.update(user, item)
        for start in range(0, len(pairs), chunk):
            batch.update_batch(pairs[start : start + chunk])
        for user, value in scalar.estimates().items():
            assert batch.estimate(user) == pytest.approx(value, rel=1e-9, abs=1e-9)
