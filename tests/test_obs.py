"""The observability layer: registry semantics, thread-safety, exposition.

Most tests build a private :class:`MetricsRegistry` instead of touching the
process-global one — the global registry backs live instruments cached by
the service/runtime modules, and resetting it under them would desync those
caches.  The few tests that do flip the global enabled switch restore it.
"""

from __future__ import annotations

import io
import json
import logging
import threading
import urllib.request

import pytest

from repro import obs
from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS, MetricsRegistry, timed
from repro.obs.prometheus import CONTENT_TYPE, render, start_http_server


class TestRegistrySemantics:
    def test_same_identity_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", op="spread", transport="ndjson")
        b = registry.counter("requests", transport="ndjson", op="spread")
        assert a is b  # label order is not part of the identity

    def test_different_labels_are_different_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", op="spread")
        b = registry.counter("requests", op="topk")
        a.add(3)
        assert a is not b
        assert (a.value, b.value) == (3.0, 0.0)

    def test_type_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("pairs")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.gauge("pairs")

    def test_counter_refuses_negative_amounts(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("pairs").add(-1)

    def test_gauge_set_and_signed_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(4)
        gauge.add(-1.5)
        assert gauge.value == 2.5

    def test_histogram_bounds_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="ascending"):
            registry.histogram("latency", bounds=[2.0, 1.0])
        with pytest.raises(ValueError, match="ascending"):
            registry.histogram("empty", bounds=[])

    def test_histogram_buckets_use_inclusive_upper_edges(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", bounds=[1.0, 2.0, 4.0])
        for value in (0.5, 1.0, 1.5, 4.0, 99.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        # le=1.0 gets {0.5, 1.0}; le=2.0 gets {1.5}; le=4.0 gets {4.0};
        # the implicit overflow bucket gets {99.0}.
        assert snapshot["counts"] == [2, 1, 1, 1]
        assert snapshot["count"] == 5
        assert snapshot["sum"] == pytest.approx(106.0)

    def test_default_bounds_are_shared_and_log_scale(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        assert histogram.bounds == DEFAULT_LATENCY_BOUNDS
        ratios = {
            round(b / a, 6)
            for a, b in zip(DEFAULT_LATENCY_BOUNDS, DEFAULT_LATENCY_BOUNDS[1:])
        }
        assert ratios == {2.0}


class TestThreadSafety:
    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        histogram = registry.histogram("spans", bounds=[0.5, 1.5])
        per_thread, threads = 2_000, 8

        def worker():
            for _ in range(per_thread):
                counter.add()
                histogram.observe(1.0)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value == per_thread * threads
        assert histogram.count == per_thread * threads
        assert histogram.snapshot()["counts"] == [0, per_thread * threads, 0]

    def test_concurrent_get_or_create_returns_one_instrument(self):
        registry = MetricsRegistry()
        seen = []

        def worker():
            seen.append(registry.counter("shared", worker="x"))

        pool = [threading.Thread(target=worker) for _ in range(16)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len({id(instrument) for instrument in seen}) == 1


class TestSnapshot:
    def test_snapshot_is_deterministic_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("b.requests", op="topk").add(2)
        registry.gauge("a.depth").set(3)
        registry.counter("b.requests", op="spread").add(1)
        registry.histogram("c.latency", bounds=[1.0]).observe(0.5)
        first = registry.snapshot()
        second = registry.snapshot()
        assert first == second
        assert [m["name"] for m in first] == sorted(m["name"] for m in first)
        # JSON round-trip proves there is nothing numpy-shaped inside.
        assert json.loads(json.dumps(first)) == first

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("hits", op="spread").add(2)
        registry.histogram("spans", bounds=[1.0, 2.0]).observe(1.5)
        by_name = {m["name"]: m for m in registry.snapshot()}
        assert by_name["hits"] == {
            "type": "counter",
            "name": "hits",
            "labels": {"op": "spread"},
            "value": 2.0,
        }
        spans = by_name["spans"]
        assert spans["type"] == "histogram"
        assert spans["bounds"] == [1.0, 2.0]
        assert spans["counts"] == [0, 1, 0]
        assert (spans["count"], spans["sum"]) == (1, 1.5)


class TestDisabledMode:
    def test_disabled_mutations_are_no_ops(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        gauge = registry.gauge("depth")
        histogram = registry.histogram("spans", bounds=[1.0])
        registry.set_enabled(False)
        counter.add(5)
        gauge.set(9)
        histogram.observe(0.5)
        assert (counter.value, gauge.value, histogram.count) == (0.0, 0.0, 0)
        registry.set_enabled(True)
        counter.add(5)
        assert counter.value == 5.0

    def test_always_instruments_ignore_the_switch(self):
        registry = MetricsRegistry()
        progress = registry.counter("pairs", always=True)
        registry.set_enabled(False)
        progress.add(7)
        assert progress.value == 7.0

    def test_timed_skips_the_clock_when_disabled(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("spans", bounds=[1.0])
        registry.set_enabled(False)
        with timed(histogram) as span:
            assert span._start is None
        assert histogram.count == 0
        registry.set_enabled(True)
        with timed(histogram):
            pass
        assert histogram.count == 1

    def test_global_convenience_functions_hit_the_global_registry(self):
        name = "test_obs.unique.counter"
        counter = obs.counter(name, case="global")
        before = counter.value
        obs.set_enabled(False)
        try:
            counter.add()
            assert counter.value == before
        finally:
            obs.set_enabled(True)
        counter.add()
        assert counter.value == before + 1
        assert any(m["name"] == name for m in obs.metrics_snapshot())


class TestPrometheusExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("service.requests", op="topk", transport="ndjson").add(4)
        registry.gauge("service.connections.active").set(2)
        histogram = registry.histogram("service.request_seconds", bounds=[0.1, 1.0])
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(7.0)
        return registry

    def test_counter_and_gauge_lines(self):
        text = render(self._registry())
        assert "# TYPE freesketch_service_requests_total counter" in text
        assert (
            'freesketch_service_requests_total{op="topk",transport="ndjson"} 4'
            in text
        )
        assert "# TYPE freesketch_service_connections_active gauge" in text
        assert "freesketch_service_connections_active 2" in text

    def test_histogram_lines_are_cumulative_with_inf(self):
        text = render(self._registry())
        assert 'freesketch_service_request_seconds_bucket{le="0.1"} 1' in text
        assert 'freesketch_service_request_seconds_bucket{le="1.0"} 2' in text
        assert 'freesketch_service_request_seconds_bucket{le="+Inf"} 3' in text
        assert "freesketch_service_request_seconds_sum 7.55" in text
        assert "freesketch_service_request_seconds_count 3" in text

    def test_type_line_appears_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("service.requests", op="a").add(1)
        registry.counter("service.requests", op="b").add(1)
        text = render(registry)
        assert text.count("# TYPE freesketch_service_requests_total counter") == 1

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("errors", detail='bad "quote"\nnewline').add(1)
        text = render(registry)
        assert 'detail="bad \\"quote\\"\\nnewline"' in text

    def test_render_ends_with_exactly_one_newline(self):
        text = render(self._registry())
        assert text.endswith("\n") and not text.endswith("\n\n")

    def test_http_endpoint_serves_the_registry(self):
        registry = self._registry()
        with start_http_server(0, registry=registry) as server:
            with urllib.request.urlopen(server.url, timeout=10.0) as reply:
                assert reply.status == 200
                assert reply.headers["Content-Type"] == CONTENT_TYPE
                body = reply.read().decode("utf-8")
            assert body == render(registry)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/other", timeout=10.0
                )
            assert excinfo.value.code == 404


class TestStructuredLogging:
    def _capture(self, json_mode):
        stream = io.StringIO()
        handler = obs.configure_logging(
            level="debug", json_mode=json_mode, stream=stream
        )
        return stream, handler

    def teardown_method(self):
        # Drop the handler this test installed so later tests (and the
        # suite's stderr) are not spammed by instrumented code paths.
        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            if getattr(handler, "_repro_obs_handler", False):
                root.removeHandler(handler)
        root.setLevel(logging.NOTSET)

    def test_json_mode_emits_one_object_per_line(self):
        stream, _handler = self._capture(json_mode=True)
        log = obs.get_logger("test.obs")
        log.warning("worker_failed", worker=3, exitcode=-9)
        log.info("snapshot_saved", path="/tmp/x.json")
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines[0]["event"] == "worker_failed"
        assert lines[0]["level"] == "warning"
        assert lines[0]["logger"] == "repro.test.obs"
        assert (lines[0]["worker"], lines[0]["exitcode"]) == (3, -9)
        assert lines[1]["event"] == "snapshot_saved"

    def test_keyvalue_mode_renders_fields(self):
        stream, _handler = self._capture(json_mode=False)
        obs.get_logger("test.obs").error("ingest_failed", worker=1, cause="boom")
        line = stream.getvalue().strip()
        assert "ingest_failed" in line
        assert "worker=1" in line
        assert "cause=boom" in line

    def test_reconfigure_replaces_the_handler(self):
        first_stream, _ = self._capture(json_mode=True)
        second_stream, _ = self._capture(json_mode=True)
        obs.get_logger("test.obs").warning("only_once")
        assert first_stream.getvalue() == ""
        assert second_stream.getvalue().count("only_once") == 1

    def test_level_gate_suppresses_below_threshold(self):
        stream = io.StringIO()
        obs.configure_logging(level="warning", stream=stream)
        log = obs.get_logger("test.obs")
        log.debug("too_quiet")
        log.info("still_quiet")
        log.warning("loud")
        assert "too_quiet" not in stream.getvalue()
        assert "still_quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_unknown_level_is_an_error(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs.configure_logging(level="verbose")

    def test_non_json_field_values_are_reprd(self):
        stream, _ = self._capture(json_mode=True)
        obs.get_logger("test.obs").warning("odd_field", value={1, 2})
        record = json.loads(stream.getvalue())
        assert record["value"] == repr({1, 2})
