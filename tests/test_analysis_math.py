"""Unit tests for the estimator mathematics and analytic variance models."""

from __future__ import annotations

import math

import pytest

from repro.analysis.estimator_math import (
    expected_inverse_q_bits,
    expected_inverse_q_bits_exact,
    expected_inverse_q_registers,
    geometric_register_distribution,
    harmonic_partial_sum,
    occupancy_distribution,
    stirling2,
)
from repro.analysis.variance import (
    cse_variance,
    freebs_rse_bound,
    freebs_variance_bound,
    freers_rse_bound,
    freers_variance_bound,
    hll_relative_error,
    lpc_bias,
    lpc_variance,
    vhll_variance,
)


class TestStirling:
    def test_base_cases(self):
        assert stirling2(0, 0) == 1
        assert stirling2(5, 0) == 0
        assert stirling2(0, 3) == 0
        assert stirling2(3, 5) == 0

    def test_known_values(self):
        assert stirling2(4, 2) == 7
        assert stirling2(5, 3) == 25
        assert stirling2(10, 3) == 9330

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            stirling2(-1, 2)

    def test_partition_identity(self):
        # sum_k S(n, k) * falling_factorial(m, k) = m^n  (balls into bins).
        n, m = 6, 4
        total = sum(
            stirling2(n, k) * math.perm(m, k) for k in range(0, n + 1)
        )
        assert total == m**n


class TestOccupancy:
    def test_distribution_sums_to_one(self):
        distribution = occupancy_distribution(8, 5)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_zero_balls(self):
        assert occupancy_distribution(0, 7) == {0: 1.0}

    def test_one_ball(self):
        assert occupancy_distribution(1, 7) == {1: 1.0}

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            occupancy_distribution(-1, 5)
        with pytest.raises(ValueError):
            occupancy_distribution(3, 0)

    def test_mean_occupancy_matches_formula(self):
        # E[occupied] = m (1 - (1 - 1/m)^n).
        n, m = 12, 10
        distribution = occupancy_distribution(n, m)
        mean = sum(j * p for j, p in distribution.items())
        assert mean == pytest.approx(m * (1 - (1 - 1 / m) ** n), rel=1e-9)


class TestExpectedInverseQ:
    def test_exact_matches_approximation_small_instance(self):
        exact = expected_inverse_q_bits_exact(30, 256)
        approximate = expected_inverse_q_bits(30, 256)
        assert exact == pytest.approx(approximate, rel=0.01)

    def test_exact_requires_n_below_m(self):
        with pytest.raises(ValueError):
            expected_inverse_q_bits_exact(10, 10)

    def test_bits_grows_with_load(self):
        assert expected_inverse_q_bits(2000, 1024) > expected_inverse_q_bits(100, 1024)

    def test_registers_heavy_load_linear(self):
        value = expected_inverse_q_registers(10_000, 1024)
        assert value == pytest.approx(10_000 / (0.7213 / (1 + 1.079 / 1024) * 1024), rel=1e-6)

    def test_registers_light_load_uses_bitmap_form(self):
        light = expected_inverse_q_registers(100, 1024)
        assert light == pytest.approx(expected_inverse_q_bits(100, 1024))

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            expected_inverse_q_bits(10, 0)
        with pytest.raises(ValueError):
            expected_inverse_q_registers(10, 0)


class TestAuxiliary:
    def test_harmonic_partial_sum_close_to_m_ln_m(self):
        m = 1000
        assert harmonic_partial_sum(m) == pytest.approx(m * (math.log(m) + 0.5772), rel=0.01)

    def test_harmonic_rejects_bad_m(self):
        with pytest.raises(ValueError):
            harmonic_partial_sum(0)

    def test_register_distribution_sums_to_one(self):
        pmf = geometric_register_distribution(50, width=5)
        assert sum(pmf) == pytest.approx(1.0)
        assert len(pmf) == 32

    def test_register_distribution_empty_stream(self):
        pmf = geometric_register_distribution(0, width=5)
        assert pmf[0] == pytest.approx(1.0)

    def test_register_distribution_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            geometric_register_distribution(-1, 5)
        with pytest.raises(ValueError):
            geometric_register_distribution(5, 0)


class TestVarianceModels:
    def test_lpc_variance_and_bias_grow_with_load(self):
        assert lpc_variance(500, 256) > lpc_variance(100, 256)
        assert lpc_bias(500, 256) > lpc_bias(100, 256)

    def test_hll_relative_error_shrinks_with_m(self):
        assert hll_relative_error(1024) < hll_relative_error(64)

    def test_cse_variance_positive_and_grows_with_noise(self):
        low_noise = cse_variance(100, 1_000, 256, 1 << 20)
        high_noise = cse_variance(100, 1_000_000, 256, 1 << 20)
        assert 0 < low_noise < high_noise

    def test_vhll_variance_positive_and_grows_with_noise(self):
        low = vhll_variance(100, 10_000, 128, 1 << 16)
        high = vhll_variance(100, 1_000_000, 128, 1 << 16)
        assert 0 < low < high

    def test_vhll_variance_rejects_m_not_less_than_registers(self):
        with pytest.raises(ValueError):
            vhll_variance(10, 100, 128, 128)

    def test_freebs_bound_below_cse_variance_at_same_load(self):
        # Section IV-C: FreeBS variance is below CSE's for the same memory.
        n_user, n_total, memory_bits = 1_000, 100_000, 1 << 20
        assert freebs_variance_bound(n_user, n_total, memory_bits) < cse_variance(
            n_user, n_total, 1024, memory_bits
        )

    def test_freers_bound_below_vhll_variance_at_same_load(self):
        n_user, n_total, registers = 1_000, 500_000, (1 << 20) // 5
        assert freers_variance_bound(n_user, n_total, registers) < vhll_variance(
            n_user, n_total, 1024, registers
        )

    def test_rse_bounds_zero_for_zero_cardinality(self):
        assert freebs_rse_bound(0, 100, 1024) == 0.0
        assert freers_rse_bound(0, 100, 1024) == 0.0

    def test_rse_bounds_decrease_with_memory(self):
        assert freebs_rse_bound(100, 10_000, 1 << 22) < freebs_rse_bound(100, 10_000, 1 << 16)
        assert freers_rse_bound(100, 10_000, 1 << 20) < freers_rse_bound(100, 10_000, 1 << 14)
