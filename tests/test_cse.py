"""Unit tests for the CSE baseline (virtual LPC bit sharing)."""

from __future__ import annotations

import math
import random

import pytest

from repro.baselines import CSE
from repro.baselines.exact import ExactCounter


class TestCSEBasics:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CSE(0)
        with pytest.raises(ValueError):
            CSE(1024, virtual_size=0)
        with pytest.raises(ValueError):
            CSE(1024, virtual_size=2048)

    def test_unseen_user_estimate_is_zero(self):
        assert CSE(1 << 14).estimate("nobody") == 0.0
        assert CSE(1 << 14).estimate_fresh("nobody") == 0.0

    def test_estimate_cached_per_user(self):
        estimator = CSE(1 << 14, virtual_size=64, seed=1)
        estimator.update("u", "a")
        assert estimator.estimate("u") > 0
        assert "u" in estimator.estimates()

    def test_duplicates_do_not_grow_estimate(self):
        estimator = CSE(1 << 14, virtual_size=64, seed=2)
        estimator.update("u", "a")
        first = estimator.estimate("u")
        for _ in range(50):
            estimator.update("u", "a")
        assert estimator.estimate("u") == pytest.approx(first)

    def test_memory_bits(self):
        assert CSE(1 << 16, virtual_size=64).memory_bits() == 1 << 16

    def test_max_estimate_is_m_ln_m(self):
        estimator = CSE(1 << 16, virtual_size=128)
        assert estimator.max_estimate == pytest.approx(128 * math.log(128))

    def test_estimate_fresh_reflects_other_users_noise(self):
        estimator = CSE(1 << 12, virtual_size=64, seed=3)
        estimator.update("u", "a")
        cached = estimator.estimate("u")
        # Other users fill the array; the *fresh* estimate of "u" can change,
        # while the cached one stays what it was at u's last update.
        for item in range(2_000):
            estimator.update("noise", item)
        assert estimator.estimate("u") == pytest.approx(cached)
        assert estimator.estimate_fresh("u") != pytest.approx(cached)


class TestCSEAccuracy:
    def test_moderate_cardinalities_estimated_reasonably(self):
        estimator = CSE(1 << 17, virtual_size=256, seed=4)
        exact = ExactCounter()
        rng = random.Random(5)
        for _ in range(20_000):
            user = rng.randint(0, 40)
            item = rng.randint(0, 500)
            estimator.update(user, item)
            exact.update(user, item)
        for user, true_cardinality in exact.cardinalities().items():
            if 100 <= true_cardinality <= 400:
                relative_error = abs(estimator.estimate(user) - true_cardinality) / true_cardinality
                assert relative_error < 0.5

    def test_range_limited_to_m_ln_m(self):
        # A user far beyond m ln m must saturate near the maximum, the paper's
        # Challenge-1/limited-range behaviour.
        estimator = CSE(1 << 18, virtual_size=64, seed=6)
        for item in range(50_000):
            estimator.update("heavy", item)
        assert estimator.estimate("heavy") <= estimator.max_estimate * 1.05

    def test_noise_correction_beats_naive_virtual_lpc(self):
        # With heavy cross-traffic, the corrected estimate should be much
        # closer to the truth than the uncorrected virtual-LPC term alone.
        memory_bits, m = 1 << 14, 128
        estimator = CSE(memory_bits, virtual_size=m, seed=7)
        for item in range(100):
            estimator.update("victim", item)
        for user in range(200):
            for item in range(30):
                estimator.update(("noise", user), (user, item))
        corrected = estimator.estimate_fresh("victim")
        assert abs(corrected - 100) < 75
