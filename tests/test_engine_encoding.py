"""Tests for the engine's shared hash/encode pipeline.

The pipeline's contract is that every quantity it derives — folds, pair
keys, item hashes — agrees bit-for-bit with the scalar hashing the
estimators use, for *every* key the scalar path accepts.  The edge cases
exercised here (negative ids, ids at and above 2**63, arbitrarily large
Python ints) are exactly the ones the original ``astype(np.uint64)`` cast
got wrong for ``object`` arrays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FreeBS, encode_int_pairs, encode_pairs
from repro.engine import EncodedBatch
from repro.hashing import fold_key, fold_key_array, hash64, pair_key

EDGE_IDS = [
    0,
    1,
    -1,
    -(2**31),
    2**31,
    2**62,
    2**63 - 1,
    2**63,
    2**64 - 1,
]


class TestFoldKeyArray:
    def test_matches_scalar_for_signed_dtypes(self):
        values = np.array([0, 1, -1, -(2**63), 2**62, -17], dtype=np.int64)
        expected = [fold_key(int(v)) for v in values]
        assert fold_key_array(values).tolist() == expected

    def test_matches_scalar_for_unsigned_dtypes(self):
        values = np.array([0, 2**63, 2**64 - 1, 12345], dtype=np.uint64)
        expected = [fold_key(int(v)) for v in values]
        assert fold_key_array(values).tolist() == expected

    def test_matches_scalar_for_object_arrays(self):
        # A mix of negative and >= 2**63 values cannot be represented in any
        # fixed-width numpy dtype; it must still fold like the scalar path.
        values = np.array([-1, 2**63, -(2**70), 2**100, 5], dtype=object)
        expected = [fold_key(v) for v in values.tolist()]
        assert fold_key_array(values).tolist() == expected

    def test_matches_scalar_for_small_signed_dtypes(self):
        values = np.array([-1, -128, 127, 0], dtype=np.int8)
        expected = [fold_key(int(v)) for v in values]
        assert fold_key_array(values).tolist() == expected


class TestEncodeIntPairsEdgeIds:
    """Regression tests for the `astype(np.uint64)` edge (satellite task)."""

    @pytest.mark.parametrize(
        "dtype",
        [np.int64, np.uint64, object],
        ids=["int64", "uint64", "object"],
    )
    def test_keys_match_scalar_pair_key(self, dtype):
        if dtype is np.int64:
            ids = [v for v in EDGE_IDS if -(2**63) <= v < 2**63]
        elif dtype is np.uint64:
            ids = [v for v in EDGE_IDS if 0 <= v < 2**64]
        else:
            ids = EDGE_IDS + [-(2**70), 2**100]
        users = np.array(ids, dtype=dtype)
        items = np.array(list(reversed(ids)), dtype=dtype)
        codes, keys, decode = encode_int_pairs(users, items)
        expected = [pair_key(int(u), int(i)) for u, i in zip(users, items)]
        assert keys.tolist() == expected
        for position, user in enumerate(users):
            assert decode[int(codes[position])] == int(user)

    def test_negative_ids_round_trip_through_freebs(self):
        users = np.array([-1, -2, -1, -(2**40), 3], dtype=np.int64)
        items = np.array([10, 20, 10, -30, 2**62], dtype=np.int64)
        scalar = FreeBS(1 << 12, seed=4)
        batch = FreeBS(1 << 12, seed=4)
        for user, item in zip(users.tolist(), items.tolist()):
            scalar.update(user, item)
        batch.update_encoded(EncodedBatch.from_int_arrays(users, items))
        assert batch.estimates() == scalar.estimates()

    def test_huge_ids_round_trip_through_freebs(self):
        users = np.array([2**63, -1, 2**100, 2**63], dtype=object)
        items = np.array([1, 2, 3, 4], dtype=object)
        scalar = FreeBS(1 << 12, seed=4)
        batch = FreeBS(1 << 12, seed=4)
        for user, item in zip(users.tolist(), items.tolist()):
            scalar.update(user, item)
        batch.update_encoded(EncodedBatch.from_int_arrays(users, items))
        assert batch.estimates() == scalar.estimates()

    def test_mixed_range_python_lists_are_not_float_coerced(self):
        # np.asarray turns this mix into float64, which would silently merge
        # the two huge ids; the encoder must keep them exact.
        users = [-1, 2**63 + 1, 2**63 + 3]
        items = [10, 11, 12]
        batch = EncodedBatch.from_int_arrays(users, items)
        assert batch.n_users == 3
        expected = [pair_key(u, i) for u, i in zip(users, items)]
        assert batch.pair_keys().tolist() == expected

    def test_rejects_float_arrays(self):
        with pytest.raises(TypeError, match="float"):
            EncodedBatch.from_int_arrays(
                np.array([1.0, 2.0]), np.array([1, 2], dtype=np.int64)
            )

    def test_graphstream_to_int_arrays_keeps_mixed_range_ids_exact(self):
        from repro.streams.stream import GraphStream

        pairs = [(-1, 10), (2**63 + 1, 11), (2**63 + 3, 12)]
        users, items = GraphStream(pairs).to_int_arrays()
        batch = EncodedBatch.from_int_arrays(users, items)
        scalar = FreeBS(1 << 12, seed=4)
        for user, item in pairs:
            scalar.update(user, item)
        vectorised = FreeBS(1 << 12, seed=4)
        vectorised.update_encoded(batch)
        assert vectorised.estimates() == scalar.estimates()

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            encode_int_pairs(np.array([1, 2]), np.array([1]))

    def test_rejects_multidimensional_input(self):
        with pytest.raises(ValueError):
            encode_int_pairs(np.zeros((2, 2), dtype=np.int64), np.zeros((2, 2), dtype=np.int64))


class TestEncodedBatch:
    def test_from_pairs_matches_from_int_arrays(self):
        users = np.array([5, 2, 5, 9, 2], dtype=np.int64)
        items = np.array([1, 1, 2, 3, 1], dtype=np.int64)
        from_arrays = EncodedBatch.from_int_arrays(users, items)
        from_pairs = EncodedBatch.from_pairs(list(zip(users.tolist(), items.tolist())))
        # User code *numbering* may differ (sorted vs first-seen), but every
        # derived hash quantity must be identical pair-for-pair.
        assert from_arrays.pair_keys().tolist() == from_pairs.pair_keys().tolist()
        assert from_arrays.item_hashes.tolist() == from_pairs.item_hashes.tolist()
        for position in range(len(from_arrays)):
            assert (
                from_arrays.users[int(from_arrays.user_codes[position])]
                == from_pairs.users[int(from_pairs.user_codes[position])]
            )

    def test_item_hashes_with_seed_matches_hash64(self):
        pairs = [("alice", "x"), ("bob", 42), ("alice", (1, 2))]
        batch = EncodedBatch.from_pairs(pairs)
        for position, (_, item) in enumerate(pairs):
            assert int(batch.item_hashes_with_seed(0xD1)[position]) == hash64(item, seed=0xD1)

    def test_subset_preserves_order_and_remaps_codes(self):
        pairs = [(u, i) for u in range(6) for i in range(3)]
        batch = EncodedBatch.from_pairs(pairs)
        mask = np.asarray([user % 2 == 0 for user, _ in pairs])
        sub = batch.subset(mask)
        kept = [pair for pair, keep in zip(pairs, mask) if keep]
        assert len(sub) == len(kept)
        assert sub.pair_keys().tolist() == [
            key for key, keep in zip(batch.pair_keys().tolist(), mask) if keep
        ]
        for position, (user, _) in enumerate(kept):
            assert sub.users[int(sub.user_codes[position])] == user

    def test_legacy_encode_pairs_shape(self):
        pairs = [("alice", "x"), ("bob", "y"), ("alice", "x")]
        codes, keys, decode = encode_pairs(pairs)
        assert keys.tolist() == [pair_key(u, i) for u, i in pairs]
        assert decode[int(codes[0])] == "alice"
        assert codes[0] == codes[2]
