"""Tests for the multiprocess parallel-ingest runtime.

The load-bearing property: for a fixed shard count, the merged estimator of
a multi-worker run is **bit-identical** to the single-process sharded run —
same shard partitioning, same seeds, exact float equality on every user's
estimate.  Multiprocess spin-up costs a few hundred milliseconds per run, so
the suite keeps the streams small and the worker sweeps short.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.registry import METHOD_ORDER, build
from repro.runtime import IngestReport, owned_shards, parallel_ingest
from repro.streams.generators import zipf_bipartite_stream
from repro.streams.stream import GraphStream

_CONFIG = ExperimentConfig(memory_bits=1 << 17, seed=7)
_USERS = 250


@pytest.fixture(scope="module")
def stream():
    pairs = list(zipf_bipartite_stream(n_users=_USERS, n_pairs=12_000, seed=3))
    return GraphStream(pairs)


class TestSingleProcessPath:
    def test_workers_one_matches_plain_sharded_process(self, stream):
        reference = build("vHLL", _CONFIG, _USERS, shards=2)
        reference.process(stream)
        report = parallel_ingest(
            stream, method="vHLL", config=_CONFIG, expected_users=_USERS,
            workers=1, shards=2,
        )
        assert report.estimates() == reference.estimates()

    def test_report_accounting(self, stream):
        report = parallel_ingest(
            stream, method="FreeRS", config=_CONFIG, expected_users=_USERS, workers=1
        )
        assert isinstance(report, IngestReport)
        assert report.pairs == len(stream)
        assert report.workers == 1 and report.shards == 1
        assert report.pairs_per_second > 0


class TestMultiprocessBitIdentity:
    @pytest.mark.parametrize("transport", ["shm", "queue"])
    @pytest.mark.parametrize("method", ["FreeRS", "CSE"])
    def test_two_workers_match_single_process(self, method, transport, stream):
        single = parallel_ingest(
            stream, method=method, config=_CONFIG, expected_users=_USERS,
            workers=1, shards=2,
        )
        parallel = parallel_ingest(
            stream, method=method, config=_CONFIG, expected_users=_USERS,
            workers=2, shards=2, transport=transport,
        )
        assert parallel.estimates() == single.estimates()
        assert parallel.pairs == single.pairs == len(stream)
        assert parallel.transport == transport

    @pytest.mark.parametrize("method", METHOD_ORDER)
    def test_shm_transport_bit_identical_for_every_method(self, method, stream):
        """The acceptance bar: shm handoff == single-process sharded run,
        exact float equality, for all six compared methods."""
        single = parallel_ingest(
            stream, method=method, config=_CONFIG, expected_users=_USERS,
            workers=1, shards=2,
        )
        parallel = parallel_ingest(
            stream, method=method, config=_CONFIG, expected_users=_USERS,
            workers=2, shards=2, transport="shm",
        )
        assert parallel.estimates() == single.estimates()

    def test_tiny_slots_fall_back_to_inline_delivery(self, monkeypatch, stream):
        """Slots too small for the chunks exercise the inline-pickle
        fallback without changing the result (FIFO order is preserved)."""
        import repro.runtime.parallel as parallel_module
        import repro.runtime.shm as shm_module

        single = parallel_ingest(
            stream, method="FreeRS", config=_CONFIG, expected_users=_USERS,
            workers=1, shards=2, chunk_size=2048,
        )
        monkeypatch.setattr(
            parallel_module, "slot_size_for", lambda pairs: shm_module.slot_size_for(64)
        )
        parallel = parallel_ingest(
            stream, method="FreeRS", config=_CONFIG, expected_users=_USERS,
            workers=2, shards=2, chunk_size=2048, transport="shm",
        )
        assert parallel.estimates() == single.estimates()

    def test_more_shards_than_workers(self, stream):
        single = parallel_ingest(
            stream, method="vHLL", config=_CONFIG, expected_users=_USERS,
            workers=1, shards=5,
        )
        parallel = parallel_ingest(
            stream, method="vHLL", config=_CONFIG, expected_users=_USERS,
            workers=2, shards=5,
        )
        assert parallel.estimates() == single.estimates()

    def test_generic_pair_streams_use_the_subset_path(self):
        pairs = [(f"u{u}", f"i{i}") for u, i in
                 zipf_bipartite_stream(n_users=80, n_pairs=3000, seed=9)]
        stream = GraphStream(pairs)
        single = parallel_ingest(
            stream, method="FreeBS", config=_CONFIG, expected_users=80,
            workers=1, shards=2,
        )
        parallel = parallel_ingest(
            stream, method="FreeBS", config=_CONFIG, expected_users=80,
            workers=2, shards=2,
        )
        assert parallel.estimates() == single.estimates()

    def test_chunking_does_not_change_the_result(self, stream):
        coarse = parallel_ingest(
            stream, method="FreeRS", config=_CONFIG, expected_users=_USERS,
            workers=2, shards=2, chunk_size=4096,
        )
        fine = parallel_ingest(
            stream, method="FreeRS", config=_CONFIG, expected_users=_USERS,
            workers=2, shards=2, chunk_size=1000,
        )
        assert coarse.estimates() == fine.estimates()


class TestValidation:
    def test_rejects_nonpositive_workers(self, stream):
        with pytest.raises(ValueError, match="workers must be positive"):
            parallel_ingest(stream, workers=0)

    def test_rejects_fewer_shards_than_workers(self, stream):
        with pytest.raises(ValueError, match="at least the worker count"):
            parallel_ingest(stream, workers=4, shards=2)

    def test_rejects_nonpositive_chunk_size(self, stream):
        with pytest.raises(ValueError, match="chunk_size must be positive"):
            parallel_ingest(stream, workers=1, chunk_size=0)

    def test_rejects_unknown_transport(self, stream):
        with pytest.raises(ValueError, match="transport must be one of"):
            parallel_ingest(stream, workers=2, transport="carrier-pigeon")

    def test_owned_shards_round_robin(self):
        assert owned_shards(0, 2, 5) == [0, 2, 4]
        assert owned_shards(1, 2, 5) == [1, 3]
        covered = owned_shards(0, 3, 3) + owned_shards(1, 3, 3) + owned_shards(2, 3, 3)
        assert sorted(covered) == [0, 1, 2]


class TestWorkerFailure:
    """A dying worker (or a poisoned stream) must abort the run, not hang it.

    The coordinator checks worker liveness every chunk and every time a
    bounded queue blocks, drains the queues, cancels the siblings, and
    re-raises the worker error as WorkerIngestError with the worker-side
    traceback attached.
    """

    @pytest.mark.parametrize("transport", ["shm", "queue"])
    def test_poisoned_stream_raises_within_the_run(self, transport):
        import time

        class PoisonedStream:
            def __iter__(self):
                for index in range(30_000):
                    yield (index % 40, index)
                raise RuntimeError("poisoned pair")

        start = time.perf_counter()
        with pytest.raises(RuntimeError, match="poisoned pair"):
            parallel_ingest(
                PoisonedStream(), method="vHLL", config=_CONFIG,
                expected_users=_USERS, workers=2, chunk_size=512,
                transport=transport,
            )
        assert time.perf_counter() - start < 30.0

    @pytest.mark.parametrize("transport", ["shm", "queue"])
    def test_worker_exception_raises_worker_ingest_error(self, monkeypatch, transport):
        import multiprocessing
        import time

        import repro.runtime.parallel as parallel_module
        from repro.runtime import WorkerIngestError

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("worker-failure injection relies on fork inheriting the patch")

        if transport == "queue":
            monkeypatch.setattr(parallel_module, "_worker_ingest", _exploding_worker)
        else:
            monkeypatch.setattr(parallel_module, "shm_worker", _exploding_worker_shm)
        pairs = [(index % 40, index) for index in range(60_000)]
        start = time.perf_counter()
        with pytest.raises(WorkerIngestError) as excinfo:
            parallel_ingest(
                GraphStream(pairs), method="vHLL", config=_CONFIG,
                expected_users=_USERS, workers=2, chunk_size=512,
                transport=transport,
            )
        # Raised mid-run (not after an end-of-stream timeout), names the
        # worker, and carries the worker-side traceback.
        assert time.perf_counter() - start < 30.0
        assert excinfo.value.worker in (0, 1)
        assert "worker exploded" in str(excinfo.value)
        assert "_exploding_worker" in excinfo.value.remote_traceback

    @pytest.mark.parametrize("transport", ["shm", "queue"])
    def test_instantly_dead_worker_detected_before_result_collection(
        self, monkeypatch, transport
    ):
        import multiprocessing

        import repro.runtime.parallel as parallel_module
        from repro.runtime import WorkerIngestError

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("worker-failure injection relies on fork inheriting the patch")

        if transport == "queue":
            monkeypatch.setattr(parallel_module, "_worker_ingest", _instantly_dead_worker)
        else:
            monkeypatch.setattr(parallel_module, "shm_worker", _instantly_dead_worker_shm)
        pairs = [(index % 40, index) for index in range(20_000)]
        with pytest.raises(WorkerIngestError):
            parallel_ingest(
                GraphStream(pairs), method="FreeRS", config=_CONFIG,
                expected_users=_USERS, workers=2, chunk_size=256,
                transport=transport,
            )


def _exploding_worker(method, config, expected_users, shards, chunk_queue):
    chunk_queue.get()
    raise ValueError("worker exploded")


def _exploding_worker_shm(
    method, config, expected_users, shards, shm_name, slot_size,
    free_queue, ready_queue, result_queue,
):
    # Mimics the real shm worker's error reporting (there is no Future to
    # ship the exception, so it travels through the result queue).
    import sys
    import traceback

    ready_queue.get()
    try:
        raise ValueError("worker exploded")
    except ValueError as error:
        result_queue.put(("error", traceback.format_exc(), repr(error)))
        sys.exit(1)


def _instantly_dead_worker(method, config, expected_users, shards, chunk_queue):
    raise ValueError("worker dead on arrival")


def _instantly_dead_worker_shm(
    method, config, expected_users, shards, shm_name, slot_size,
    free_queue, ready_queue, result_queue,
):
    # Dies without posting anything: the coordinator must detect the dead
    # process (exit code, empty result queue) instead of hanging.
    raise SystemExit(3)
