"""Smoke-test the lint engine against its own fixture corpus.

CI (and anyone touching ``repro.lint``) runs this to prove the shipped
checker set still produces *exactly* the expected findings over
``tests/lint_fixtures/`` — every firing fixture its precise per-rule
count, every clean and suppressed fixture zero findings with zero
hygiene residue.  A checker that silently stops firing (or starts
over-firing) fails here with a one-line diff per fixture, before any
real tree is linted with it.

Usage: ``PYTHONPATH=src python scripts/lint_selftest.py``
"""

from __future__ import annotations

import sys
import tempfile
from collections import Counter
from pathlib import Path

from repro.lint import run_lint

FIXTURES = Path(__file__).resolve().parents[1] / "tests" / "lint_fixtures"

#: case -> exact per-rule finding counts in strict mode (empty: silent).
EXPECTED: dict[str, dict[str, int]] = {
    "rl000_clean.py": {},
    "rl000_firing.py": {"RL000": 2},
    "rl001_clean.py": {},
    "rl001_firing.py": {"RL001": 1},
    "rl001_suppressed.py": {},
    "rl002_clean.py": {},
    "rl002_firing.py": {"RL002": 3},
    "rl002_suppressed.py": {},
    "rl003_clean.py": {},
    "rl003_firing.py": {"RL003": 2},
    "rl003_firing_marked.py": {"RL003": 1},
    "rl003_suppressed.py": {},
    "rl004_clean": {},
    "rl004_firing": {"RL004": 4},
    "rl004_suppressed": {},
    "rl005_clean.py": {},
    "rl005_firing.py": {"RL005": 4},
    "rl005_suppressed.py": {},
    "rl006_clean": {},
    "rl006_firing": {"RL006": 1},
    "rl006_suppressed": {},
    "rl007_clean.py": {},
    "rl007_firing.py": {"RL007": 2},
    "rl007_suppressed.py": {},
    "rl008_clean.py": {},
    "rl008_firing.py": {"RL008": 2},
    "rl008_suppressed.py": {},
    "rl009_clean.py": {},
    "rl009_firing.py": {"RL009": 3},
    "rl009_suppressed.py": {},
    "rl010_clean.py": {},
    "rl010_firing.py": {"RL010": 2},
    "rl010_suppressed.py": {},
}


def deploy(case: Path, root: Path) -> None:
    """Materialise one fixture (file or directory) under ``root``."""
    (root / "src" / "repro").mkdir(parents=True)  # the repo-root marker
    files = [case] if case.is_file() else sorted(case.glob("*.py"))
    for file in files:
        text = file.read_text(encoding="utf-8")
        header = text.splitlines()[0]
        if not header.startswith("# dest:"):
            raise SystemExit(f"{file} lacks a '# dest:' header")
        dest = root / header.split(":", 1)[1].strip()
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(text, encoding="utf-8")


def lint_counts(case: Path) -> dict[str, int]:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "repo"
        deploy(case, root)
        result = run_lint([root], root=root)
        return dict(Counter(f.rule for f in result.reportable(strict=True)))


def main() -> int:
    cases = sorted(
        path.name for path in FIXTURES.iterdir() if path.name != "__pycache__"
    )
    missing = sorted(set(cases) - set(EXPECTED))
    untracked = sorted(set(EXPECTED) - set(cases))
    failures = []
    if missing:
        failures.append(f"fixtures without an expected-count entry: {missing}")
    if untracked:
        failures.append(f"expected-count entries without a fixture: {untracked}")
    for case in cases:
        if case not in EXPECTED:
            continue
        actual = lint_counts(FIXTURES / case)
        expected = EXPECTED[case]
        status = "ok" if actual == expected else "MISMATCH"
        print(f"{case:28s} expected={expected or '{}'} actual={actual or '{}'} {status}")
        if actual != expected:
            failures.append(f"{case}: expected {expected}, got {actual}")
    if failures:
        print("\nlint_selftest: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nlint_selftest: {len(cases)} fixtures, all counts exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
