#!/usr/bin/env python
"""End-to-end smoke of the estimate-serving layer (the CI ``serve-smoke`` job).

Drives the real ``repro.cli serve`` process over a generated dataset and
asserts the acceptance contract of the service layer:

1. client ``batch_spread`` / ``topk`` answers received *while ingest is
   running* are identical to a direct :class:`SpreaderMonitor` replayed to
   the exact ingest offset each response was stamped with — including at
   least one answer before and one after an epoch rotation;
2. after the server is hard-killed (SIGKILL), a second server resumed from
   its snapshot directory answers identically to a direct restore of the
   same checkpoint.

Run from the repository root: ``python scripts/serve_smoke.py [workdir]``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.monitor import MonitorSpec, SnapshotStore  # noqa: E402
from repro.runtime import batch_slices  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.streams.io import read_edge_file  # noqa: E402

BATCH_SIZE = 200
EPOCH_PAIRS = 400
MEMORY_BITS = 1 << 14
WINDOW_EPOCHS = 4
TOP_K = 10
RATE = 4000.0  # pairs/second: slow enough to query mid-ingest, fast enough for CI

SERVE_FLAGS = [
    "--method", "FreeRS",
    "--memory-bits", str(MEMORY_BITS),
    "--epoch-pairs", str(EPOCH_PAIRS),
    "--window", str(WINDOW_EPOCHS),
    "--top-k", str(TOP_K),
    "--batch-size", str(BATCH_SIZE),
]


def _spawn_serve(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *args],
        stdout=subprocess.PIPE,
        text=True,
        cwd=cwd,
        env=env,
    )
    deadline = time.monotonic() + 60.0
    while True:
        line = process.stdout.readline()
        if not line:
            raise SystemExit("serve process exited before announcing readiness")
        if line.startswith("#"):
            continue
        record = json.loads(line)
        if record.get("type") == "serving":
            return process, record["port"]
        if time.monotonic() > deadline:
            raise SystemExit("timed out waiting for the serving announcement")


def _replica_at(stream, offset):
    """A direct monitor replayed to ``offset`` pairs — the ground truth."""
    timestamps = stream.timestamps() if stream.has_timestamps else None
    monitor = MonitorSpec(
        method="FreeRS",
        memory_bits=MEMORY_BITS,
        expected_users=max(1, stream.user_count),
        epoch_pairs=EPOCH_PAIRS,
        window_epochs=WINDOW_EPOCHS,
        top_k=TOP_K,
        delta=5e-3,
    ).build()
    pairs = stream.pairs()
    times = None if timestamps is None else timestamps[:offset]
    for chunk, chunk_times in batch_slices(pairs[:offset], times, BATCH_SIZE):
        monitor.observe(chunk, chunk_times)
    return monitor


def _check(condition, message):
    if not condition:
        raise SystemExit(f"serve-smoke FAILED: {message}")


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    workdir.mkdir(parents=True, exist_ok=True)
    dataset = workdir / "serve-smoke.tsv"
    snapshot_dir = workdir / "snaps"

    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "generate-dataset", "chicago",
         str(dataset), "--scale", "0.02"],
        check=True,
        env=env,
    )
    stream = read_edge_file(dataset)
    print(f"dataset: {len(stream)} pairs, {stream.user_count} users")

    process, port = _spawn_serve(
        [str(dataset), *SERVE_FLAGS, "--rate", str(RATE),
         "--snapshot-dir", str(snapshot_dir), "--snapshot-every", "2"],
        cwd=workdir,
    )
    try:
        observed = []  # (offset, probe answers, topk answer)
        probe_users = sorted({user for user, _ in stream.pairs()[:400]})[:8]
        with ServiceClient(port=port, timeout=30.0) as client:
            while True:
                values = client.batch_spread(probe_users)
                offset = client.last_pairs_ingested
                top = client.topk(TOP_K)
                top_offset = client.last_pairs_ingested
                if offset == top_offset:  # same snapshot answered both
                    observed.append((offset, values, top))
                stats = client.stats()
                if stats.get("ingest", {}).get("finished"):
                    break
                time.sleep(0.05)
            final = client.stats()
            print(
                f"queried {len(observed)} consistent states during ingest; "
                f"final: {final['pairs_ingested']} pairs, "
                f"{final['epochs_started']} epochs"
            )
        # Deduplicate by offset; ground-truth each observed state.
        states = {offset: (values, top) for offset, values, top in observed}
        epochs_seen = set()
        for offset, (values, top) in sorted(states.items()):
            replica = _replica_at(stream, offset)
            epochs_seen.add(replica.window.epochs_started)
            estimates = replica.last_window_estimates()
            expected = [float(estimates.get(user, 0.0)) for user in probe_users]
            _check(
                values == expected,
                f"batch_spread diverged from the direct monitor at offset {offset}",
            )
            _check(
                top == [(user, value) for user, value in replica.current_top],
                f"topk diverged from the direct monitor at offset {offset}",
            )
        _check(
            len(epochs_seen) >= 2,
            "never caught answers on both sides of an epoch rotation "
            f"(epochs seen: {sorted(epochs_seen)}); lower RATE",
        )
        print(f"states verified at offsets {sorted(states)}; epochs {sorted(epochs_seen)}")
    finally:
        process.kill()  # SIGKILL: the resume below must rely on snapshots alone
        process.wait()

    # -- killed server resumes from its snapshot and answers identically ------
    store = SnapshotStore(snapshot_dir)
    latest = store.latest()
    _check(latest is not None, "no snapshot was written before the kill")
    direct = store.restore()
    estimates = direct.last_window_estimates()
    probe = list(estimates)[:8]

    process, port = _spawn_serve(
        ["--snapshot-dir", str(snapshot_dir), "--resume"], cwd=workdir
    )
    try:
        with ServiceClient(port=port, timeout=30.0) as client:
            resumed_stats = client.stats()
            _check(
                resumed_stats["pairs_ingested"] == direct.window.pairs_ingested,
                "resumed server is at a different ingest offset than the snapshot",
            )
            _check(
                client.batch_spread(probe) == [float(estimates[user]) for user in probe],
                "resumed batch_spread diverged from the direct snapshot restore",
            )
            ranked = sorted(estimates.items(), key=lambda pair: pair[1], reverse=True)
            _check(
                client.topk(TOP_K) == [(u, float(v)) for u, v in ranked[:TOP_K]],
                "resumed topk diverged from the direct snapshot restore",
            )
        print(
            f"kill/resume verified from {latest.name} at pair "
            f"{direct.window.pairs_ingested}"
        )
    finally:
        process.kill()
        process.wait()

    print("serve-smoke PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
