#!/usr/bin/env python
"""End-to-end smoke of the estimate-serving layer (the CI ``serve-smoke`` job).

Drives the real ``repro.cli serve`` process over a generated dataset and
asserts the acceptance contract of the service layer:

1. client ``batch_spread`` / ``topk`` answers received *while ingest is
   running* are identical to a direct :class:`SpreaderMonitor` replayed to
   the exact ingest offset each response was stamped with — including at
   least one answer before and one after an epoch rotation;
2. the telemetry layer tells the truth: the ``metrics`` op's request
   counters match the number of requests this script issued, the latency
   histograms are populated, and the Prometheus endpoint
   (``--metrics-port``) exports the same values;
3. after the server is hard-killed (SIGKILL), a second server resumed from
   its snapshot directory answers identically to a direct restore of the
   same checkpoint.

Run from the repository root: ``python scripts/serve_smoke.py [workdir]``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.monitor import MonitorSpec, SnapshotStore  # noqa: E402
from repro.runtime import batch_slices  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.streams.io import read_edge_file  # noqa: E402

BATCH_SIZE = 200
EPOCH_PAIRS = 400
MEMORY_BITS = 1 << 14
WINDOW_EPOCHS = 4
TOP_K = 10
RATE = 4000.0  # pairs/second: slow enough to query mid-ingest, fast enough for CI

SERVE_FLAGS = [
    "--method", "FreeRS",
    "--memory-bits", str(MEMORY_BITS),
    "--epoch-pairs", str(EPOCH_PAIRS),
    "--window", str(WINDOW_EPOCHS),
    "--top-k", str(TOP_K),
    "--batch-size", str(BATCH_SIZE),
]


def _spawn_serve(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *args],
        stdout=subprocess.PIPE,
        text=True,
        cwd=cwd,
        env=env,
    )
    deadline = time.monotonic() + 60.0
    while True:
        line = process.stdout.readline()
        if not line:
            raise SystemExit("serve process exited before announcing readiness")
        if line.startswith("#"):
            continue
        record = json.loads(line)
        if record.get("type") == "serving":
            return process, record
        if time.monotonic() > deadline:
            raise SystemExit("timed out waiting for the serving announcement")


def _replica_at(stream, offset):
    """A direct monitor replayed to ``offset`` pairs — the ground truth."""
    timestamps = stream.timestamps() if stream.has_timestamps else None
    monitor = MonitorSpec(
        method="FreeRS",
        memory_bits=MEMORY_BITS,
        expected_users=max(1, stream.user_count),
        epoch_pairs=EPOCH_PAIRS,
        window_epochs=WINDOW_EPOCHS,
        top_k=TOP_K,
        delta=5e-3,
    ).build()
    pairs = stream.pairs()
    times = None if timestamps is None else timestamps[:offset]
    for chunk, chunk_times in batch_slices(pairs[:offset], times, BATCH_SIZE):
        monitor.observe(chunk, chunk_times)
    return monitor


def _check(condition, message):
    if not condition:
        raise SystemExit(f"serve-smoke FAILED: {message}")


def _metric(snapshot, name, **labels):
    """One instrument dict from a ``metrics`` op snapshot, or None."""
    wanted = {key: str(value) for key, value in labels.items()}
    for metric in snapshot:
        if metric["name"] == name and metric["labels"] == wanted:
            return metric
    return None


def _verify_telemetry(client, metrics_port, issued):
    """Assert the metrics op and the Prometheus endpoint report the truth."""
    from urllib.request import urlopen

    snapshot = client.metrics()
    for op, count in issued.items():
        requests = _metric(
            snapshot, "service.requests", op=op, transport="ndjson", status="ok"
        )
        _check(
            requests is not None and requests["value"] == count,
            f"metrics op reports {requests and requests['value']} ok "
            f"{op} requests; this script issued {count}",
        )
        latency = _metric(snapshot, "service.request_seconds", op=op)
        _check(
            latency is not None and latency["count"] == count,
            f"latency histogram for {op} observed "
            f"{latency and latency['count']} spans, expected {count}",
        )
        _check(
            sum(latency["counts"]) == latency["count"],
            f"latency histogram buckets for {op} do not sum to its count",
        )
    queries = _metric(snapshot, "service.queries")
    _check(
        queries is not None and queries["value"] >= sum(issued.values()),
        "service.queries is below the number of requests this script issued",
    )
    batches = _metric(snapshot, "ingest.background.batches")
    _check(
        batches is not None and batches["value"] > 0,
        "background ingest progress counters never moved",
    )

    # The Prometheus endpoint must export the same counts.  Nothing issues
    # counted ops between the snapshot above and this scrape, so the values
    # must match exactly, not merely be close.
    with urlopen(f"http://127.0.0.1:{metrics_port}/metrics", timeout=10.0) as reply:
        _check(
            "text/plain" in reply.headers.get("Content-Type", ""),
            "Prometheus endpoint served an unexpected content type",
        )
        exposition = reply.read().decode("utf-8")
    for op, count in issued.items():
        wanted = (
            f'freesketch_service_requests_total{{op="{op}",status="ok",'
            f'transport="ndjson"}} {count}'
        )
        _check(
            wanted in exposition,
            f"Prometheus exposition is missing the line {wanted!r}",
        )
    _check(
        "# TYPE freesketch_service_request_seconds histogram" in exposition,
        "Prometheus exposition is missing the latency histogram type line",
    )
    print(
        f"telemetry verified: {issued} requests counted on both the metrics "
        f"op and the Prometheus endpoint (port {metrics_port})"
    )


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    workdir.mkdir(parents=True, exist_ok=True)
    dataset = workdir / "serve-smoke.tsv"
    snapshot_dir = workdir / "snaps"

    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "generate-dataset", "chicago",
         str(dataset), "--scale", "0.02"],
        check=True,
        env=env,
    )
    stream = read_edge_file(dataset)
    print(f"dataset: {len(stream)} pairs, {stream.user_count} users")

    process, serving = _spawn_serve(
        [str(dataset), *SERVE_FLAGS, "--rate", str(RATE),
         "--snapshot-dir", str(snapshot_dir), "--snapshot-every", "2",
         "--metrics-port", "0"],
        cwd=workdir,
    )
    port = serving["port"]
    metrics_port = serving.get("metrics_port")
    _check(metrics_port, "serving record did not announce a metrics_port")
    try:
        observed = []  # (offset, probe answers, topk answer)
        issued = {"batch_spread": 0, "topk": 0, "stats": 0}
        probe_users = sorted({user for user, _ in stream.pairs()[:400]})[:8]
        with ServiceClient(port=port, timeout=30.0) as client:
            while True:
                values = client.batch_spread(probe_users)
                issued["batch_spread"] += 1
                offset = client.last_pairs_ingested
                top = client.topk(TOP_K)
                issued["topk"] += 1
                top_offset = client.last_pairs_ingested
                if offset == top_offset:  # same snapshot answered both
                    observed.append((offset, values, top))
                stats = client.stats()
                issued["stats"] += 1
                if stats.get("ingest", {}).get("finished"):
                    break
                time.sleep(0.05)
            final = client.stats()
            issued["stats"] += 1
            print(
                f"queried {len(observed)} consistent states during ingest; "
                f"final: {final['pairs_ingested']} pairs, "
                f"{final['epochs_started']} epochs"
            )
            _verify_telemetry(client, metrics_port, issued)
        # Deduplicate by offset; ground-truth each observed state.
        states = {offset: (values, top) for offset, values, top in observed}
        epochs_seen = set()
        for offset, (values, top) in sorted(states.items()):
            replica = _replica_at(stream, offset)
            epochs_seen.add(replica.window.epochs_started)
            estimates = replica.last_window_estimates()
            expected = [float(estimates.get(user, 0.0)) for user in probe_users]
            _check(
                values == expected,
                f"batch_spread diverged from the direct monitor at offset {offset}",
            )
            _check(
                top == [(user, value) for user, value in replica.current_top],
                f"topk diverged from the direct monitor at offset {offset}",
            )
        _check(
            len(epochs_seen) >= 2,
            "never caught answers on both sides of an epoch rotation "
            f"(epochs seen: {sorted(epochs_seen)}); lower RATE",
        )
        print(f"states verified at offsets {sorted(states)}; epochs {sorted(epochs_seen)}")
    finally:
        process.kill()  # SIGKILL: the resume below must rely on snapshots alone
        process.wait()

    # -- killed server resumes from its snapshot and answers identically ------
    store = SnapshotStore(snapshot_dir)
    latest = store.latest()
    _check(latest is not None, "no snapshot was written before the kill")
    direct = store.restore()
    estimates = direct.last_window_estimates()
    probe = list(estimates)[:8]

    process, serving = _spawn_serve(
        ["--snapshot-dir", str(snapshot_dir), "--resume"], cwd=workdir
    )
    port = serving["port"]
    try:
        with ServiceClient(port=port, timeout=30.0) as client:
            resumed_stats = client.stats()
            _check(
                resumed_stats["pairs_ingested"] == direct.window.pairs_ingested,
                "resumed server is at a different ingest offset than the snapshot",
            )
            _check(
                client.batch_spread(probe) == [float(estimates[user]) for user in probe],
                "resumed batch_spread diverged from the direct snapshot restore",
            )
            ranked = sorted(estimates.items(), key=lambda pair: pair[1], reverse=True)
            _check(
                client.topk(TOP_K) == [(u, float(v)) for u, v in ranked[:TOP_K]],
                "resumed topk diverged from the direct snapshot restore",
            )
        print(
            f"kill/resume verified from {latest.name} at pair "
            f"{direct.window.pairs_ingested}"
        )
    finally:
        process.kill()
        process.wait()

    print("serve-smoke PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
