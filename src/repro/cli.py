"""Command-line interface of the reproduction.

Three subcommands:

``freesketch list-experiments``
    Show the identifiers of every reproducible table/figure/ablation.

``freesketch run-experiment <id> [--preset quick|default|full] [--csv out.csv]``
    Run one experiment and print its result table (optionally also as CSV).

``freesketch generate-dataset <name> <path> [--scale S]``
    Materialise a dataset stand-in to an edge-list file (so the same stream
    can be replayed by external tools).

``freesketch estimate <edge-file> [--method FreeRS] [--memory-bits N] [--top K]
[--engine {scalar,batch}] [--shards K] [--chunk-size N]``
    Run one estimator over an edge-list file and print the top-K users by
    estimated cardinality — a minimal "use it on your own data" entry point.

``freesketch run <edge-file> [--method FreeRS] [--memory-bits N] [--workers W]
[--shards K] [--chunk-size N] [--top K] [--json out.json]``
    Ingest an edge-list file through the parallel runtime
    (:mod:`repro.runtime`): users are partitioned across ``--workers``
    processes, each replaying the vectorised batch path over its shard set,
    and the per-worker sketches are merged into one estimator.  For a fixed
    ``--shards K`` the estimates are **bit-identical** for every worker
    count (``--workers 4`` reproduces the single-process ``--workers 1
    --shards 4`` run exactly); ``--json`` writes the full-precision estimate
    map so two runs can be diffed.

``freesketch monitor <edge-file> [--method ...] [--epoch-pairs N | --epoch-span S]
[--window W] [--delta D | --threshold T] [--out feed.jsonl]
[--snapshot-dir DIR] [--snapshot-every N] [--resume] [--rate R]``
    Replay a dataset through the continuous monitoring subsystem
    (:mod:`repro.monitor`): epoch-rotating windowed sketches, sliding-window
    top-k spreader tracking, hysteresis alerts, and periodic state
    snapshots.  Emits a JSONL feed of window estimates and alert events to
    stdout and (append-mode) to ``--out``.  ``--resume`` restores the latest
    snapshot from ``--snapshot-dir`` and fast-forwards the stream past the
    pairs it already saw — the kill/restore story for long replays.

    ``--engine`` selects the update path: ``batch`` (default) replays the
    stream in vectorised chunks through the engine layer, ``scalar`` feeds
    pairs one by one (the paper's streaming model).  Both produce
    bit-identical estimates; batch is simply faster.  ``--chunk-size``
    overrides the batch chunk length (default 8192 pairs).

    ``--shards K`` partitions users across K independent sub-sketches
    (:class:`repro.engine.ShardedEstimator`), each with 1/K of the memory
    budget — the scale-out configuration for multi-worker replay.

``freesketch serve [edge-file] [--port P] [--refresh-every N] [monitor flags]
[--snapshot-dir DIR] [--snapshot-every N] [--resume] [--rate R]
[--metrics-port P]``
    Serve live spread-estimate queries (``spread`` / ``batch_spread`` /
    ``topk`` / ``sliding`` / ``stats`` / ``metrics``) over a
    newline-delimited-JSON TCP protocol (:mod:`repro.service`) while a
    background thread ingests the edge-list file through a
    :class:`~repro.monitor.spreader.SpreaderMonitor`.
    Queries answer from a versioned read snapshot refreshed every
    ``--refresh-every`` batches, so concurrent readers never block ingest.
    With ``--snapshot-dir --resume`` the monitor is restored from the latest
    checkpoint first; without an edge file the restored state is served
    statically.  Readiness (and the bound port, with the default ``--port
    0``) is announced as a ``{"type": "serving", ...}`` JSONL record on
    stdout.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import DESCRIPTIONS, list_experiments, run_experiment
from repro.registry import METHOD_ORDER, build
from repro.streams.datasets import DATASETS, dataset_names
from repro.streams.io import read_edge_file, write_edge_file


def _config_from_preset(preset: str) -> ExperimentConfig:
    presets = {
        "quick": ExperimentConfig.quick,
        "default": ExperimentConfig,
        "full": ExperimentConfig.full,
    }
    try:
        return presets[preset]()
    except KeyError:
        raise SystemExit(f"unknown preset {preset!r}; choose from {sorted(presets)}") from None


def _cmd_list_experiments(_: argparse.Namespace) -> int:
    for name in list_experiments():
        print(f"{name:28s} {DESCRIPTIONS.get(name, '')}")
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    config = _config_from_preset(args.preset)
    table = run_experiment(args.experiment, config)
    print(table.render())
    if args.csv:
        table.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_generate_dataset(args: argparse.Namespace) -> int:
    if args.dataset not in DATASETS:
        raise SystemExit(f"unknown dataset {args.dataset!r}; choose from {dataset_names()}")
    stream = DATASETS[args.dataset].load(scale=args.scale)
    count = write_edge_file(
        args.path,
        stream,
        header=f"synthetic stand-in for {args.dataset} (scale={args.scale})",
    )
    print(f"wrote {count} edges to {args.path}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    if args.chunk_size is not None and args.chunk_size <= 0:
        raise SystemExit("--chunk-size must be positive")
    stream = read_edge_file(args.path)
    config = ExperimentConfig(memory_bits=args.memory_bits)
    try:
        estimator = build(
            args.method,
            config,
            expected_users=max(1, stream.user_count),
            shards=args.shards,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    if args.engine == "batch":
        estimator.process(stream, chunk_size=args.chunk_size)
    else:
        for user, item in stream:
            estimator.update(user, item)
    ranked = sorted(estimator.estimates().items(), key=lambda pair: pair[1], reverse=True)
    print(
        f"method={args.method} engine={args.engine} shards={args.shards} "
        f"memory_bits={args.memory_bits} users={stream.user_count}"
    )
    print("user\testimated_cardinality")
    for user, estimate in ranked[: args.top]:
        print(f"{user}\t{estimate:.1f}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro.runtime import parallel_ingest

    if args.chunk_size is not None and args.chunk_size <= 0:
        raise SystemExit("--chunk-size must be positive")
    stream = read_edge_file(args.path)
    config = ExperimentConfig(memory_bits=args.memory_bits, seed=args.seed)
    try:
        report = parallel_ingest(
            stream,
            method=args.method,
            config=config,
            expected_users=max(1, stream.user_count),
            workers=args.workers,
            shards=args.shards,
            chunk_size=args.chunk_size,
            transport=args.transport,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    estimates = report.estimates()
    if args.json:
        # Full-precision payload keyed by stringified user id, sorted, so two
        # runs of equal (config, shards) diff clean regardless of --workers.
        payload = {str(user): estimate for user, estimate in estimates.items()}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
    print(
        f"method={args.method} workers={report.workers} shards={report.shards} "
        f"memory_bits={args.memory_bits} pairs={report.pairs} "
        f"seconds={report.seconds:.3f} pairs_per_sec={report.pairs_per_second:.0f}"
    )
    ranked = sorted(estimates.items(), key=lambda pair: pair[1], reverse=True)
    print("user\testimated_cardinality")
    for user, estimate in ranked[: args.top]:
        print(f"{user}\t{estimate:.1f}")
    return 0


def _monitor_spec_from_args(args: argparse.Namespace, stream) -> object:
    """Build the MonitorSpec shared by the ``monitor`` and ``serve`` commands.

    One home for the epoch-mode and threshold validation and the delta
    default, so the two commands cannot drift apart.
    """
    from repro.monitor import MonitorSpec

    if (args.epoch_pairs is None) == (args.epoch_span is None):
        raise SystemExit("set exactly one of --epoch-pairs or --epoch-span")
    if args.delta is not None and args.threshold is not None:
        raise SystemExit("set at most one of --delta or --threshold")
    delta = args.delta
    if delta is None and args.threshold is None:
        delta = 5e-3
    return MonitorSpec(
        method=args.method,
        memory_bits=args.memory_bits,
        seed=args.seed,
        expected_users=max(1, stream.user_count),
        shards=args.shards,
        epoch_pairs=args.epoch_pairs,
        epoch_span=args.epoch_span,
        window_epochs=args.window,
        top_k=args.top_k,
        delta=delta,
        threshold=args.threshold,
        hysteresis=args.hysteresis,
    )


def _restore_monitor_for_resume(args: argparse.Namespace, snapshot_store):
    """Shared ``--resume`` path: restore the latest checkpoint or exit clearly."""
    from repro.monitor import SnapshotError

    if snapshot_store is None:
        raise SystemExit("--resume requires --snapshot-dir")
    try:
        monitor = snapshot_store.restore()
    except SnapshotError as error:
        # A missing or truncated checkpoint must not start a silent fresh
        # replay (double-counting the stream) or dump a JSON-layer
        # traceback; name the file and the way out, exit non-zero.
        raise SystemExit(f"--resume failed: {error}") from None
    print(
        f"# resumed from {snapshot_store.latest()} at pair "
        f"{monitor.window.pairs_ingested}",
        flush=True,
    )
    print(
        "# note: monitor configuration comes from the snapshot's spec; "
        "method/window/threshold flags on this command line are ignored",
        flush=True,
    )
    return monitor


def _cmd_monitor(args: argparse.Namespace) -> int:
    import json

    from repro.monitor import SnapshotStore, replay_feed

    stream = read_edge_file(args.path)
    timestamps = stream.timestamps() if stream.has_timestamps else None
    snapshot_store = SnapshotStore(args.snapshot_dir) if args.snapshot_dir else None
    if args.snapshot_every and snapshot_store is None:
        raise SystemExit("--snapshot-every requires --snapshot-dir")

    monitor = None
    skip_pairs = 0
    if args.resume:
        monitor = _restore_monitor_for_resume(args, snapshot_store)
        skip_pairs = monitor.window.pairs_ingested
    if monitor is None:
        monitor = _monitor_spec_from_args(args, stream).build()

    out_handle = open(args.out, "a", encoding="utf-8") if args.out else None
    stdout_open = True
    try:
        for record in replay_feed(
            monitor,
            stream.pairs(),
            timestamps=timestamps,
            batch_size=args.batch_size,
            rate=args.rate,
            snapshot_store=snapshot_store,
            snapshot_every=args.snapshot_every,
            skip_pairs=skip_pairs,
        ):
            line = json.dumps(record)
            if stdout_open:
                try:
                    print(line, flush=True)
                except BrokenPipeError:
                    # Feed piped into head/grep that stopped reading: keep the
                    # replay (and the --out file / snapshots) going silently.
                    # Point stdout at devnull so the interpreter's exit-time
                    # flush does not trip over the closed pipe again.
                    stdout_open = False
                    import os

                    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            if out_handle is not None:
                out_handle.write(line + "\n")
    finally:
        if out_handle is not None:
            out_handle.close()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Same parsed namespace, same runner as ``python -m repro.lint`` — the
    # flag sets cannot drift because both come from add_lint_arguments().
    from repro.lint import run_from_args

    return run_from_args(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.monitor import SnapshotStore
    from repro.service import serve_monitor

    if args.path is None and not args.resume:
        raise SystemExit(
            "serve needs a stream to ingest (an edge-list file) and/or a "
            "checkpoint to restore (--snapshot-dir with --resume)"
        )
    if args.refresh_every <= 0:
        raise SystemExit("--refresh-every must be positive")
    snapshot_store = SnapshotStore(args.snapshot_dir) if args.snapshot_dir else None
    if args.snapshot_every and snapshot_store is None:
        raise SystemExit("--snapshot-every requires --snapshot-dir")

    monitor = None
    if args.resume:
        monitor = _restore_monitor_for_resume(args, snapshot_store)

    pairs = None
    timestamps = None
    if args.path is not None:
        stream = read_edge_file(args.path)
        pairs = stream.pairs()
        timestamps = stream.timestamps() if stream.has_timestamps else None
        if monitor is None:
            monitor = _monitor_spec_from_args(args, stream).build()

    def announce(record):
        print(json.dumps(record), flush=True)

    try:
        asyncio.run(
            serve_monitor(
                monitor,
                pairs=pairs,
                timestamps=timestamps,
                host=args.host,
                port=args.port,
                batch_size=args.batch_size,
                rate=args.rate,
                refresh_every=args.refresh_every,
                snapshot_store=snapshot_store,
                snapshot_every=args.snapshot_every,
                announce=announce,
                metrics_port=args.metrics_port,
            )
        )
    except KeyboardInterrupt:
        print("# interrupted; server closed", flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="freesketch",
        description="Reproduction of FreeBS/FreeRS (Wang et al., ICDE 2019).",
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=["debug", "info", "warning", "error"],
        help="runtime log verbosity on stderr (default warning)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit runtime logs as one JSON object per line instead of "
        "human-readable key=value lines",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list-experiments", help="list reproducible artefacts")
    list_parser.set_defaults(handler=_cmd_list_experiments)

    run_parser = subparsers.add_parser("run-experiment", help="run one experiment")
    run_parser.add_argument("experiment", choices=list_experiments())
    run_parser.add_argument("--preset", default="quick", choices=["quick", "default", "full"])
    run_parser.add_argument("--csv", default=None, help="also write the table to this CSV file")
    run_parser.set_defaults(handler=_cmd_run_experiment)

    generate_parser = subparsers.add_parser(
        "generate-dataset", help="materialise a dataset stand-in to an edge-list file"
    )
    generate_parser.add_argument("dataset", choices=dataset_names())
    generate_parser.add_argument("path")
    generate_parser.add_argument("--scale", type=float, default=0.1)
    generate_parser.set_defaults(handler=_cmd_generate_dataset)

    estimate_parser = subparsers.add_parser(
        "estimate", help="estimate per-user cardinalities of an edge-list file"
    )
    estimate_parser.add_argument("path")
    estimate_parser.add_argument("--method", default="FreeRS", choices=METHOD_ORDER)
    estimate_parser.add_argument("--memory-bits", type=int, default=1 << 20)
    estimate_parser.add_argument("--top", type=int, default=10)
    estimate_parser.add_argument(
        "--engine",
        default="batch",
        choices=["scalar", "batch"],
        help="update path: vectorised chunks (batch, default) or pair-by-pair "
        "(scalar); estimates are bit-identical either way",
    )
    estimate_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition users across this many independent sub-sketches "
        "(total memory budget is split evenly)",
    )
    estimate_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="pairs per vectorised chunk for --engine batch (default 8192)",
    )
    estimate_parser.set_defaults(handler=_cmd_estimate)

    run_ingest_parser = subparsers.add_parser(
        "run",
        help="ingest an edge-list file with the parallel runtime "
        "(multiprocess shard workers; bit-identical to a single-process run)",
    )
    run_ingest_parser.add_argument("path")
    run_ingest_parser.add_argument("--method", default="FreeRS", choices=METHOD_ORDER)
    run_ingest_parser.add_argument("--memory-bits", type=int, default=1 << 20)
    run_ingest_parser.add_argument("--seed", type=int, default=7)
    run_ingest_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="ingest processes; users are partitioned across the workers' "
        "shard sets and the per-worker sketches are merged at the end",
    )
    run_ingest_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count of the underlying sharded estimator "
        "(default: the worker count; must be >= --workers).  Runs with the "
        "same shard count produce bit-identical estimates for any --workers",
    )
    run_ingest_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="pairs per encoded chunk streamed to the workers (default 8192)",
    )
    run_ingest_parser.add_argument(
        "--transport",
        default="shm",
        choices=["shm", "queue"],
        help="chunk handoff to the workers: shared-memory slot rings (shm, "
        "default) or multiprocessing.Manager queues (queue); both are "
        "bit-identical, shm avoids the per-chunk pickle round-trip",
    )
    run_ingest_parser.add_argument("--top", type=int, default=10)
    run_ingest_parser.add_argument(
        "--json",
        default=None,
        help="also write the full-precision {user: estimate} map to this file",
    )
    run_ingest_parser.set_defaults(handler=_cmd_run)

    monitor_parser = subparsers.add_parser(
        "monitor",
        help="replay an edge-list file through the continuous monitoring subsystem",
    )
    monitor_parser.add_argument("path")
    _add_monitor_flags(monitor_parser)
    monitor_parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="throttle the replay to roughly this many pairs per second",
    )
    monitor_parser.add_argument(
        "--out", default=None, help="also append the JSONL feed to this file"
    )
    monitor_parser.set_defaults(handler=_cmd_monitor)

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve live spread-estimate queries over newline-delimited-JSON TCP "
        "while ingesting a stream in the background",
    )
    serve_parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="edge-list file to ingest while serving; omit to serve a restored "
        "checkpoint statically (requires --snapshot-dir --resume)",
    )
    _add_monitor_flags(serve_parser)
    serve_parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="throttle background ingest to roughly this many pairs per second",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to bind (default 0: pick a free port, announced on stdout)",
    )
    serve_parser.add_argument(
        "--refresh-every",
        type=int,
        default=1,
        help="re-export the read snapshot every N ingest batches (default 1; "
        "larger values trade answer freshness for ingest throughput)",
    )
    serve_parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="also serve the Prometheus text exposition of the metrics "
        "registry on this HTTP port (0: pick a free port; the bound port is "
        "announced in the serving record as metrics_port)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the repository's AST- and flow-based invariant checks (repro.lint)",
    )
    from repro.lint import add_lint_arguments

    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(handler=_cmd_lint)

    return parser


def _add_monitor_flags(parser: argparse.ArgumentParser) -> None:
    """Spec/replay/snapshot flags shared by ``monitor`` and ``serve``."""
    parser.add_argument("--method", default="FreeRS", choices=METHOD_ORDER)
    parser.add_argument("--memory-bits", type=int, default=1 << 18)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--shards", type=int, default=1, help="user-partitioned shards per epoch"
    )
    parser.add_argument(
        "--epoch-pairs",
        type=int,
        default=None,
        help="close an epoch after this many pairs (event-count rotation)",
    )
    parser.add_argument(
        "--epoch-span",
        type=float,
        default=None,
        help="close an epoch after this span of the arrival clock "
        "(timestamp rotation; files without a timestamp column use the event index)",
    )
    parser.add_argument(
        "--window", type=int, default=8, help="epochs retained for sliding-window queries"
    )
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument(
        "--delta",
        type=float,
        default=None,
        help="relative spreader threshold on the window total "
        "(default 5e-3 when --threshold is not given)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="absolute spreader threshold (mutually exclusive with --delta)",
    )
    parser.add_argument(
        "--hysteresis",
        type=float,
        default=0.2,
        help="exit threshold sits this fraction below the enter threshold",
    )
    parser.add_argument("--batch-size", type=int, default=2048)
    parser.add_argument(
        "--snapshot-dir", default=None, help="directory for monitor state snapshots"
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        help="checkpoint every N batches (requires --snapshot-dir)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore the latest snapshot from --snapshot-dir and continue",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    from repro.obs import configure_logging

    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(level=args.log_level, json_mode=args.log_json)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
