"""Command-line interface of the reproduction.

Three subcommands:

``freesketch list-experiments``
    Show the identifiers of every reproducible table/figure/ablation.

``freesketch run-experiment <id> [--preset quick|default|full] [--csv out.csv]``
    Run one experiment and print its result table (optionally also as CSV).

``freesketch generate-dataset <name> <path> [--scale S]``
    Materialise a dataset stand-in to an edge-list file (so the same stream
    can be replayed by external tools).

``freesketch estimate <edge-file> [--method FreeRS] [--memory-bits N] [--top K]
[--engine {scalar,batch}] [--shards K] [--chunk-size N]``
    Run one estimator over an edge-list file and print the top-K users by
    estimated cardinality — a minimal "use it on your own data" entry point.

    ``--engine`` selects the update path: ``batch`` (default) replays the
    stream in vectorised chunks through the engine layer, ``scalar`` feeds
    pairs one by one (the paper's streaming model).  Both produce
    bit-identical estimates; batch is simply faster.  ``--chunk-size``
    overrides the batch chunk length (default 8192 pairs).

    ``--shards K`` partitions users across K independent sub-sketches
    (:class:`repro.engine.ShardedEstimator`), each with 1/K of the memory
    budget — the scale-out configuration for multi-worker replay.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.estimators import METHOD_ORDER, build_estimators
from repro.experiments.runner import DESCRIPTIONS, list_experiments, run_experiment
from repro.streams.datasets import DATASETS, dataset_names
from repro.streams.io import read_edge_file, write_edge_file


def _config_from_preset(preset: str) -> ExperimentConfig:
    presets = {
        "quick": ExperimentConfig.quick,
        "default": ExperimentConfig,
        "full": ExperimentConfig.full,
    }
    try:
        return presets[preset]()
    except KeyError:
        raise SystemExit(f"unknown preset {preset!r}; choose from {sorted(presets)}") from None


def _cmd_list_experiments(_: argparse.Namespace) -> int:
    for name in list_experiments():
        print(f"{name:28s} {DESCRIPTIONS.get(name, '')}")
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    config = _config_from_preset(args.preset)
    table = run_experiment(args.experiment, config)
    print(table.render())
    if args.csv:
        table.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_generate_dataset(args: argparse.Namespace) -> int:
    if args.dataset not in DATASETS:
        raise SystemExit(f"unknown dataset {args.dataset!r}; choose from {dataset_names()}")
    stream = DATASETS[args.dataset].load(scale=args.scale)
    count = write_edge_file(
        args.path,
        stream,
        header=f"synthetic stand-in for {args.dataset} (scale={args.scale})",
    )
    print(f"wrote {count} edges to {args.path}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    if args.chunk_size is not None and args.chunk_size <= 0:
        raise SystemExit("--chunk-size must be positive")
    stream = read_edge_file(args.path)
    config = ExperimentConfig(memory_bits=args.memory_bits)
    try:
        estimators = build_estimators(
            config,
            expected_users=max(1, stream.user_count),
            methods=[args.method],
            shards=args.shards,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    estimator = estimators[args.method]
    if args.engine == "batch":
        estimator.process(stream, chunk_size=args.chunk_size)
    else:
        for user, item in stream:
            estimator.update(user, item)
    ranked = sorted(estimator.estimates().items(), key=lambda pair: pair[1], reverse=True)
    print(
        f"method={args.method} engine={args.engine} shards={args.shards} "
        f"memory_bits={args.memory_bits} users={stream.user_count}"
    )
    print("user\testimated_cardinality")
    for user, estimate in ranked[: args.top]:
        print(f"{user}\t{estimate:.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="freesketch",
        description="Reproduction of FreeBS/FreeRS (Wang et al., ICDE 2019).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list-experiments", help="list reproducible artefacts")
    list_parser.set_defaults(handler=_cmd_list_experiments)

    run_parser = subparsers.add_parser("run-experiment", help="run one experiment")
    run_parser.add_argument("experiment", choices=list_experiments())
    run_parser.add_argument("--preset", default="quick", choices=["quick", "default", "full"])
    run_parser.add_argument("--csv", default=None, help="also write the table to this CSV file")
    run_parser.set_defaults(handler=_cmd_run_experiment)

    generate_parser = subparsers.add_parser(
        "generate-dataset", help="materialise a dataset stand-in to an edge-list file"
    )
    generate_parser.add_argument("dataset", choices=dataset_names())
    generate_parser.add_argument("path")
    generate_parser.add_argument("--scale", type=float, default=0.1)
    generate_parser.set_defaults(handler=_cmd_generate_dataset)

    estimate_parser = subparsers.add_parser(
        "estimate", help="estimate per-user cardinalities of an edge-list file"
    )
    estimate_parser.add_argument("path")
    estimate_parser.add_argument("--method", default="FreeRS", choices=METHOD_ORDER)
    estimate_parser.add_argument("--memory-bits", type=int, default=1 << 20)
    estimate_parser.add_argument("--top", type=int, default=10)
    estimate_parser.add_argument(
        "--engine",
        default="batch",
        choices=["scalar", "batch"],
        help="update path: vectorised chunks (batch, default) or pair-by-pair "
        "(scalar); estimates are bit-identical either way",
    )
    estimate_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition users across this many independent sub-sketches "
        "(total memory budget is split evenly)",
    )
    estimate_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="pairs per vectorised chunk for --engine batch (default 8192)",
    )
    estimate_parser.set_defaults(handler=_cmd_estimate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
