"""Generic forward dataflow over :mod:`repro.lint.cfg` graphs.

An analysis supplies a join-semilattice of facts and a transfer function
over CFG elements; :func:`run_forward` iterates a worklist to the fixpoint
and hands back the fact flowing *into* every block.  Checkers then make a
single deterministic reporting pass (:meth:`ForwardAnalysis.report` per
reachable block, plus the facts at the two exits) — findings are never
emitted from inside the fixpoint, where a transfer can run many times.

Exception edges are the one asymmetry: an edge of kind ``exception`` out
of element ``E`` carries :meth:`ForwardAnalysis.exception_state`, which
defaults to the join of the pre- and post-state — if ``E`` raised, it may
have executed partially.  Analyses override it where the element's effect
is atomic-on-success (``f = open(...)``: if ``open`` raised, nothing was
bound, so only the pre-state escapes).

Facts must be immutable values with structural equality (frozensets,
tuples of pairs); the framework never mutates them.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from repro.lint.cfg import CFG, KIND_EXCEPTION, Element

State = TypeVar("State")


class ForwardAnalysis(Generic[State]):
    """One dataflow problem: initial fact, join, transfer."""

    def initial(self) -> State:
        """The fact at function entry."""
        raise NotImplementedError

    def join(self, left: State, right: State) -> State:
        """Least upper bound of two facts (control-flow merge)."""
        raise NotImplementedError

    def transfer(self, element: Element, state: State) -> State:
        """The fact after executing ``element`` normally."""
        raise NotImplementedError

    def exception_state(self, element: Element, pre: State, post: State) -> State:
        """The fact escaping ``element`` on its exception edge."""
        return self.join(pre, post)


class DataflowResult(Generic[State]):
    """Fixpoint facts for one CFG: the fact entering every reachable block."""

    def __init__(self, cfg: CFG, in_facts: dict[int, State]) -> None:
        self.cfg = cfg
        self.in_facts = in_facts

    def fact_in(self, block_id: int) -> State | None:
        """The fact entering ``block_id`` (None when unreachable)."""
        return self.in_facts.get(block_id)

    @property
    def at_exit(self) -> State | None:
        """The fact on normal function exit (every ``return`` joined)."""
        return self.in_facts.get(self.cfg.exit)

    @property
    def at_raise_exit(self) -> State | None:
        """The fact where an exception escapes the function."""
        return self.in_facts.get(self.cfg.raise_exit)


def run_forward(cfg: CFG, analysis: ForwardAnalysis[State]) -> DataflowResult[State]:
    """Worklist fixpoint of ``analysis`` over ``cfg``.

    Blocks hold at most one element, so one step is: read the in-fact,
    apply the transfer, propagate along every out-edge (the exceptional
    fact along ``exception`` edges), and re-queue successors whose in-fact
    grew.  Termination relies on the analysis lattice having finite height
    — true for all shipped rules, whose facts are sets over program
    entities.
    """
    in_facts: dict[int, State] = {cfg.entry: analysis.initial()}
    work: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    while work:
        block_id = work.popleft()
        queued.discard(block_id)
        block = cfg.blocks[block_id]
        pre = in_facts[block_id]
        post = analysis.transfer(block.element, pre) if block.element is not None else pre
        for edge in block.succs:
            fact = post
            if edge.kind == KIND_EXCEPTION and block.element is not None:
                fact = analysis.exception_state(block.element, pre, post)
            if edge.dst in in_facts:
                merged = analysis.join(in_facts[edge.dst], fact)
                if merged == in_facts[edge.dst]:
                    continue
                in_facts[edge.dst] = merged
            else:
                in_facts[edge.dst] = fact
            if edge.dst not in queued:
                queued.add(edge.dst)
                work.append(edge.dst)
    return DataflowResult(cfg, in_facts)
