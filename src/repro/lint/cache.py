"""Incremental lint cache: skip re-analysing files that did not change.

The flow-sensitive rules make a cold lint run measurably slower than the
old pattern pass — every function body now builds a CFG and runs analyses
to fixpoint.  The cache buys that cost back for the common case (CI and
editor loops re-linting a tree where almost nothing moved):

* **per-file findings** are keyed by the file's content hash.  Per-file
  checkers see exactly one file, so identical content implies identical
  raw findings — on a hit the driver skips ``ast.parse`` *and* every
  checker for that file and replays the recorded findings (suppression
  filtering still runs live: it is cheap and keeps staleness exact);
* **cross-file findings** (registry/codec sync, metrics drift) are keyed
  by a *dependency fingerprint*: the :class:`~repro.lint.base
  .ProjectContext` records every file read and every glob expanded while
  the cross-file checkers run, and the cache replays their findings only
  while every recorded file hash and glob expansion still matches;
* the whole cache is invalidated by a **checker fingerprint** — a hash of
  the lint package's own sources, the active rule set and the interpreter
  version — so editing a checker (or selecting different ``--rules``)
  can never replay stale results.

The cache lives in ``.repro-lint-cache.json`` at the repository root
(gitignored); raw findings are stored pre-suppression so edits to a
suppression comment change the file hash and re-filter naturally.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

from repro.lint.findings import Finding

_VERSION = 1


def content_hash(text: str) -> str:
    """Stable hash of one file's decoded source."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def checker_fingerprint(rules: list[str]) -> str:
    """Hash of the lint package sources + active rules + interpreter."""
    digest = hashlib.sha256()
    digest.update(f"v{_VERSION}|py{sys.version_info[:2]}".encode())
    digest.update(("|" + ",".join(sorted(rules))).encode())
    package = Path(__file__).resolve().parent
    for source in sorted(package.rglob("*.py")):
        digest.update(source.relative_to(package).as_posix().encode())
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class LintCache:
    """One cache file: load, consult, refresh, save."""

    def __init__(self, path: Path, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self.crossfile_hit = False
        self._old_files: dict[str, dict[str, object]] = {}
        self._old_crossfile: dict[str, object] | None = None
        #: Entries touched this run — save() writes these, pruning the rest.
        self._new_files: dict[str, dict[str, object]] = {}
        self._new_crossfile: dict[str, object] | None = None
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            not isinstance(raw, dict)
            or raw.get("version") != _VERSION
            or raw.get("fingerprint") != fingerprint
        ):
            return
        files = raw.get("files")
        if isinstance(files, dict):
            self._old_files = files
        crossfile = raw.get("crossfile")
        if isinstance(crossfile, dict):
            self._old_crossfile = crossfile

    # -- per-file entries ----------------------------------------------------

    def lookup(self, rel: str, digest: str) -> list[Finding] | None:
        """Replay ``rel``'s raw findings if its content hash still matches."""
        entry = self._old_files.get(rel)
        if entry is None or entry.get("hash") != digest:
            self.misses += 1
            return None
        try:
            findings = [
                Finding.from_dict(item)
                for item in entry.get("findings", [])  # type: ignore[union-attr]
            ]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        self._new_files[rel] = entry
        return findings

    def store(self, rel: str, digest: str, findings: list[Finding]) -> None:
        self._new_files[rel] = {
            "hash": digest,
            "findings": [finding.to_dict() for finding in findings],
        }

    # -- cross-file entry ----------------------------------------------------

    def crossfile_lookup(self, root: Path) -> list[Finding] | None:
        """Replay the cross-file findings if every recorded dep is unchanged."""
        entry = self._old_crossfile
        if entry is None:
            return None
        file_deps = entry.get("file_deps")
        glob_deps = entry.get("glob_deps")
        if not isinstance(file_deps, dict) or not isinstance(glob_deps, dict):
            return None
        for rel, expected in file_deps.items():
            path = root / rel
            if not path.is_file():
                current = ""
            else:
                try:
                    current = content_hash(path.read_bytes().decode("utf-8"))
                except (OSError, UnicodeDecodeError):
                    # Same marker as absent: read_text() yields None for
                    # both, so the checkers cannot tell them apart either.
                    current = ""
            if current != expected:
                return None
        for pattern, expected_matches in glob_deps.items():
            matches = sorted(
                match.relative_to(root).as_posix()
                for match in root.glob(pattern)
                if match.is_file()
            )
            if matches != expected_matches:
                return None
        try:
            findings = [
                Finding.from_dict(item)
                for item in entry.get("findings", [])  # type: ignore[union-attr]
            ]
        except (KeyError, TypeError, ValueError):
            return None
        self.crossfile_hit = True
        self._new_crossfile = entry
        return findings

    def crossfile_store(
        self,
        file_deps: dict[str, str],
        glob_deps: dict[str, list[str]],
        findings: list[Finding],
    ) -> None:
        self._new_crossfile = {
            "file_deps": dict(sorted(file_deps.items())),
            "glob_deps": dict(sorted(glob_deps.items())),
            "findings": [finding.to_dict() for finding in findings],
        }

    # -- persistence ---------------------------------------------------------

    def save(self) -> None:
        """Write the entries this run touched (atomically via a temp file)."""
        document = {
            "version": _VERSION,
            "fingerprint": self.fingerprint,
            "files": dict(sorted(self._new_files.items())),
            "crossfile": self._new_crossfile,
        }
        tmp = self.path.with_suffix(".tmp")
        try:
            tmp.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            # A read-only checkout just runs cold every time.
            return
