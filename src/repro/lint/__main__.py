"""``python -m repro.lint [paths] [--strict] [--json]``."""

import sys

from repro.lint.driver import main

if __name__ == "__main__":
    sys.exit(main())
