"""Repo-specific static analysis: AST + flow checks for this codebase's contracts.

Generic linters see none of the invariants this repository's correctness
actually rests on — the ingest-lock discipline (PR 4), the never-block
asyncio server (PR 4), vectorized hot paths (PRs 1/5/8), registry/codec
consistency (PR 3/6), bit-identity determinism, and the telemetry catalog
(PR 7).  Each shipped rule encodes one of those contracts; the simpler
ones as stdlib-``ast`` passes, and the resource/lock/dtype/cancellation
rules (RL007–RL010) as *flow-sensitive* analyses over a per-function CFG
(:mod:`repro.lint.cfg`) with a worklist dataflow solver
(:mod:`repro.lint.dataflow`).  Findings carry ``file:line``, the rule id
and a fix hint — some a mechanical ``--fix`` — and are silenced only by
an inline, reasoned, staleness-checked suppression.

Run as ``python -m repro.lint [paths] [--strict] [--json] [--fix]`` or
``repro.cli lint`` (identical flags, shared parser); the checker catalog
lives in ``docs/architecture.md``.
"""

from repro.lint.base import Checker, FileContext, ProjectContext
from repro.lint.baseline import diff_baseline, load_baseline, save_baseline
from repro.lint.cache import LintCache, checker_fingerprint
from repro.lint.checkers import all_checkers
from repro.lint.driver import (
    PARSE_RULE,
    LintResult,
    add_lint_arguments,
    main,
    run_from_args,
    run_lint,
)
from repro.lint.findings import Edit, Finding, Fix
from repro.lint.fixes import apply_fixes, fix_source
from repro.lint.suppress import META_RULE, SuppressionTable

__all__ = [
    "META_RULE",
    "PARSE_RULE",
    "Checker",
    "Edit",
    "FileContext",
    "Finding",
    "Fix",
    "LintCache",
    "LintResult",
    "ProjectContext",
    "SuppressionTable",
    "add_lint_arguments",
    "all_checkers",
    "apply_fixes",
    "checker_fingerprint",
    "diff_baseline",
    "fix_source",
    "load_baseline",
    "main",
    "run_from_args",
    "run_lint",
    "save_baseline",
]
