"""Repo-specific static analysis: AST checks for this codebase's contracts.

Generic linters see none of the invariants this repository's correctness
actually rests on — the ingest-lock discipline (PR 4), the never-block
asyncio server (PR 4), vectorized hot paths (PRs 1/5/8), registry/codec
consistency (PR 3/6), bit-identity determinism, and the telemetry catalog
(PR 7).  Each shipped rule encodes one of those contracts as a stdlib-
``ast`` pass; findings carry ``file:line``, the rule id and a fix hint,
and are silenced only by an inline, reasoned, staleness-checked
suppression.

Run as ``python -m repro.lint [paths] [--strict] [--json]`` or
``repro.cli lint``; the checker catalog lives in
``docs/architecture.md``.
"""

from repro.lint.base import Checker, FileContext, ProjectContext
from repro.lint.checkers import all_checkers
from repro.lint.driver import LintResult, main, run_lint
from repro.lint.findings import Finding
from repro.lint.suppress import META_RULE, SuppressionTable

__all__ = [
    "META_RULE",
    "Checker",
    "FileContext",
    "Finding",
    "LintResult",
    "ProjectContext",
    "SuppressionTable",
    "all_checkers",
    "main",
    "run_lint",
]
