"""Per-function control-flow graphs for the flow-sensitive checkers.

The AST-pattern checkers (RL001–RL006) see *syntax*; the flow rules
(RL007–RL010) need *paths*: a resource released in one branch but not the
``except`` arm, a lock still held on an early return, a dtype that differs
between two arms of an ``if``.  This module lowers one function body into
a conservative CFG that the :mod:`repro.lint.dataflow` fixpoint walks.

Shape of the graph:

* one **element** per block — a simple statement, or a :class:`Marker`
  standing in for the evaluation of a structural piece (an ``if``/``while``
  test, a ``with`` enter/exit, an ``except`` binding, a ``for`` iteration).
  Tiny blocks keep transfer functions trivial and make exception edges
  precise to the statement;
* two distinguished exits — :attr:`CFG.exit` (normal return) and
  :attr:`CFG.raise_exit` (an exception escaping the function).  "Released
  on all paths" checks read the dataflow fact at both;
* every element that can raise carries an ``exception`` edge to the
  innermost construct that would observe it (an ``except`` dispatch, a
  ``finally`` body, a ``with`` exit, or the raise exit);
* ``finally`` bodies — and ``with`` exits, which are ``finally`` sugar —
  are **copied per continuation** (normal fall-through, exception
  propagation, each ``return``/``break``/``continue`` route), so facts on
  the exceptional path never leak into the normal one through a shared
  block.  Copies are memoised per (construct, continuation), keeping the
  graph linear in practice.

The graph is intentionally conservative: boolean short-circuits evaluate
atomically, every call may raise, ``except`` clauses may match anything.
A may-analysis over this graph over-approximates real executions, which is
the right polarity for a linter — a path that cannot happen can only add a
finding, never hide one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Edge kinds.  Dataflow treats ``exception`` edges specially (they carry
#: the pre-state of the raising element); every other kind is "normal".
KIND_NEXT = "next"
KIND_TRUE = "true"
KIND_FALSE = "false"
KIND_LOOP = "loop"
KIND_EXHAUSTED = "exhausted"
KIND_EXCEPTION = "exception"

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True)
class Marker:
    """A structural pseudo-element occupying one CFG block.

    ``kind`` is one of ``test`` (an ``if``/``while`` condition), ``loop_iter``
    (one ``for`` iteration: evaluate the iterator / bind the target),
    ``with_enter`` / ``with_exit`` (one ``with`` item's ``__enter__`` /
    ``__exit__``; ``exit`` markers appear on the normal *and* the
    exceptional path), ``except_enter`` (an ``except`` clause matching and
    binding) and ``except_dispatch`` (the point where a raised exception
    picks a handler).
    """

    kind: str
    node: ast.AST
    #: For ``with_exit``: True on the copy reached when the body raised.
    exceptional: bool = False
    #: For ``with_enter``/``with_exit``: the item belongs to ``async with``.
    is_async: bool = False


Element = ast.stmt | Marker


@dataclass
class Edge:
    src: int
    dst: int
    kind: str


@dataclass
class Block:
    id: int
    element: Element | None = None
    succs: list[Edge] = field(default_factory=list)
    preds: list[Edge] = field(default_factory=list)


class CFG:
    """The control-flow graph of one function (or module) body."""

    def __init__(self, owner: ast.AST) -> None:
        self.owner = owner
        self.blocks: list[Block] = []
        self.entry = self.new_block().id
        self.exit = self.new_block().id
        self.raise_exit = self.new_block().id

    def new_block(self, element: Element | None = None) -> Block:
        block = Block(id=len(self.blocks), element=element)
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int, kind: str = KIND_NEXT) -> None:
        for edge in self.blocks[src].succs:
            if edge.dst == dst and edge.kind == kind:
                return
        edge = Edge(src, dst, kind)
        self.blocks[src].succs.append(edge)
        self.blocks[dst].preds.append(edge)

    def elements(self) -> list[tuple[int, Element]]:
        """Every (block id, element) pair, in block-creation order."""
        return [
            (block.id, block.element)
            for block in self.blocks
            if block.element is not None
        ]


def _can_raise(element: Element) -> bool:
    """Whether executing ``element`` may raise (conservative default: yes)."""
    if isinstance(element, Marker):
        return element.kind != "except_dispatch"
    if isinstance(element, (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)):
        return False
    if isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # Defining a function cannot raise in any way a flow rule tracks.
        return False
    return True


@dataclass
class _FinallyScope:
    """One enclosing construct a non-local jump must run on the way out."""

    #: ``("finally", <stmt list>)`` or ``("with", <withitem>, is_async)``.
    payload: tuple
    #: Exception target in force *outside* the construct (where an
    #: exception raised by the finally body itself propagates).
    outer_exc: int
    #: ``len(builder.loops)`` when the scope was entered — jumps out of a
    #: loop only thread through scopes opened inside that loop.
    loop_depth: int


class _Loop:
    def __init__(self, continue_target: int, break_target: int, scope_depth: int) -> None:
        self.continue_target = continue_target
        self.break_target = break_target
        self.scope_depth = scope_depth


class _Builder:
    def __init__(self, owner: ast.AST) -> None:
        self.cfg = CFG(owner)
        self.exc_targets: list[int] = [self.cfg.raise_exit]
        self.scopes: list[_FinallyScope] = []
        self.loops: list[_Loop] = []
        #: Memoised cleanup copies: (id(scope payload), continuation) -> entry.
        self._copies: dict[tuple[int, int], int] = {}

    # -- plumbing -----------------------------------------------------------

    @property
    def exc_target(self) -> int:
        return self.exc_targets[-1]

    def element_block(self, element: Element, pred: int | None, kind: str = KIND_NEXT) -> int:
        """Append ``element`` in its own block after ``pred`` (if reachable)."""
        block = self.cfg.new_block(element)
        if pred is not None:
            self.cfg.add_edge(pred, block.id, kind)
        if _can_raise(element):
            self.cfg.add_edge(block.id, self.exc_target, KIND_EXCEPTION)
        return block.id

    def join_block(self, *preds: int | None) -> int:
        block = self.cfg.new_block()
        for pred in preds:
            if pred is not None:
                self.cfg.add_edge(pred, block.id)
        return block.id

    def route_out(self, target: int, scope_depth: int) -> int:
        """Entry of the cleanup chain running scopes above ``scope_depth``.

        A ``return`` (``scope_depth=0``), ``break`` or ``continue`` does not
        jump straight to its target: every ``finally`` body and ``with``
        exit opened since ``scope_depth`` runs first, innermost first.  The
        copies are memoised, so ten returns share one chain.
        """
        entry = target
        for scope in self.scopes[scope_depth:]:
            entry = self._cleanup_copy(scope, entry)
        return entry

    def _cleanup_copy(self, scope: _FinallyScope, continuation: int) -> int:
        key = (id(scope.payload), continuation)
        if key in self._copies:
            return self._copies[key]
        if scope.payload[0] == "with":
            _, item, is_async = scope.payload
            marker = Marker(
                "with_exit",
                item,
                exceptional=continuation == scope.outer_exc,
                is_async=is_async,
            )
            block = self.cfg.new_block(marker)
            self.cfg.add_edge(block.id, continuation)
            self.cfg.add_edge(block.id, scope.outer_exc, KIND_EXCEPTION)
            entry = block.id
        else:
            _, body = scope.payload
            saved = (self.exc_targets, self.scopes, self.loops)
            # The copy runs outside the construct: exceptions inside it hit
            # the construct's outer target, and jumps may not cross it.
            self.exc_targets = [scope.outer_exc]
            keep = len(self.scopes)
            for index, open_scope in enumerate(self.scopes):
                if open_scope is scope:
                    keep = index
                    break
            self.scopes = self.scopes[:keep]
            self.loops = self.loops[: scope.loop_depth]
            entry_block = self.join_block()
            tail = self.build_body(body, entry_block)
            if tail is not None:
                self.cfg.add_edge(tail, continuation)
            self.exc_targets, self.scopes, self.loops = saved
            entry = entry_block
        self._copies[key] = entry
        return entry

    # -- statement lowering -------------------------------------------------

    def build_body(self, body: list[ast.stmt], pred: int | None) -> int | None:
        """Lower a statement list; returns the fall-through block (or None)."""
        current = pred
        for stmt in body:
            if current is None:
                break  # unreachable code after return/raise/break
            current = self.build_stmt(stmt, current)
        return current

    def build_stmt(self, stmt: ast.stmt, pred: int) -> int | None:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, pred)
        if isinstance(stmt, ast.While):
            return self._build_while(stmt, pred)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_for(stmt, pred)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, pred)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, pred)
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, pred)
        if isinstance(stmt, ast.Return):
            block = self.element_block(stmt, pred)
            self.cfg.add_edge(block, self.route_out(self.cfg.exit, 0))
            return None
        if isinstance(stmt, ast.Raise):
            block = self.element_block(stmt, pred)
            # The exception edge added by element_block is the only way out.
            return None
        if isinstance(stmt, ast.Break):
            block = self.element_block(stmt, pred)
            loop = self.loops[-1] if self.loops else None
            if loop is not None:
                self.cfg.add_edge(block, self.route_out(loop.break_target, loop.scope_depth))
            return None
        if isinstance(stmt, ast.Continue):
            block = self.element_block(stmt, pred)
            loop = self.loops[-1] if self.loops else None
            if loop is not None:
                self.cfg.add_edge(block, self.route_out(loop.continue_target, loop.scope_depth))
            return None
        # Simple statement (assignment, expression, import, nested def, ...).
        return self.element_block(stmt, pred)

    def _build_if(self, stmt: ast.If, pred: int) -> int | None:
        test = self.element_block(Marker("test", stmt.test), pred)
        then_tail = self.build_body(stmt.body, self._arm(test, KIND_TRUE))
        else_tail = (
            self.build_body(stmt.orelse, self._arm(test, KIND_FALSE))
            if stmt.orelse
            else test
        )
        if then_tail is None and else_tail is None:
            return None
        after = self.join_block(then_tail)
        if else_tail is not None:
            kind = KIND_FALSE if else_tail is test else KIND_NEXT
            self.cfg.add_edge(else_tail, after, kind)
        return after

    def _arm(self, test: int, kind: str) -> int:
        arm = self.cfg.new_block()
        self.cfg.add_edge(test, arm.id, kind)
        return arm.id

    def _is_const_true(self, expr: ast.expr) -> bool:
        return isinstance(expr, ast.Constant) and bool(expr.value) is True

    def _build_while(self, stmt: ast.While, pred: int) -> int | None:
        head = self.join_block(pred)
        test = self.element_block(Marker("test", stmt.test), head)
        after = self.join_block()
        self.loops.append(_Loop(head, after, len(self.scopes)))
        body_tail = self.build_body(stmt.body, self._arm(test, KIND_TRUE))
        if body_tail is not None:
            self.cfg.add_edge(body_tail, head)
        self.loops.pop()
        exits_normally = not self._is_const_true(stmt.test)
        if exits_normally:
            else_tail = (
                self.build_body(stmt.orelse, self._arm(test, KIND_FALSE))
                if stmt.orelse
                else self._arm(test, KIND_FALSE)
            )
            if else_tail is not None:
                self.cfg.add_edge(else_tail, after)
        return after if self.cfg.blocks[after].preds else None

    def _build_for(self, stmt: ast.For | ast.AsyncFor, pred: int) -> int | None:
        head = self.join_block(pred)
        step = self.element_block(Marker("loop_iter", stmt), head, KIND_LOOP)
        after = self.join_block()
        self.loops.append(_Loop(head, after, len(self.scopes)))
        body_tail = self.build_body(stmt.body, step)
        if body_tail is not None:
            self.cfg.add_edge(body_tail, head)
        self.loops.pop()
        else_tail = self.build_body(stmt.orelse, head) if stmt.orelse else head
        if else_tail is not None:
            kind = KIND_EXHAUSTED if else_tail is head else KIND_NEXT
            self.cfg.add_edge(else_tail, after, kind)
        return after if self.cfg.blocks[after].preds else None

    def _build_with(self, stmt: ast.With | ast.AsyncWith, pred: int) -> int | None:
        is_async = isinstance(stmt, ast.AsyncWith)
        current: int | None = pred
        opened: list[_FinallyScope] = []
        for item in stmt.items:
            assert current is not None
            current = self.element_block(Marker("with_enter", item, is_async=is_async), current)
            scope = _FinallyScope(("with", item, is_async), self.exc_target, len(self.loops))
            self.scopes.append(scope)
            opened.append(scope)
            # While the body runs, an escaping exception executes __exit__
            # before propagating: thread it through the exceptional copy.
            self.exc_targets.append(self._cleanup_copy(scope, self.exc_target))
        body_tail = self.build_body(stmt.body, current)
        for scope in reversed(opened):
            self.exc_targets.pop()
            self.scopes.pop()
            if body_tail is not None:
                exit_block = self.element_block(
                    Marker("with_exit", scope.payload[1], is_async=is_async), body_tail
                )
                body_tail = exit_block
        return body_tail

    def _build_try(self, stmt: ast.Try, pred: int) -> int | None:
        outer_exc = self.exc_target
        after = self.join_block()
        scope: _FinallyScope | None = None
        if stmt.finalbody:
            scope = _FinallyScope(("finally", stmt.finalbody), outer_exc, len(self.loops))
        fin_normal = self._cleanup_copy(scope, after) if scope else after
        fin_exc = self._cleanup_copy(scope, outer_exc) if scope else outer_exc

        if stmt.handlers:
            dispatch = self.cfg.new_block(Marker("except_dispatch", stmt)).id
            # No handler matches: the exception keeps propagating (through
            # the finally body, on the exceptional copy).
            self.cfg.add_edge(dispatch, fin_exc, KIND_EXCEPTION)
            body_exc = dispatch
        else:
            body_exc = fin_exc

        if scope:
            self.scopes.append(scope)
        self.exc_targets.append(body_exc)
        body_tail = self.build_body(stmt.body, pred)
        self.exc_targets.pop()

        tails: list[int | None] = []
        if stmt.handlers:
            self.exc_targets.append(fin_exc)
            for handler in stmt.handlers:
                enter = self.element_block(Marker("except_enter", handler), None)
                self.cfg.add_edge(dispatch, enter, KIND_EXCEPTION)
                tails.append(self.build_body(handler.body, enter))
            self.exc_targets.pop()
        if body_tail is not None and stmt.orelse:
            self.exc_targets.append(fin_exc)
            body_tail = self.build_body(stmt.orelse, body_tail)
            self.exc_targets.pop()
        tails.append(body_tail)
        if scope:
            self.scopes.pop()

        for tail in tails:
            if tail is not None:
                self.cfg.add_edge(tail, fin_normal)
        return after if self.cfg.blocks[after].preds else None

    def _build_match(self, stmt: ast.Match, pred: int) -> int | None:
        subject = self.element_block(Marker("test", stmt.subject), pred)
        tails: list[int | None] = []
        exhaustive = False
        for case in stmt.cases:
            arm = self.element_block(Marker("test", case.pattern), subject)
            tails.append(self.build_body(case.body, arm))
            if isinstance(case.pattern, ast.MatchAs) and case.pattern.pattern is None:
                exhaustive = case.guard is None
        if not exhaustive:
            tails.append(subject)  # no case matched
        live = [tail for tail in tails if tail is not None]
        if not live:
            return None
        return self.join_block(*live)


def build_cfg(func: FunctionNode) -> CFG:
    """The CFG of one ``def``/``async def`` body (nested defs are opaque)."""
    builder = _Builder(func)
    entry = builder.cfg.entry
    tail = builder.build_body(func.body, entry)
    if tail is not None:
        builder.cfg.add_edge(tail, builder.cfg.exit)
    return builder.cfg


def function_defs(tree: ast.AST) -> list[FunctionNode]:
    """Every function definition in ``tree``, outermost first."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
