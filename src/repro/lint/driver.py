"""The lint driver: discover, cache, parse, check, suppress, fix, report.

One run:

1. expand the target paths to ``.py`` files (directories walked
   recursively, ``__pycache__``/hidden directories skipped);
2. locate the repository root (the nearest ancestor carrying
   ``src/repro``) so findings and scopes use stable repo-relative paths;
3. for each file, consult the incremental cache (content hash) and —
   on a miss — parse it and run every in-scope per-file checker; a file
   that cannot be read or parsed yields a structured :data:`PARSE_RULE`
   finding instead of aborting the run;
4. run the cross-file checkers once (or replay their cached findings
   while their recorded dependency fingerprint still matches);
5. filter findings through the inline suppression tables, collecting
   suppression-hygiene findings (reason-less / stale) along the way;
6. under ``--fix``, apply the carried fixes bottom-up per file and
   re-lint so the report reflects the repaired tree;
7. render text (or ``--json``), diff against the ratchet baseline when
   one was given, and choose the exit code.

Exit codes: ``0`` clean, ``1`` findings (new findings, when a baseline
is in play), ``2`` usage errors or an internal crash of the linter
itself.  A syntax error in a *linted* file is a finding (``RL099``), not
a crash — one broken file must never hide the findings in the rest of
the tree.  In ``--strict`` mode suppression hygiene counts as findings —
the mode CI runs, so a stale suppression can never linger.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.base import Checker, FileContext, ProjectContext
from repro.lint.baseline import (
    BaselineDiff,
    diff_baseline,
    load_baseline,
    save_baseline,
)
from repro.lint.cache import LintCache, checker_fingerprint, content_hash
from repro.lint.checkers import all_checkers
from repro.lint.findings import Finding
from repro.lint.fixes import FixReport, apply_fixes
from repro.lint.suppress import META_RULE, SuppressionTable

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".ruff_cache", ".mypy_cache"}

#: Rule id for files the driver could not read or parse.  These are
#: findings like any other (exit 1, suppressible in principle, countable
#: in a baseline) — a tree with an unparseable file is not clean, but the
#: rest of the tree still gets linted.
PARSE_RULE = "RL099"
PARSE_TITLE = "every linted file is readable, UTF-8 and syntactically valid"

#: Default cache location, relative to the repository root (gitignored).
CACHE_FILENAME = ".repro-lint-cache.json"


@dataclass
class LintResult:
    """Everything one run produced, before rendering."""

    findings: list[Finding]
    hygiene: list[Finding]
    checked_files: int
    cache_hits: int = 0
    cache_misses: int = 0
    crossfile_cached: bool = False

    def reportable(self, strict: bool) -> list[Finding]:
        chosen = list(self.findings)
        if strict:
            chosen.extend(self.hygiene)
        return sorted(chosen)

    @property
    def parse_errors(self) -> list[Finding]:
        """The :data:`PARSE_RULE` findings (unreadable/unparseable files)."""
        return [finding for finding in self.findings if finding.rule == PARSE_RULE]


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor of ``start`` containing ``src/repro`` (else CWD)."""
    probe = start if start.is_dir() else start.parent
    for candidate in [probe, *probe.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return Path.cwd()


def discover_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            found.add(path.resolve())
        elif path.is_dir():
            for child in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in child.parts):
                    found.add(child.resolve())
    return sorted(found)


def _parse_finding(rel: str, error: SyntaxError) -> Finding:
    return Finding(
        path=rel,
        line=error.lineno or 0,
        col=max((error.offset or 1) - 1, 0),
        rule=PARSE_RULE,
        message=f"syntax error: {error.msg}",
        hint="fix the syntax; no rules ran on this file",
    )


def _read_finding(rel: str, reason: str) -> Finding:
    return Finding(
        path=rel,
        line=0,
        col=0,
        rule=PARSE_RULE,
        message=reason,
        hint="make the file readable UTF-8 (or exclude it from the lint targets)",
    )


def _dedup(findings: list[Finding]) -> list[Finding]:
    """Drop duplicate findings (same location/rule/message), keeping fixes.

    Flow rules can report the same source node once per finally/cleanup
    copy it appears in; the copies carry identical payloads, so equality
    on the compare fields is the right identity.  When one duplicate
    carries a fix and another does not, the fixed one wins.
    """
    unique: dict[Finding, Finding] = {}
    for finding in findings:
        current = unique.get(finding)
        if current is None or (current.fix is None and finding.fix is not None):
            unique[finding] = finding
    return sorted(unique.values())


def run_lint(
    paths: list[Path],
    checkers: list[Checker] | None = None,
    root: Path | None = None,
    cache: LintCache | None = None,
) -> LintResult:
    """Lint ``paths`` with ``checkers`` (default: the shipped set)."""
    if checkers is None:
        checkers = all_checkers()
    files = discover_files(paths)
    if root is None:
        root = find_repo_root(files[0] if files else Path.cwd())
    root = root.resolve()
    project = ProjectContext(root)
    for checker in checkers:
        checker.start(project)

    # A checker that overrides finalize() is cross-file; its per-file
    # findings (if it also overrides check()) depend on state we cannot
    # key by one file's hash, so only pure per-file checkers are cached.
    crossfile = [
        checker for checker in checkers if type(checker).finalize is not Checker.finalize
    ]
    cacheable = [checker for checker in checkers if checker not in crossfile]
    crossfile_checks = [
        checker for checker in crossfile if type(checker).check is not Checker.check
    ]
    per_file_cache = cache if not crossfile_checks else None

    raw_findings: list[Finding] = []
    checked = 0
    linted_rels: list[str] = []
    sources: dict[str, str] = {}
    for path in files:
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            source = path.read_bytes().decode("utf-8")
        except UnicodeDecodeError as error:
            raw_findings.append(
                _read_finding(rel, f"file is not valid UTF-8 ({error.reason})")
            )
            continue
        except OSError as error:
            raw_findings.append(
                _read_finding(rel, f"file could not be read ({error.strerror})")
            )
            continue
        sources[rel] = source
        digest = content_hash(source)
        if per_file_cache is not None:
            cached = per_file_cache.lookup(rel, digest)
            if cached is not None:
                raw_findings.extend(cached)
                checked += 1
                linted_rels.append(rel)
                continue
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            raw_findings.append(_parse_finding(rel, error))
            continue
        checked += 1
        linted_rels.append(rel)
        context = FileContext(root, path, source, tree)
        project.add(context)
        file_findings: list[Finding] = []
        for checker in cacheable:
            if checker.scope and checker.in_scope(rel):
                file_findings.extend(checker.check(context))
        for checker in crossfile_checks:
            if checker.scope and checker.in_scope(rel):
                raw_findings.extend(checker.check(context))
        if per_file_cache is not None:
            per_file_cache.store(rel, digest, file_findings)
        raw_findings.extend(file_findings)

    crossfile_found: list[Finding] | None = None
    crossfile_cached = False
    if cache is not None and not crossfile_checks:
        crossfile_found = cache.crossfile_lookup(root)
        crossfile_cached = crossfile_found is not None
    if crossfile_found is None:
        crossfile_found = []
        for checker in checkers:
            crossfile_found.extend(checker.finalize(project))
        if cache is not None and not crossfile_checks:
            cache.crossfile_store(project.file_deps, project.glob_deps, crossfile_found)
    raw_findings.extend(crossfile_found)
    raw_findings = _dedup(raw_findings)

    # Suppression pass: parse each implicated file's table once, filter the
    # findings through it, then collect hygiene findings for *linted* files
    # (files merely read by cross-file checkers are not this run's targets).
    tables: dict[str, SuppressionTable | None] = {}

    def table_for(rel: str) -> SuppressionTable | None:
        if rel not in tables:
            text = sources.get(rel)
            if text is None:
                try:
                    text = project.read_text(rel)
                except (OSError, UnicodeDecodeError):
                    text = None
            tables[rel] = SuppressionTable.from_source(text) if text else None
        return tables[rel]

    kept: list[Finding] = []
    for finding in raw_findings:
        table = table_for(finding.path)
        if table is None or table.match(finding) is None:
            kept.append(finding)

    hygiene: list[Finding] = []
    for rel in linted_rels:
        table = table_for(rel)
        if table is not None:
            hygiene.extend(table.hygiene_findings(rel))

    return LintResult(
        findings=sorted(kept),
        hygiene=sorted(hygiene),
        checked_files=checked,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        crossfile_cached=crossfile_cached,
    )


# -- CLI ---------------------------------------------------------------------


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The lint flag set, shared verbatim by ``python -m repro.lint`` and
    ``repro.cli lint`` so the two entry points can never drift apart."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "scripts"],
        help="files or directories to lint (default: src scripts)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on suppression hygiene (missing reasons, stale suppressions)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as a JSON document on stdout",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply the mechanical fixes carried by findings, then re-lint",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all shipped rules)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help="ratchet file: fail only on findings absent from this baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline from this run's findings and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the incremental cache",
    )
    parser.add_argument(
        "--cache-file",
        type=Path,
        help=f"cache location (default: <repo root>/{CACHE_FILENAME})",
    )


def _select_checkers(rules: str | None) -> list[Checker] | str:
    """The requested checker instances, or an error message."""
    checkers = all_checkers()
    if not rules:
        return checkers
    wanted = {rule.strip().upper() for rule in rules.split(",") if rule.strip()}
    unknown = wanted - {checker.rule for checker in checkers}
    if unknown:
        return f"unknown rule ids: {', '.join(sorted(unknown))}"
    return [checker for checker in checkers if checker.rule in wanted]


def run_from_args(args: argparse.Namespace) -> int:
    """Execute one lint invocation; never raises (internal errors exit 2)."""
    try:
        return _run(args)
    except Exception:  # pragma: no cover - the exit-2 backstop
        traceback.print_exc()
        print("repro.lint: internal error (traceback above)", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    checkers = _select_checkers(args.rules)
    if isinstance(checkers, str):
        print(f"repro.lint: {checkers}", file=sys.stderr)
        return 2
    if args.update_baseline and args.baseline is None:
        print("repro.lint: --update-baseline requires --baseline", file=sys.stderr)
        return 2

    paths = [Path(path) for path in args.paths]
    probe = next((path.resolve() for path in paths if path.exists()), Path.cwd())
    root = find_repo_root(probe)

    cache: LintCache | None = None
    if not args.no_cache:
        cache_path = args.cache_file or root / CACHE_FILENAME
        fingerprint = checker_fingerprint([checker.rule for checker in checkers])
        cache = LintCache(cache_path, fingerprint)

    result = run_lint(paths, checkers, root=root, cache=cache)
    fix_report: FixReport | None = None
    if args.fix:
        fixable = [
            finding
            for finding in result.reportable(args.strict)
            if finding.fix is not None
        ]
        fix_report = apply_fixes(root, fixable)
        if fix_report.total:
            result = run_lint(paths, checkers, root=root, cache=cache)
    if cache is not None:
        cache.save()

    reportable = result.reportable(args.strict)
    if args.update_baseline:
        assert args.baseline is not None
        save_baseline(args.baseline, reportable)
        print(
            f"repro.lint: baseline updated, {len(reportable)} finding(s) "
            f"recorded in {args.baseline}",
            file=sys.stderr,
        )
        return 0

    bdiff: BaselineDiff | None = None
    if args.baseline is not None:
        bdiff = diff_baseline(reportable, load_baseline(args.baseline))
    failing = bdiff.new if bdiff is not None else reportable

    if args.as_json:
        print(json.dumps(_json_document(args, checkers, result, reportable, bdiff, fix_report), indent=2, sort_keys=True))
    else:
        for finding in failing:
            print(finding.render())
        print(_summary(args, cache, result, reportable, bdiff, fix_report), file=sys.stderr)
    return 1 if failing else 0


def _summary(
    args: argparse.Namespace,
    cache: LintCache | None,
    result: LintResult,
    reportable: list[Finding],
    bdiff: BaselineDiff | None,
    fix_report: FixReport | None,
) -> str:
    text = (
        f"repro.lint: {result.checked_files} files checked, "
        f"{len(reportable)} finding(s)"
    )
    if bdiff is not None:
        text += (
            f" ({len(bdiff.new)} new, {len(bdiff.known)} baselined, "
            f"{len(bdiff.resolved)} resolved)"
        )
    if fix_report is not None:
        text += (
            f"; fixed {fix_report.total} finding(s) "
            f"in {len(fix_report.applied)} file(s)"
        )
    if cache is not None:
        text += (
            f"; cache {result.cache_hits} hit / {result.cache_misses} miss"
            + (" + crossfile hit" if result.crossfile_cached else "")
        )
    return text


def _json_document(
    args: argparse.Namespace,
    checkers: list[Checker],
    result: LintResult,
    reportable: list[Finding],
    bdiff: BaselineDiff | None,
    fix_report: FixReport | None,
) -> dict[str, object]:
    rules = {checker.rule: checker.title for checker in checkers}
    rules[META_RULE] = "suppressions carry reasons and silence something"
    rules[PARSE_RULE] = PARSE_TITLE
    document: dict[str, object] = {
        "checked_files": result.checked_files,
        "strict": args.strict,
        "rules": rules,
        "findings": [finding.to_dict() for finding in reportable],
        "cache": {
            "enabled": not args.no_cache,
            "hits": result.cache_hits,
            "misses": result.cache_misses,
            "crossfile_hit": result.crossfile_cached,
        },
    }
    if bdiff is not None:
        document["baseline"] = {
            "path": str(args.baseline),
            "new": [finding.to_dict() for finding in bdiff.new],
            "known": [finding.to_dict() for finding in bdiff.known],
            "resolved": bdiff.resolved,
        }
    if fix_report is not None:
        document["fixes"] = {
            "total": fix_report.total,
            "files": dict(sorted(fix_report.applied.items())),
            "skipped": len(fix_report.skipped),
        }
    return document


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.lint``; ``repro.cli lint`` shares
    the argument set through :func:`add_lint_arguments`)."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST- and flow-based invariant checks for this repository's contracts",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))
