"""The lint driver: discover, parse, check, suppress, report.

One run:

1. expand the target paths to ``.py`` files (directories walked
   recursively, ``__pycache__``/hidden directories skipped);
2. locate the repository root (the nearest ancestor carrying
   ``src/repro``) so findings and scopes use stable repo-relative paths;
3. run every per-file checker over its in-scope targets, then every
   cross-file checker once;
4. filter findings through the inline suppression tables, collecting
   suppression-hygiene findings (reason-less / stale) along the way;
5. render text (or ``--json``) and choose the exit code.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage/parse errors.  In
``--strict`` mode suppression hygiene counts as findings — the mode CI
runs, so a stale suppression can never linger.
"""

from __future__ import annotations

import ast
import json
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.lint.base import Checker, FileContext, ProjectContext
from repro.lint.checkers import all_checkers
from repro.lint.findings import Finding
from repro.lint.suppress import SuppressionTable

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".ruff_cache", ".mypy_cache"}


@dataclass
class LintResult:
    """Everything one run produced, before rendering."""

    findings: list[Finding]
    hygiene: list[Finding]
    checked_files: int
    parse_errors: list[str]

    def reportable(self, strict: bool) -> list[Finding]:
        chosen = list(self.findings)
        if strict:
            chosen.extend(self.hygiene)
        return sorted(chosen)


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor of ``start`` containing ``src/repro`` (else CWD)."""
    probe = start if start.is_dir() else start.parent
    for candidate in [probe, *probe.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return Path.cwd()


def discover_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            found.add(path.resolve())
        elif path.is_dir():
            for child in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in child.parts):
                    found.add(child.resolve())
    return sorted(found)


def run_lint(
    paths: list[Path],
    checkers: list[Checker] | None = None,
    root: Path | None = None,
) -> LintResult:
    """Lint ``paths`` with ``checkers`` (default: the shipped set)."""
    if checkers is None:
        checkers = all_checkers()
    files = discover_files(paths)
    if root is None:
        root = find_repo_root(files[0] if files else Path.cwd())
    root = root.resolve()
    project = ProjectContext(root)
    for checker in checkers:
        checker.start(project)

    raw_findings: list[Finding] = []
    parse_errors: list[str] = []
    checked = 0
    linted_rels: list[str] = []
    for path in files:
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            parse_errors.append(f"{rel}:{error.lineno or 0}: syntax error: {error.msg}")
            continue
        checked += 1
        linted_rels.append(rel)
        context = FileContext(root, path, source, tree)
        project.add(context)
        for checker in checkers:
            if checker.scope and checker.in_scope(rel):
                raw_findings.extend(checker.check(context))
    for checker in checkers:
        raw_findings.extend(checker.finalize(project))

    # Suppression pass: parse each implicated file's table once, filter the
    # findings through it, then collect hygiene findings for *linted* files
    # (files merely read by cross-file checkers are not this run's targets).
    tables: dict[str, SuppressionTable] = {}

    def table_for(rel: str) -> SuppressionTable | None:
        if rel not in tables:
            context = project.load(rel)
            if context is None:
                text = project.read_text(rel)
                tables[rel] = SuppressionTable.from_source(text) if text else None
            else:
                tables[rel] = SuppressionTable.from_source(context.source)
        return tables[rel]

    kept: list[Finding] = []
    for finding in raw_findings:
        table = table_for(finding.path)
        if table is None or table.match(finding) is None:
            kept.append(finding)

    hygiene: list[Finding] = []
    for rel in linted_rels:
        table = table_for(rel)
        if table is not None:
            hygiene.extend(table.hygiene_findings(rel))

    return LintResult(
        findings=sorted(kept),
        hygiene=sorted(hygiene),
        checked_files=checked,
        parse_errors=parse_errors,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.lint`` and ``repro.cli lint``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based invariant checks for this repository's contracts",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "scripts"],
        help="files or directories to lint (default: src scripts)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on suppression hygiene (missing reasons, stale suppressions)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as a JSON document on stdout",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all shipped rules)",
    )
    args = parser.parse_args(argv)

    checkers = all_checkers()
    if args.rules:
        wanted = {rule.strip().upper() for rule in args.rules.split(",") if rule.strip()}
        unknown = wanted - {checker.rule for checker in checkers}
        if unknown:
            parser.error(f"unknown rule ids: {', '.join(sorted(unknown))}")
        checkers = [checker for checker in checkers if checker.rule in wanted]

    result = run_lint([Path(path) for path in args.paths], checkers)
    reportable = result.reportable(args.strict)

    if args.as_json:
        document = {
            "checked_files": result.checked_files,
            "strict": args.strict,
            "rules": {checker.rule: checker.title for checker in checkers},
            "findings": [finding.to_dict() for finding in reportable],
            "parse_errors": result.parse_errors,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for error in result.parse_errors:
            print(error, file=sys.stderr)
        for finding in reportable:
            print(finding.render())
        summary = (
            f"repro.lint: {result.checked_files} files checked, "
            f"{len(reportable)} finding(s)"
        )
        print(summary, file=sys.stderr)

    if result.parse_errors:
        return 2
    return 1 if reportable else 0
