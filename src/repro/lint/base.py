"""Checker interface and the file/project contexts checkers see.

Two kinds of pass share one interface:

* **per-file** — :meth:`Checker.check` is called once per linted file whose
  path matches :attr:`Checker.scope`, with that file's parsed AST;
* **cross-file** — :meth:`Checker.finalize` is called once after every file
  was visited, with a :class:`ProjectContext` that can lazily load *any*
  repository file (registry vs codec table, metric call sites vs docs) —
  cross-file invariants must hold over the whole tree even when the lint
  run was pointed at a subset of it.

Checkers are stateless between runs; cross-file state accumulates on the
instance between ``check`` and ``finalize`` and is reset by ``start``.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from pathlib import Path

from repro.lint.findings import Finding


class FileContext:
    """One parsed source file."""

    def __init__(self, root: Path, path: Path, source: str, tree: ast.Module) -> None:
        self.root = root
        self.path = path
        #: Posix-style path relative to the repository root (stable in
        #: findings and suppressions regardless of invocation directory);
        #: files outside the root keep their absolute path.
        try:
            self.rel = path.relative_to(root).as_posix()
        except ValueError:
            self.rel = path.as_posix()
        self.source = source
        self.tree = tree

    def import_aliases(self) -> dict[str, str]:
        """Map of local name -> dotted origin for top-level imports.

        ``import numpy as np`` yields ``{"np": "numpy"}``; ``from time
        import sleep`` yields ``{"sleep": "time.sleep"}``.  Function-local
        imports are included too — blocking calls hide behind those just as
        well.
        """
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    aliases[name.asname or name.name.split(".")[0]] = name.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for name in node.names:
                    aliases[name.asname or name.name] = f"{node.module}.{name.name}"
        return aliases


class ProjectContext:
    """The repository as cross-file checkers see it.

    Every access is recorded — file reads as ``rel -> content hash``
    (empty string: the file was probed and absent), glob expansions as
    ``pattern -> matches`` — so the incremental cache can fingerprint
    exactly what the cross-file checkers depended on and replay their
    findings while none of it changed.
    """

    def __init__(self, root: Path) -> None:
        self.root = root
        self._cache: dict[str, FileContext | None] = {}
        #: rel path -> content hash of every file read ("" when absent).
        self.file_deps: dict[str, str] = {}
        #: glob pattern -> the sorted match list it expanded to.
        self.glob_deps: dict[str, list[str]] = {}

    def add(self, context: FileContext) -> None:
        """Seed the cache with an already-parsed file (the driver's targets)."""
        self._cache.setdefault(context.rel, context)

    def _record(self, rel: str, source: str | None) -> None:
        from repro.lint.cache import content_hash

        self.file_deps.setdefault(rel, "" if source is None else content_hash(source))

    def load(self, rel: str) -> FileContext | None:
        """Parse ``root/rel`` (cached); None when absent or unparseable."""
        if rel not in self._cache:
            path = self.root / rel
            context = None
            source = self.read_text(rel)
            if source is not None:
                try:
                    context = FileContext(self.root, path, source, ast.parse(source))
                except SyntaxError:
                    context = None
            self._cache[rel] = context
        else:
            context = self._cache[rel]
            if context is not None:
                self._record(rel, context.source)
        return self._cache[rel]

    def read_text(self, rel: str) -> str | None:
        """Raw text of ``root/rel``; None when absent or not readable UTF-8.

        Unreadable files must not crash a cross-file pass that merely
        swept them up in a glob — the per-file pass already reported them.
        """
        path = self.root / rel
        try:
            source = path.read_bytes().decode("utf-8") if path.is_file() else None
        except (OSError, UnicodeDecodeError):
            source = None
        self._record(rel, source)
        return source

    def glob(self, pattern: str) -> list[str]:
        """Sorted repo-relative matches of a root-anchored glob."""
        matches = sorted(
            match.relative_to(self.root).as_posix()
            for match in self.root.glob(pattern)
            if match.is_file()
        )
        self.glob_deps.setdefault(pattern, matches)
        return matches


class Checker:
    """Base class: one rule id, one invariant, per-file and/or cross-file."""

    #: Rule id (``RL001`` ...), unique across the shipped checker set.
    rule: str = ""
    #: One-line statement of the protected invariant (the rule catalog).
    title: str = ""
    #: fnmatch patterns (against the repo-relative posix path) selecting
    #: the files :meth:`check` runs on; empty means "no per-file pass".
    scope: tuple[str, ...] = ()

    def start(self, project: ProjectContext) -> None:
        """Reset cross-file state at the beginning of a run."""

    def in_scope(self, rel: str) -> bool:
        return any(fnmatch(rel, pattern) for pattern in self.scope)

    def check(self, context: FileContext) -> list[Finding]:
        """Per-file pass over one in-scope file."""
        return []

    def finalize(self, project: ProjectContext) -> list[Finding]:
        """Cross-file pass after every target file was visited."""
        return []
