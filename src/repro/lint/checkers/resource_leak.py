"""RL007 — OS resources are released on every path, exception exits included.

The runtime owns real kernel objects now: ``SharedMemory`` segments behind
the shm slot rings (PR 6), sockets in the service client, files all over
the scripts.  A leak that only happens when an exception unwinds — the
``except`` arm returns early, a branch skips the ``close()`` — is exactly
what a syntactic checker cannot see and what wedges a long-running worker
under load (fd exhaustion, orphaned ``/dev/shm`` segments that outlive the
process).

The rule runs the ownership dataflow (:mod:`repro.lint.ownership`) over
each function's CFG: a local variable bound from an acquiring call
(``open``, ``socket.socket``, ``SharedMemory``, ...) must be discharged —
released (``close``/``unlink``/...), auto-released by a ``with``, or
escaped to another owner (returned, stored on ``self``, passed to a
callee) — before *every* function exit, the implicit exception exit
included.  ``with`` statements are modelled with exceptional-path exit
copies, so ``with open(...) as f:`` is clean by construction while a bare
``f = open(...)`` with a late ``close()`` is flagged for the raising path.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, FileContext
from repro.lint.cfg import build_cfg, function_defs
from repro.lint.dataflow import run_forward
from repro.lint.findings import Finding
from repro.lint.ownership import Claim, OwnershipAnalysis, Site

#: Call origins (alias-resolved) that hand the caller a disposable object.
_ACQUIRERS: dict[str, str] = {
    "open": "open(...)",
    "io.open": "io.open(...)",
    "socket.socket": "socket.socket(...)",
    "socket.create_connection": "socket.create_connection(...)",
    "multiprocessing.shared_memory.SharedMemory": "SharedMemory(...)",
    "tempfile.NamedTemporaryFile": "NamedTemporaryFile(...)",
    "tempfile.TemporaryFile": "TemporaryFile(...)",
    "gzip.open": "gzip.open(...)",
    "bz2.open": "bz2.open(...)",
    "lzma.open": "lzma.open(...)",
    "zipfile.ZipFile": "ZipFile(...)",
    "tarfile.open": "tarfile.open(...)",
}

#: Methods on an owned object that dispose of it.
_RELEASERS = {"close", "shutdown", "terminate", "unlink", "detach", "release"}


class _ResourceAnalysis(OwnershipAnalysis):
    def acquire(self, call: ast.Call) -> str | None:
        origin = self.origin_of(call)
        if origin is None:
            return None
        return _ACQUIRERS.get(origin)

    def release_status(self, method: str) -> str | None:
        return "" if method in _RELEASERS else None


class ResourceLeakChecker(Checker):
    rule = "RL007"
    title = (
        "acquired resources (files, sockets, shared memory) are released "
        "on every path, exception exits included"
    )
    scope = ("src/repro/*.py", "scripts/*.py")

    def check(self, context: FileContext) -> list[Finding]:
        aliases = context.import_aliases()
        findings: list[Finding] = []
        for func in function_defs(context.tree):
            findings.extend(self._check_function(context, aliases, func))
        return findings

    def _check_function(
        self,
        context: FileContext,
        aliases: dict[str, str],
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[Finding]:
        if not self._mentions_acquirer(func, aliases):
            return []
        cfg = build_cfg(func)
        result = run_forward(cfg, _ResourceAnalysis(aliases))
        leaks: dict[tuple[str, Site], tuple[Claim, set[str]]] = {}
        for exit_kind, fact in (
            ("return", result.at_exit),
            ("exception", result.at_raise_exit),
        ):
            if not fact:
                continue
            for var, claim in fact.items():
                for site in claim.sites:
                    slot = leaks.setdefault((var, site), (claim, set()))
                    slot[1].add(exit_kind)
                    if not claim.definite:
                        leaks[(var, site)] = (claim, slot[1])
        findings = []
        for (var, site), (claim, exits) in sorted(leaks.items()):
            line, col, what = site
            if "return" in exits:
                path = (
                    f"is never released in {func.name}"
                    if claim.definite
                    else f"is not released on every path through {func.name}"
                )
            else:
                path = f"is not released when an exception escapes {func.name}"
            findings.append(
                Finding(
                    path=context.rel,
                    line=line,
                    col=col,
                    rule=self.rule,
                    message=f"`{var}` acquired from {what} {path}",
                    hint=(
                        "release it in a `finally:` (or use `with`) so the "
                        "exception path cannot leak it"
                    ),
                )
            )
        return findings

    def _mentions_acquirer(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, aliases: dict[str, str]
    ) -> bool:
        """Cheap prefilter: skip the CFG walk when nothing here acquires."""
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                origin = _ResourceAnalysis(aliases).origin_of(node)
                if origin in _ACQUIRERS:
                    return True
        return False
