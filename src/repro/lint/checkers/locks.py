"""RL001 — lock discipline for ingest-shared monitor state.

The runtime's :class:`~repro.runtime.handle.IngestHandle` contract (PR 4):
every mutation of state shared between the ingest thread and readers must
happen while holding the handle's shared lock.  Nothing enforced that — a
refactor that moves a ``self._snapshot = ...`` out of its ``with
self.lock`` block compiles, passes the single-threaded tests, and corrupts
answers only under concurrent load.

The rule infers each class's *guarded attribute set* from the code itself:
every ``self.<attr>`` touched inside a ``with self.<lock>`` block (where
the attribute name contains ``lock``) is considered lock-guarded, and any
*write* to a guarded attribute outside such a block — in any method other
than ``__init__``, which runs before the object is shared — is a
violation.  Classes without a lock attribute are ignored.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, FileContext
from repro.lint.findings import Finding


def _self_attr(node: ast.expr) -> str | None:
    """The attribute name of a ``self.<attr>`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_exprs(item: ast.withitem) -> str | None:
    """The lock attribute named by one with-item, if it is ``self.<lock-ish>``."""
    attr = _self_attr(item.context_expr)
    if attr is not None and "lock" in attr.lower():
        return attr
    return None


class LockDisciplineChecker(Checker):
    rule = "RL001"
    title = (
        "state shared with the ingest thread is only written under the "
        "shared lock (IngestHandle contract, PR 4)"
    )
    scope = (
        "src/repro/monitor/*.py",
        "src/repro/runtime/handle.py",
        "src/repro/service/server.py",
    )

    def check(self, context: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(context, node))
        return findings

    def _check_class(self, context: FileContext, cls: ast.ClassDef) -> list[Finding]:
        guarded = self._guarded_attributes(cls)
        if not guarded:
            return []
        findings: list[Finding] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            findings.extend(self._check_method(context, cls, method, guarded))
        return findings

    def _guarded_attributes(self, cls: ast.ClassDef) -> set[str]:
        """Attributes of ``self`` touched inside any ``with self.<lock>``."""
        guarded: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            locks = [_lock_exprs(item) for item in node.items]
            if not any(locks):
                continue
            for inner in ast.walk(node):
                attr = _self_attr(inner) if isinstance(inner, ast.Attribute) else None
                if attr is not None and "lock" not in attr.lower():
                    guarded.add(attr)
        return guarded

    def _check_method(
        self,
        context: FileContext,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        guarded: set[str],
    ) -> list[Finding]:
        findings: list[Finding] = []

        def visit(node: ast.AST, locked: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                now_locked = locked or any(_lock_exprs(item) for item in node.items)
                for child in ast.iter_child_nodes(node):
                    visit(child, now_locked)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not method:
                # Nested defs run later, under whoever calls them.
                return
            if not locked and isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    attr = _self_attr(target)
                    if attr in guarded:
                        findings.append(
                            Finding(
                                path=context.rel,
                                line=node.lineno,
                                col=node.col_offset,
                                rule=self.rule,
                                message=(
                                    f"{cls.name}.{method.name} writes lock-guarded "
                                    f"attribute 'self.{attr}' outside `with self.lock`"
                                ),
                                hint=(
                                    "move the write under the shared lock, or suppress "
                                    "with the contract that makes it safe"
                                ),
                            )
                        )
            for child in ast.iter_child_nodes(node):
                visit(child, locked)

        visit(method, False)
        return findings
