"""RL006 — the metric catalog and the metric call sites cannot drift.

PR 7's telemetry layer registers instruments at the call site
(``obs.counter("service.requests", ...)``), documents them in the
``docs/architecture.md`` catalog, and asserts on them in
``scripts/serve_smoke.py`` and the test suite.  Three surfaces, zero
enforcement: renaming a metric silently breaks dashboards (the docs lie)
or the smoke assertions (they look up a name that no longer exists).

This cross-file rule extracts:

* **registrations** — every literal first argument of an
  ``obs.counter`` / ``obs.gauge`` / ``obs.histogram`` call under ``src/``;
* **references** — dotted metric-shaped string literals in
  ``scripts/serve_smoke.py`` and ``tests/``, plus every backticked name in
  the docs catalog (the ```a.b.c` / `.d``` shorthand is expanded against
  the preceding full name);

and reports both drift directions: a reference to a never-registered
metric, and a registered metric missing from the docs catalog.  Reference
scanning is restricted to the first-segment namespaces that actually have
registrations (``service.`` / ``ingest.`` / ...), so arbitrary dotted
strings (module paths, file names) are never mistaken for metrics.
"""

from __future__ import annotations

import ast
import re

from repro.lint.base import Checker, ProjectContext
from repro.lint.findings import Finding

_DOCS = "docs/architecture.md"
_SMOKE = "scripts/serve_smoke.py"

_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
_BACKTICK_RE = re.compile(r"`([^`]+)`")

_INSTRUMENT_FACTORIES = {"counter", "gauge", "histogram"}


def _registration_calls(tree: ast.Module) -> list[tuple[str, int, int]]:
    """(metric name, line, col) of obs.counter/gauge/histogram call literals."""
    registrations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        is_factory = (
            isinstance(func, ast.Attribute) and func.attr in _INSTRUMENT_FACTORIES
        ) or (isinstance(func, ast.Name) and func.id in _INSTRUMENT_FACTORIES)
        if not is_factory:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if _METRIC_NAME_RE.match(first.value):
                registrations.append((first.value, node.lineno, node.col_offset))
    return registrations


def _expand_doc_token(token: str, previous: str | None) -> str | None:
    """Resolve catalog shorthand against the previous full name.

    ``ingest.background.batches`` stands alone; a following ``.pairs``
    or ``worker_encode_seconds`` replaces the last segment(s) of it.
    """
    if _METRIC_NAME_RE.match(token):
        return token
    if previous is None:
        return None
    prefix = previous.rsplit(".", 1)[0]
    if token.startswith("."):
        candidate = prefix + token
    elif re.fullmatch(r"[a-z][a-z0-9_]*", token):
        candidate = f"{prefix}.{token}"
    else:
        return None
    return candidate if _METRIC_NAME_RE.match(candidate) else None


class MetricsDriftChecker(Checker):
    rule = "RL006"
    title = (
        "metric names referenced by docs, smoke scripts and tests exist "
        "in the obs registrations — and vice versa (PR 7 catalog)"
    )

    def finalize(self, project: ProjectContext) -> list[Finding]:
        registered: dict[str, tuple[str, int]] = {}
        for rel in project.glob("src/repro/**/*.py"):
            context = project.load(rel)
            if context is None:
                continue
            for name, line, _col in _registration_calls(context.tree):
                registered.setdefault(name, (rel, line))
        if not registered:
            return []
        namespaces = {name.split(".", 1)[0] for name in registered}

        findings: list[Finding] = []
        findings.extend(self._check_code_references(project, registered, namespaces))
        findings.extend(self._check_docs(project, registered, namespaces))
        return findings

    def _check_code_references(
        self,
        project: ProjectContext,
        registered: dict[str, tuple[str, int]],
        namespaces: set[str],
    ) -> list[Finding]:
        findings: list[Finding] = []
        for rel in [_SMOKE, *project.glob("tests/test_*.py")]:
            context = project.load(rel)
            if context is None:
                continue
            for node in ast.walk(context.tree):
                if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
                    continue
                value = node.value
                if not _METRIC_NAME_RE.match(value):
                    continue
                if value.split(".", 1)[0] not in namespaces:
                    continue
                if value not in registered:
                    findings.append(
                        Finding(
                            path=rel,
                            line=node.lineno,
                            col=node.col_offset,
                            rule=self.rule,
                            message=f"metric {value!r} is referenced but never registered",
                            hint="the name drifted from the obs call site; align them",
                        )
                    )
        return findings

    def _check_docs(
        self,
        project: ProjectContext,
        registered: dict[str, tuple[str, int]],
        namespaces: set[str],
    ) -> list[Finding]:
        text = project.read_text(_DOCS)
        if text is None:
            return []
        documented: set[str] = set()
        findings: list[Finding] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            # Shorthand expansion (`.pairs`, bare replacement segments) only
            # applies inside the first cell of catalog table rows; elsewhere
            # a backticked label like `op` must not be mistaken for one.
            scanned = line
            allow_shorthand = False
            if line.lstrip().startswith("|"):
                cells = line.split("|")
                scanned = cells[1] if len(cells) > 1 else ""
                allow_shorthand = True
            previous: str | None = None
            for match in _BACKTICK_RE.finditer(scanned):
                token = match.group(1).strip()
                name = _expand_doc_token(token, previous if allow_shorthand else None)
                if name is None:
                    continue
                previous = name
                if name.split(".", 1)[0] not in namespaces:
                    continue
                documented.add(name)
                if name not in registered:
                    findings.append(
                        Finding(
                            path=_DOCS,
                            line=lineno,
                            col=match.start(),
                            rule=self.rule,
                            message=f"documented metric {name!r} is never registered",
                            hint="the catalog drifted from the code; fix whichever is wrong",
                        )
                    )
        for name, (rel, line) in sorted(registered.items()):
            if name not in documented:
                findings.append(
                    Finding(
                        path=rel,
                        line=line,
                        col=0,
                        rule=self.rule,
                        message=f"registered metric {name!r} is missing from the {_DOCS} catalog",
                        hint="add a catalog row (type, labels, meaning)",
                    )
                )
        return findings
