"""RL008 — locks are released on every path and never held across ``await``.

RL001 checks the *syntactic* lock discipline (guarded attributes written
under ``with self.lock``); this rule upgrades it to *paths*.  Two
failure modes it catches that no pattern can:

* a manual ``lock.acquire()`` whose ``release()`` sits in one branch (or
  is skipped by the ``except`` arm / an early return) — under load the
  next ingest batch deadlocks against a lock nobody will ever release;
* an ``await`` executed while a **synchronous** lock is held — the event
  loop parks the coroutine mid-critical-section, every other task that
  touches the lock blocks the loop itself, and a single slow client can
  wedge the whole server.  ``async with`` on an asyncio lock is the
  sanctioned pattern and is ignored.

The dataflow fact is the set of held sync locks (anything lock-ish by the
RL001/RL002 naming convention: the dotted name contains "lock").  ``with
<lock>:`` acquires at the enter marker and releases at every exit copy —
normal, exceptional and early-return — so only genuinely unbalanced
``acquire()`` calls and awaits-under-lock survive to be reported.
"""

from __future__ import annotations

import ast
from dataclasses import replace

from repro.lint.astutil import dotted_name, walk_expressions
from repro.lint.base import Checker, FileContext
from repro.lint.cfg import CFG, Marker, build_cfg, function_defs
from repro.lint.dataflow import ForwardAnalysis, run_forward
from repro.lint.findings import Finding
from repro.lint.ownership import Claim

State = dict[str, Claim]


def _lock_key(expr: ast.expr) -> str | None:
    """The held-lock key of a lock-ish expression (``self._lock``), or None."""
    name = dotted_name(expr)
    if name is not None and "lock" in name.lower():
        return name
    return None


class _LockAnalysis(ForwardAnalysis[State]):
    def initial(self) -> State:
        return {}

    def join(self, left: State, right: State) -> State:
        joined: State = {}
        for key in left.keys() | right.keys():
            a, b = left.get(key), right.get(key)
            if a is None or b is None:
                present = a if a is not None else b
                assert present is not None
                joined[key] = replace(present, definite=False)
            else:
                joined[key] = Claim(sites=a.sites | b.sites, definite=a.definite and b.definite)
        return joined

    def transfer(self, element: ast.stmt | Marker, state: State) -> State:
        if isinstance(element, Marker):
            if element.kind == "with_enter" and not element.is_async:
                item = element.node
                assert isinstance(item, ast.withitem)
                key = _lock_key(item.context_expr)
                if key is not None:
                    state = dict(state)
                    state[key] = Claim(
                        sites=frozenset(
                            {(item.context_expr.lineno, item.context_expr.col_offset, "with")}
                        )
                    )
                return state
            if element.kind == "with_exit" and not element.is_async:
                item = element.node
                assert isinstance(item, ast.withitem)
                key = _lock_key(item.context_expr)
                if key is not None and key in state:
                    state = {held: claim for held, claim in state.items() if held != key}
                return state
            node: ast.AST = element.node
        else:
            node = element
        return self._scan_calls(node, state)

    def _scan_calls(self, node: ast.AST, state: State) -> State:
        for sub in walk_expressions(node):
            if not (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)):
                continue
            key = _lock_key(sub.func.value)
            if key is None:
                continue
            if sub.func.attr == "acquire":
                state = dict(state)
                state[key] = Claim(sites=frozenset({(sub.lineno, sub.col_offset, "acquire")}))
            elif sub.func.attr == "release" and key in state:
                state = {held: claim for held, claim in state.items() if held != key}
        return state

    def exception_state(self, element: ast.stmt | Marker, pre: State, post: State) -> State:
        # ``acquire()`` is atomic-on-success; ``release()`` that raised is
        # treated as released (reporting it would be noise).
        if set(post) <= set(pre):
            return post
        return pre


class LockFlowChecker(Checker):
    rule = "RL008"
    title = (
        "sync locks are released on every path and never held across an "
        "await (path-sensitive upgrade of RL001)"
    )
    scope = (
        "src/repro/runtime/*.py",
        "src/repro/monitor/*.py",
        "src/repro/service/*.py",
    )

    def check(self, context: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for func in function_defs(context.tree):
            if not any("lock" in name.lower() for name in _names_mentioned(func)):
                continue
            findings.extend(self._check_function(context, func))
        return findings

    def _check_function(
        self, context: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Finding]:
        cfg = build_cfg(func)
        result = run_forward(cfg, _LockAnalysis())
        findings: list[Finding] = []

        # Awaits executed while a sync lock is held.
        for block_id, element in cfg.elements():
            fact = result.fact_in(block_id)
            if not fact:
                continue
            node = element.node if isinstance(element, Marker) else element
            if isinstance(element, Marker) and element.kind in {"with_enter", "with_exit"}:
                continue
            for sub in walk_expressions(node):
                if isinstance(sub, ast.Await):
                    held = ", ".join(f"`{key}`" for key in sorted(fact))
                    findings.append(
                        Finding(
                            path=context.rel,
                            line=sub.lineno,
                            col=sub.col_offset,
                            rule=self.rule,
                            message=(
                                f"{func.name} awaits while holding sync lock {held} "
                                "(parks the critical section on the event loop)"
                            ),
                            hint=(
                                "release the lock before awaiting, or make the "
                                "section async with an asyncio lock"
                            ),
                        )
                    )

        # Locks still held at an exit.
        findings.extend(self._exit_findings(context, func, cfg, result))
        return findings

    def _exit_findings(self, context, func, cfg: CFG, result) -> list[Finding]:
        held: dict[tuple[str, tuple], tuple[Claim, str]] = {}
        for exit_kind, fact in (
            ("return", result.at_exit),
            ("exception", result.at_raise_exit),
        ):
            if not fact:
                continue
            for key, claim in fact.items():
                for site in claim.sites:
                    if site[2] != "acquire":
                        continue  # with-managed locks cannot leak by construction
                    slot = held.get((key, site))
                    if slot is None or exit_kind == "return":
                        held[(key, site)] = (claim, exit_kind)
        findings = []
        for (key, site), (claim, exit_kind) in sorted(held.items()):
            line, col, _ = site
            if exit_kind == "return":
                path = (
                    "is never released" if claim.definite else "is not released on every path"
                )
            else:
                path = "is not released when an exception escapes"
            findings.append(
                Finding(
                    path=context.rel,
                    line=line,
                    col=col,
                    rule=self.rule,
                    message=f"`{key}` acquired in {func.name} {path}",
                    hint="pair acquire() with release() in a `finally:`, or use `with`",
                )
            )
        return findings


def _names_mentioned(func: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            names.add(node.id)
    return names
