"""RL005 — determinism: sketch state is a pure function of the stream.

The repository's strongest contract is bit-identity: batch == scalar,
sharded == plain, snapshot-restored == live, binary transport == NDJSON —
all asserted by the test suite, all void the moment sketch/engine/state
code reads a wall clock or an unseeded RNG.  This rule bans, inside
``sketches/``, ``engine/``, ``state/``, ``core/`` and ``hashing/``:

* module-global :mod:`random` calls (``random.random()``, ``shuffle`` ...)
  and unseeded ``random.Random()`` — seedable instances threaded through
  constructors are fine;
* the legacy global numpy RNG (``np.random.rand``, ``np.random.seed`` ...)
  and unseeded ``np.random.default_rng()`` — pass an explicit seed;
* wall-clock reads: ``time.time`` / ``time.time_ns`` /
  ``datetime.now`` / ``utcnow`` / ``today`` — timestamps are *inputs*,
  carried by the stream, never sampled by the estimator.

``time.perf_counter`` stays allowed: it feeds telemetry spans, never
estimator state.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, FileContext
from repro.lint.findings import Finding

_WALL_CLOCK = {
    "time.time": "take the timestamp from the stream instead",
    "time.time_ns": "take the timestamp from the stream instead",
    "datetime.datetime.now": "take the timestamp from the stream instead",
    "datetime.datetime.utcnow": "take the timestamp from the stream instead",
    "datetime.datetime.today": "take the timestamp from the stream instead",
    "datetime.date.today": "take the timestamp from the stream instead",
}

#: np.random attributes that are *not* the legacy global-state API.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}


class DeterminismChecker(Checker):
    rule = "RL005"
    title = (
        "sketch/engine/state code never reads wall clocks or unseeded "
        "RNGs (bit-identity contract)"
    )
    scope = (
        "src/repro/sketches/*.py",
        "src/repro/engine/*.py",
        "src/repro/state/*.py",
        "src/repro/core/*.py",
        "src/repro/hashing/*.py",
    )

    def check(self, context: FileContext) -> list[Finding]:
        aliases = context.import_aliases()
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                self._check_call(context, aliases, node, findings)
        return findings

    def _check_call(
        self,
        context: FileContext,
        aliases: dict[str, str],
        call: ast.Call,
        findings: list[Finding],
    ) -> None:
        origin = _call_origin(call.func, aliases)
        if origin is None:
            return
        if origin in _WALL_CLOCK:
            findings.append(
                self._finding(context, call, f"reads the wall clock via `{origin}`",
                              _WALL_CLOCK[origin])
            )
            return
        parts = origin.split(".")
        # Legacy numpy global RNG: numpy.random.<anything not Generator-API>.
        if len(parts) >= 3 and parts[0] == "numpy" and parts[1] == "random":
            attr = parts[2]
            if attr == "default_rng":
                if not call.args and not call.keywords:
                    findings.append(
                        self._finding(
                            context, call, "creates an unseeded `np.random.default_rng()`",
                            "pass an explicit seed derived from the estimator's seed",
                        )
                    )
            elif attr not in _NP_RANDOM_OK:
                findings.append(
                    self._finding(
                        context, call, f"uses the legacy global numpy RNG `np.random.{attr}`",
                        "use a seeded `np.random.default_rng(seed)` generator",
                    )
                )
            return
        # Module-global stdlib random: random.<fn>() mutates hidden state.
        if len(parts) == 2 and parts[0] == "random":
            if parts[1] == "Random":
                if not call.args and not call.keywords:
                    findings.append(
                        self._finding(
                            context, call, "creates an unseeded `random.Random()`",
                            "seed it from the estimator's seed",
                        )
                    )
            else:
                findings.append(
                    self._finding(
                        context, call, f"calls module-global `random.{parts[1]}`",
                        "use a seeded `random.Random(seed)` instance",
                    )
                )

    def _finding(self, context: FileContext, node: ast.Call, what: str, hint: str) -> Finding:
        return Finding(
            path=context.rel,
            line=node.lineno,
            col=node.col_offset,
            rule=self.rule,
            message=f"determinism: {what}",
            hint=hint,
        )


def _call_origin(func: ast.expr, aliases: dict[str, str]) -> str | None:
    if isinstance(func, ast.Name):
        return aliases.get(func.id, func.id)
    if isinstance(func, ast.Attribute):
        base = _call_origin(func.value, aliases)
        if base is None:
            return None
        return f"{base}.{func.attr}"
    return None
