"""RL002 — no blocking calls inside the service's async handlers.

The query server runs one asyncio task per connection (PR 4); a single
blocking call inside an ``async def`` stalls *every* connection, not one.
The codebase's convention is explicit: anything that can block — sketch
merges behind the ingest lock above all — goes through
``loop.run_in_executor``.  This rule flags the calls that violate it
lexically inside ``async def`` bodies in :mod:`repro.service`:

* ``time.sleep`` (use ``asyncio.sleep``);
* synchronous socket construction / connection (``socket.*``);
* blocking file IO: builtin ``open`` and ``Path.read_*``/``write_*``;
* ``subprocess`` / ``os.system`` / ``os.popen``;
* acquiring a ``threading``-style lock: ``<lock>.acquire()`` or
  ``with self.<lock>`` (park it on the executor instead);
* ``json.dumps`` / ``json.loads`` of request-sized payloads (encode in the
  sync codec layer, off the event loop, where the executor can own it).

Nested synchronous ``def`` bodies are exempt — they run wherever they are
called, which the executor pattern makes deliberate.
"""

from __future__ import annotations

import ast
import dataclasses

from repro.lint.astutil import attr_tail as _attr_tail
from repro.lint.astutil import call_origin as _call_origin
from repro.lint.base import Checker, FileContext
from repro.lint.findings import Edit, Finding, Fix

#: Dotted call origins that block the event loop, with the fix to name.
_BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "socket.socket": "use asyncio streams (`asyncio.open_connection`)",
    "socket.create_connection": "use asyncio streams (`asyncio.open_connection`)",
    "subprocess.run": "use `asyncio.create_subprocess_exec`",
    "subprocess.check_output": "use `asyncio.create_subprocess_exec`",
    "subprocess.check_call": "use `asyncio.create_subprocess_exec`",
    "subprocess.call": "use `asyncio.create_subprocess_exec`",
    "subprocess.Popen": "use `asyncio.create_subprocess_exec`",
    "os.system": "use `asyncio.create_subprocess_shell`",
    "os.popen": "use `asyncio.create_subprocess_shell`",
    "json.dumps": "encode in the sync codec layer / run_in_executor",
    "json.loads": "decode in the sync codec layer / run_in_executor",
}

_PATH_IO_METHODS = {
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
}


class AsyncBlockingChecker(Checker):
    rule = "RL002"
    title = (
        "async service handlers never block the event loop "
        "(one-task-per-connection server, PR 4)"
    )
    scope = ("src/repro/service/*.py",)

    def check(self, context: FileContext) -> list[Finding]:
        aliases = context.import_aliases()
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                self._check_async_def(context, aliases, node, findings)
        return findings

    def _check_async_def(
        self,
        context: FileContext,
        aliases: dict[str, str],
        func: ast.AsyncFunctionDef,
        findings: list[Finding],
    ) -> None:
        def visit(node: ast.AST) -> None:
            if isinstance(node, ast.FunctionDef):
                return  # sync helper: runs wherever it is called
            if isinstance(node, ast.AsyncFunctionDef) and node is not func:
                return  # visited on its own
            if isinstance(node, ast.Call):
                self._check_call(context, aliases, func, node, findings)
            if isinstance(node, ast.With):
                for item in node.items:
                    name = _attr_tail(item.context_expr)
                    if name is not None and "lock" in name.lower():
                        findings.append(
                            self._finding(
                                context,
                                item.context_expr,
                                func,
                                f"acquires `{name}` with a blocking `with`",
                                "run the locked section via loop.run_in_executor",
                            )
                        )
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(func)

    def _check_call(
        self,
        context: FileContext,
        aliases: dict[str, str],
        func: ast.AsyncFunctionDef,
        call: ast.Call,
        findings: list[Finding],
    ) -> None:
        origin = _call_origin(call.func, aliases)
        if origin in _BLOCKING_CALLS:
            finding = self._finding(
                context,
                call,
                func,
                f"calls blocking `{origin}`",
                _BLOCKING_CALLS[origin],
            )
            if origin == "time.sleep":
                fix = _sleep_fix(call, func, aliases)
                if fix is not None:
                    finding = dataclasses.replace(finding, fix=fix)
            findings.append(finding)
            return
        if origin == "open" or origin == "io.open":
            findings.append(
                self._finding(
                    context, call, func, "performs blocking file IO (`open`)",
                    "read the file before entering the event loop, or use run_in_executor",
                )
            )
            return
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            receiver = _attr_tail(call.func.value)
            if attr == "acquire" and receiver is not None and "lock" in receiver.lower():
                findings.append(
                    self._finding(
                        context,
                        call,
                        func,
                        f"acquires `{receiver}` on the event loop",
                        "run the locked section via loop.run_in_executor",
                    )
                )
            elif attr in _PATH_IO_METHODS:
                findings.append(
                    self._finding(
                        context,
                        call,
                        func,
                        f"performs blocking file IO (`.{attr}`)",
                        "do file IO outside the event loop, or use run_in_executor",
                    )
                )

    def _finding(
        self,
        context: FileContext,
        node: ast.AST,
        func: ast.AsyncFunctionDef,
        what: str,
        hint: str,
    ) -> Finding:
        return Finding(
            path=context.rel,
            line=getattr(node, "lineno", func.lineno),
            col=getattr(node, "col_offset", func.col_offset),
            rule=self.rule,
            message=f"async def {func.name} {what}",
            hint=hint,
        )


def _sleep_fix(
    call: ast.Call, func: ast.AsyncFunctionDef, aliases: dict[str, str]
) -> Fix | None:
    """``time.sleep(x)`` as a bare statement becomes ``await asyncio.sleep(x)``.

    Only offered when the module imports ``asyncio`` (the service layer
    always does) and the call is a standalone expression statement — in any
    other position the rewrite would change a value.
    """
    if not any(origin == "asyncio" for origin in aliases.values()):
        return None
    is_statement = any(
        isinstance(node, ast.Expr) and node.value is call for node in ast.walk(func)
    )
    if not is_statement or call.func.end_lineno is None:
        return None
    return Fix(
        description="replace time.sleep with await asyncio.sleep",
        edits=(
            Edit(
                call.func.lineno,
                call.func.col_offset,
                call.func.end_lineno,
                call.func.end_col_offset or 0,
                "await asyncio.sleep",
            ),
        ),
    )
