"""RL009 — numpy dtype facts must match the wire-frame / arena contracts.

The binary wire format (PR 6) and the columnar arena (PR 8) are dtype
contracts: frame ``ids`` buffers are little-endian ``int64``, ``floats``
buffers are ``float64``, arena estimate columns are ``float64`` and
position/code columns ``int64``.  Python will not enforce any of that — an
``int32`` array reaches ``set_all_estimates`` and silently up-casts, a
``float64`` id array round-trips through a frame as garbage, and the
mismatch only surfaces as wrong estimates three layers away.

The rule tracks dtype facts as a forward dataflow: a variable bound from
``np.zeros/empty/asarray/... (dtype=...)`` (or ``.astype``) carries its
dtype token through assignments and joins — a variable assigned ``int32``
on one branch and ``float64`` on the other carries *both*, which is how
the rule catches drift a syntactic check cannot even express.  Findings
fire where a tracked variable meets a contract:

* passed to a known dtype-contract sink (``set_estimates``,
  ``set_all_estimates``, ``EncodedBatch.from_int_arrays``, ``write_raw``)
  with the wrong kind, or with a path-dependent kind;
* asserted against a dtype it can never be (``assert x.dtype == np.int64``
  when every reaching definition says ``float64``).
"""

from __future__ import annotations

import ast

from repro.lint.astutil import attr_tail, call_origin, walk_expressions
from repro.lint.base import Checker, FileContext
from repro.lint.cfg import Marker, build_cfg, function_defs
from repro.lint.dataflow import ForwardAnalysis, run_forward
from repro.lint.findings import Finding

#: var -> frozenset of (dtype token, defining line).
State = dict[str, frozenset[tuple[str, int]]]

#: numpy constructors whose result dtype we can read off the call.
_CONSTRUCTORS = {
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
    "numpy.full",
    "numpy.array",
    "numpy.asarray",
    "numpy.ascontiguousarray",
    "numpy.arange",
    "numpy.frombuffer",
    "numpy.fromiter",
}
#: Constructors defaulting to float64 when no ``dtype=`` is given.
_FLOAT_DEFAULT = {"numpy.zeros", "numpy.ones", "numpy.empty"}
_LIKE_CONSTRUCTORS = {"numpy.zeros_like", "numpy.ones_like", "numpy.empty_like"}

_TOKENS = {
    "int8", "int16", "int32", "int64", "intp",
    "uint8", "uint16", "uint32", "uint64", "uintp",
    "float16", "float32", "float64", "bool",
}
_STR_TOKENS = {
    "i1": "int8", "i2": "int16", "i4": "int32", "i8": "int64",
    "u1": "uint8", "u2": "uint16", "u4": "uint32", "u8": "uint64",
    "f2": "float16", "f4": "float32", "f8": "float64", "?": "bool",
}

#: Contract sinks: callee tail -> per-positional-arg accepted dtype kinds
#: (None: unconstrained).  Kinds are numpy kind letters.
_SINKS: dict[str, tuple[tuple[str, ...] | None, ...]] = {
    # UserArena columns (PR 8): integer codes, float64 estimates.
    "set_estimates": (("i", "u"), ("f",)),
    "set_all_estimates": (("f",),),
    # EncodedBatch construction: two integer id arrays.
    "from_int_arrays": (("i", "u"), ("i", "u")),
    # shm slot rings: slot index, then two fixed-width integer arrays.
    "write_raw": (None, ("i", "u"), ("i", "u")),
}

_SINK_CONTRACT = {
    "set_estimates": "arena columns are int codes + float64 estimates",
    "set_all_estimates": "arena estimate columns are float64",
    "from_int_arrays": "encoded batches carry integer id arrays",
    "write_raw": "shm slots carry fixed-width integer arrays",
}


def _kind(token: str) -> str:
    if token.startswith("uint"):
        return "u"
    if token.startswith("int"):
        return "i"
    if token.startswith("float"):
        return "f"
    return "b"


def _normalize_dtype(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """The dtype token named by a ``dtype=...`` argument, if recognisable."""
    if isinstance(node, ast.Call):
        origin = call_origin(node.func, aliases)
        if origin == "numpy.dtype" and node.args:
            return _normalize_dtype(node.args[0], aliases)
        return None
    if isinstance(node, ast.Attribute):
        base = call_origin(node, aliases)
        if base is not None and base.startswith("numpy."):
            token = base.removeprefix("numpy.").rstrip("_")
            return token if token in _TOKENS else None
        return None
    if isinstance(node, ast.Name):
        return {"int": "int64", "float": "float64", "bool": "bool"}.get(node.id)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.lstrip("<>|=")
        if text in _TOKENS:
            return text
        return _STR_TOKENS.get(text)
    return None


class _DtypeAnalysis(ForwardAnalysis[State]):
    def __init__(self, aliases: dict[str, str]) -> None:
        self.aliases = aliases

    def initial(self) -> State:
        return {}

    def join(self, left: State, right: State) -> State:
        joined = dict(left)
        for var, facts in right.items():
            joined[var] = joined.get(var, frozenset()) | facts
        return joined

    def transfer(self, element: ast.stmt | Marker, state: State) -> State:
        if isinstance(element, Marker):
            if element.kind == "loop_iter":
                stmt = element.node
                assert isinstance(stmt, (ast.For, ast.AsyncFor))
                if isinstance(stmt.target, ast.Name) and stmt.target.id in state:
                    state = dict(state)
                    del state[stmt.target.id]
            return state
        if isinstance(element, (ast.Assign, ast.AnnAssign)):
            targets = element.targets if isinstance(element, ast.Assign) else [element.target]
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names or element.value is None:
                return state
            facts = self._infer(element.value, state)
            state = dict(state)
            for name in names:
                if facts:
                    state[name] = facts
                else:
                    state.pop(name, None)
        elif isinstance(element, ast.AugAssign) and isinstance(element.target, ast.Name):
            if element.target.id in state:
                state = dict(state)
                del state[element.target.id]
        return state

    def _infer(self, value: ast.expr, state: State) -> frozenset[tuple[str, int]]:
        if isinstance(value, ast.Name):
            return state.get(value.id, frozenset())
        if not isinstance(value, ast.Call):
            return frozenset()
        # ``x.astype(D)``
        if isinstance(value.func, ast.Attribute) and value.func.attr == "astype":
            candidates = value.args[:1] + [
                kw.value for kw in value.keywords if kw.arg == "dtype"
            ]
            for node in candidates:
                token = _normalize_dtype(node, self.aliases)
                if token is not None:
                    return frozenset({(token, value.lineno)})
            return frozenset()
        origin = call_origin(value.func, self.aliases)
        if origin in _LIKE_CONSTRUCTORS:
            for keyword in value.keywords:
                if keyword.arg == "dtype":
                    token = _normalize_dtype(keyword.value, self.aliases)
                    if token is not None:
                        return frozenset({(token, value.lineno)})
                    return frozenset()
            if value.args and isinstance(value.args[0], ast.Name):
                return state.get(value.args[0].id, frozenset())
            return frozenset()
        if origin not in _CONSTRUCTORS:
            return frozenset()
        for keyword in value.keywords:
            if keyword.arg == "dtype":
                token = _normalize_dtype(keyword.value, self.aliases)
                if token is not None:
                    return frozenset({(token, value.lineno)})
                return frozenset()
        if origin in _FLOAT_DEFAULT:
            return frozenset({("float64", value.lineno)})
        return frozenset()


class DtypeFlowChecker(Checker):
    rule = "RL009"
    title = (
        "numpy dtype facts flow consistently into the wire-frame and "
        "arena column contracts (int64 ids, float64 estimates)"
    )
    scope = ("src/repro/*.py", "scripts/*.py")

    def check(self, context: FileContext) -> list[Finding]:
        aliases = context.import_aliases()
        if not any(origin == "numpy" for origin in aliases.values()):
            return []
        findings: list[Finding] = []
        for func in function_defs(context.tree):
            findings.extend(self._check_function(context, aliases, func))
        return findings

    def _check_function(
        self,
        context: FileContext,
        aliases: dict[str, str],
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[Finding]:
        cfg = build_cfg(func)
        result = run_forward(cfg, _DtypeAnalysis(aliases))
        findings: list[Finding] = []
        seen: set[tuple[int, int, str]] = set()
        for block_id, element in cfg.elements():
            fact = result.fact_in(block_id)
            if not fact:
                continue
            node = element.node if isinstance(element, Marker) else element
            for sub in walk_expressions(node):
                if isinstance(sub, ast.Call):
                    self._check_sink(context, fact, sub, findings, seen)
                elif isinstance(sub, ast.Assert):
                    self._check_assert(context, aliases, fact, sub, findings, seen)
        return findings

    def _check_sink(
        self,
        context: FileContext,
        fact: State,
        call: ast.Call,
        findings: list[Finding],
        seen: set[tuple[int, int, str]],
    ) -> None:
        tail = attr_tail(call.func) if isinstance(call.func, (ast.Attribute, ast.Name)) else None
        if tail not in _SINKS:
            return
        requirements = _SINKS[tail]
        for position, arg in enumerate(call.args):
            if position >= len(requirements) or requirements[position] is None:
                continue
            if not isinstance(arg, ast.Name) or arg.id not in fact:
                continue
            allowed = requirements[position]
            assert allowed is not None
            tokens = fact[arg.id]
            bad = sorted({t for t, _ in tokens if _kind(t) not in allowed})
            if not bad:
                continue
            key = (call.lineno, call.col_offset, f"{tail}:{arg.id}")
            if key in seen:
                continue
            seen.add(key)
            kinds = sorted({t for t, _ in tokens})
            if len(kinds) > 1:
                drift = " | ".join(kinds)
                message = (
                    f"dtype of `{arg.id}` depends on the path taken ({drift}) "
                    f"at {tail}() — {_SINK_CONTRACT[tail]}"
                )
            else:
                message = (
                    f"passes `{arg.id}` (dtype {bad[0]}) to {tail}() — "
                    f"{_SINK_CONTRACT[tail]}"
                )
            lines = ", ".join(str(line) for _, line in sorted(tokens))
            findings.append(
                Finding(
                    path=context.rel,
                    line=call.lineno,
                    col=call.col_offset,
                    rule=self.rule,
                    message=message,
                    hint=f"dtype set on line(s) {lines}; convert with .astype or fix the constructor",
                )
            )

    def _check_assert(
        self,
        context: FileContext,
        aliases: dict[str, str],
        fact: State,
        node: ast.Assert,
        findings: list[Finding],
        seen: set[tuple[int, int, str]],
    ) -> None:
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.left, ast.Attribute)
            and test.left.attr == "dtype"
            and isinstance(test.left.value, ast.Name)
        ):
            return
        var = test.left.value.id
        if var not in fact:
            return
        expected = _normalize_dtype(test.comparators[0], aliases)
        if expected is None:
            return
        tokens = {t for t, _ in fact[var]}
        if expected in tokens:
            return
        key = (node.lineno, node.col_offset, f"assert:{var}")
        if key in seen:
            return
        seen.add(key)
        actual = " | ".join(sorted(tokens))
        findings.append(
            Finding(
                path=context.rel,
                line=node.lineno,
                col=node.col_offset,
                rule=self.rule,
                message=(
                    f"assert requires `{var}.dtype == {expected}` but every "
                    f"reaching definition makes it {actual}"
                ),
                hint="fix the constructor dtype or the assertion — one of them has drifted",
            )
        )
