"""The shipped checker set, one module per rule."""

from repro.lint.base import Checker
from repro.lint.checkers.async_blocking import AsyncBlockingChecker
from repro.lint.checkers.async_cancel import AsyncCancelChecker
from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.dtype_flow import DtypeFlowChecker
from repro.lint.checkers.hotpath import HotPathChecker
from repro.lint.checkers.lock_flow import LockFlowChecker
from repro.lint.checkers.locks import LockDisciplineChecker
from repro.lint.checkers.metrics_drift import MetricsDriftChecker
from repro.lint.checkers.registry_sync import RegistrySyncChecker
from repro.lint.checkers.resource_leak import ResourceLeakChecker


def all_checkers() -> list[Checker]:
    """Fresh instances of every shipped checker, in rule-id order."""
    return [
        LockDisciplineChecker(),
        AsyncBlockingChecker(),
        HotPathChecker(),
        RegistrySyncChecker(),
        DeterminismChecker(),
        MetricsDriftChecker(),
        ResourceLeakChecker(),
        LockFlowChecker(),
        DtypeFlowChecker(),
        AsyncCancelChecker(),
    ]
