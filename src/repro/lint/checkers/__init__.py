"""The shipped checker set, one module per rule."""

from repro.lint.base import Checker
from repro.lint.checkers.async_blocking import AsyncBlockingChecker
from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.hotpath import HotPathChecker
from repro.lint.checkers.locks import LockDisciplineChecker
from repro.lint.checkers.metrics_drift import MetricsDriftChecker
from repro.lint.checkers.registry_sync import RegistrySyncChecker


def all_checkers() -> list[Checker]:
    """Fresh instances of every shipped checker, in rule-id order."""
    return [
        LockDisciplineChecker(),
        AsyncBlockingChecker(),
        HotPathChecker(),
        RegistrySyncChecker(),
        DeterminismChecker(),
        MetricsDriftChecker(),
    ]
