"""RL010 — async cancellation safety: joined tasks, shielded cleanup.

Two cancellation hazards the asyncio service layer (PR 4/6) must never
reintroduce:

* **fire-and-forget tasks.** ``asyncio.create_task`` hands back a handle
  that somebody must ``await`` (or ``cancel()`` *and then* await): a task
  nobody joins silently swallows its exceptions, and one that is cancelled
  but never awaited may still be mid-``finally`` when the server tears
  down its state.  The ownership dataflow tracks task handles exactly like
  RL007 tracks file handles — storing the task, returning it, gathering
  it, or registering a done-callback all transfer ownership; a path on
  which the local handle is still pending (or cancelled-but-unjoined) at a
  function exit is a finding;
* **unshielded awaits in ``finally``.** Cleanup code runs on the
  cancellation path too: a bare ``await`` inside ``finally`` re-raises
  ``CancelledError`` immediately and abandons the rest of the cleanup.
  The sanctioned pattern is ``await asyncio.shield(...)``; the finding
  carries an autofix that wraps the awaited expression.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import attr_tail, walk_expressions
from repro.lint.base import Checker, FileContext
from repro.lint.cfg import build_cfg, function_defs
from repro.lint.dataflow import run_forward
from repro.lint.findings import Edit, Finding, Fix
from repro.lint.ownership import OwnershipAnalysis, Site

_TASK_ORIGINS = {"asyncio.create_task", "asyncio.ensure_future"}

#: Methods on a task handle that discharge or re-status the claim.
_TASK_METHODS = {
    "cancel": "cancelled",
    "add_done_callback": "",  # someone will observe the task
    "result": "",
    "exception": "",
}


class _TaskAnalysis(OwnershipAnalysis):
    status_order = ("pending", "cancelled", "held")
    acquire_status = "pending"

    def acquire(self, call: ast.Call) -> str | None:
        origin = self.origin_of(call)
        if origin in _TASK_ORIGINS:
            return f"{origin}(...)"
        # ``loop.create_task(...)`` — any loop-ish receiver counts; a
        # TaskGroup joins its tasks itself and is spelled differently.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "create_task"
            and "loop" in (attr_tail(call.func.value) or "").lower()
        ):
            return "loop.create_task(...)"
        return None

    def release_status(self, method: str) -> str | None:
        return _TASK_METHODS.get(method)

    def _scan_await(self, node, state, discharged, restatus):
        # ``await t`` / ``await asyncio.gather(t, ...)`` joins the task.
        value = node.value
        if isinstance(value, ast.Name) and value.id in state:
            discharged = discharged | {value.id}
        elif isinstance(value, ast.Call):
            for sub in walk_expressions(value):
                if isinstance(sub, ast.Name) and sub.id in state:
                    discharged = discharged | {sub.id}
        return discharged, restatus


class AsyncCancelChecker(Checker):
    rule = "RL010"
    title = (
        "async tasks are joined (awaited or cancel+awaited) and "
        "finally-block awaits are cancellation-shielded"
    )
    scope = ("src/repro/service/*.py", "src/repro/runtime/*.py", "src/repro/cli.py")

    def check(self, context: FileContext) -> list[Finding]:
        aliases = context.import_aliases()
        findings: list[Finding] = []
        for func in function_defs(context.tree):
            if isinstance(func, ast.AsyncFunctionDef):
                findings.extend(self._check_finally_awaits(context, aliases, func))
            findings.extend(self._check_task_joins(context, aliases, func))
        return findings

    # -- unshielded awaits in finally ---------------------------------------

    def _check_finally_awaits(
        self, context: FileContext, aliases: dict[str, str], func: ast.AsyncFunctionDef
    ) -> list[Finding]:
        from repro.lint.astutil import call_origin

        has_asyncio = any(origin == "asyncio" for origin in aliases.values())
        findings: list[Finding] = []
        for node in walk_expressions(func):
            if not (isinstance(node, ast.Try) and node.finalbody):
                continue
            for stmt in node.finalbody:
                for sub in walk_expressions(stmt):
                    if not isinstance(sub, ast.Await):
                        continue
                    value = sub.value
                    if (
                        isinstance(value, ast.Call)
                        and call_origin(value.func, aliases) == "asyncio.shield"
                    ):
                        continue
                    fix = None
                    if has_asyncio and value.end_lineno is not None:
                        fix = Fix(
                            description="wrap the awaited expression in asyncio.shield(...)",
                            edits=(
                                Edit(
                                    value.lineno,
                                    value.col_offset,
                                    value.lineno,
                                    value.col_offset,
                                    "asyncio.shield(",
                                ),
                                Edit(
                                    value.end_lineno,
                                    value.end_col_offset or 0,
                                    value.end_lineno,
                                    value.end_col_offset or 0,
                                    ")",
                                ),
                            ),
                        )
                    findings.append(
                        Finding(
                            path=context.rel,
                            line=sub.lineno,
                            col=sub.col_offset,
                            rule=self.rule,
                            message=(
                                f"{func.name} awaits inside `finally:` without "
                                "asyncio.shield — cancellation abandons the cleanup"
                            ),
                            hint="await asyncio.shield(...) so cleanup survives cancellation",
                            fix=fix,
                        )
                    )
        return findings

    # -- unjoined tasks ------------------------------------------------------

    def _check_task_joins(
        self,
        context: FileContext,
        aliases: dict[str, str],
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[Finding]:
        analysis = _TaskAnalysis(aliases)
        if not self._creates_tasks(func, analysis):
            return []
        cfg = build_cfg(func)
        result = run_forward(cfg, analysis)
        findings: list[Finding] = []
        # Only return exits are reported: every statement between
        # create_task and the join makes an exception path on which the
        # task is technically still pending, and flagging those would bury
        # the actual fire-and-forget bugs under structural noise.
        flagged: dict[tuple[str, Site], tuple[str, bool]] = {}
        for var, claim in result.at_exit.items():
            for site in claim.sites:
                flagged[(var, site)] = (claim.status, claim.definite)
        for (var, site), (status, definite) in sorted(flagged.items()):
            line, col, what = site
            where = "on every path" if definite else "on some paths"
            if status == "cancelled":
                message = (
                    f"task `{var}` from {what} is cancelled but never awaited "
                    f"{where} — the cancellation is not joined"
                )
                hint = "await the task after cancel() (swallowing CancelledError) to join it"
            else:
                message = (
                    f"task `{var}` from {what} is neither awaited nor cancelled "
                    f"{where} in {func.name} — its exceptions vanish"
                )
                hint = "await it, gather it, store it for a later join, or cancel-and-await"
            findings.append(
                Finding(
                    path=context.rel,
                    line=line,
                    col=col,
                    rule=self.rule,
                    message=message,
                    hint=hint,
                )
            )
        return findings

    def _creates_tasks(self, func: ast.AST, analysis: _TaskAnalysis) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and analysis.acquire(node) is not None:
                return True
        return False
