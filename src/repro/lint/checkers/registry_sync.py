"""RL004 — registry consistency across serialization and the wire.

Two registries promise "describe once, derive everywhere": the method
registry (:mod:`repro.registry.specs`) and the service op registry
(:mod:`repro.service.ops`).  Their *consumers* live in other files, and
nothing ties them together at commit time — a new ``MethodSpec`` without a
codec entry fails only when the first snapshot is written; a new binary
array field without a client counterpart fails only on the wire.  This
cross-file rule closes the loop:

* every ``MethodSpec`` name has a dump/load entry in
  ``core/serialization.py``'s ``_METHOD_STATE_CODECS`` table;
* every ``MethodSpec.tag`` is exercised by ``tests/test_serialization.py``
  (the round-trip suite), which must also cover every accepted format
  version (v1 / v2 / v3 — ``_ACCEPTED_VERSIONS``);
* every ``OpSpec.request_arrays`` / ``result_arrays`` *kind* is a key of
  ``service/frames.py``'s ``_KIND_DTYPES`` (the binary transport can
  actually lift it);
* every such array *field name* appears in ``service/client.py`` (the
  client knows the field exists — as a literal or a keyword argument).
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, ProjectContext
from repro.lint.findings import Finding

_SPECS = "src/repro/registry/specs.py"
_SERIALIZATION = "src/repro/core/serialization.py"
_SER_TESTS = "tests/test_serialization.py"
_OPS = "src/repro/service/ops.py"
_FRAMES = "src/repro/service/frames.py"
_CLIENT = "src/repro/service/client.py"


def _call_kwarg(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _literal_strings(node: ast.AST) -> set[str]:
    return {
        constant.value
        for constant in ast.walk(node)
        if isinstance(constant, ast.Constant) and isinstance(constant.value, str)
    }


def _dict_literal_keys(tree: ast.Module, variable: str) -> set[str] | None:
    """String keys of the dict literal assigned to ``variable``, if found."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        named = any(isinstance(t, ast.Name) and t.id == variable for t in targets)
        if named and isinstance(node.value, ast.Dict):
            return {
                key.value
                for key in node.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
    return None


def _spec_calls(tree: ast.Module, class_name: str) -> list[ast.Call]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == class_name
    ]


def _array_decls(call: ast.Call, field: str) -> list[tuple[str, str, int, int]]:
    """(name, kind, line, col) entries of one OpSpec array declaration."""
    value = _call_kwarg(call, field)
    entries: list[tuple[str, str, int, int]] = []
    if not isinstance(value, (ast.Tuple, ast.List)):
        return entries
    for element in value.elts:
        if isinstance(element, (ast.Tuple, ast.List)) and len(element.elts) == 2:
            name_node, kind_node = element.elts
            if (
                isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)
                and isinstance(kind_node, ast.Constant)
                and isinstance(kind_node.value, str)
            ):
                entries.append(
                    (name_node.value, kind_node.value, element.lineno, element.col_offset)
                )
    return entries


class RegistrySyncChecker(Checker):
    rule = "RL004"
    title = (
        "every registry entry has its serialization codec, round-trip "
        "test and wire counterpart (describe once, derive everywhere)"
    )

    def finalize(self, project: ProjectContext) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_method_registry(project))
        findings.extend(self._check_op_registry(project))
        return findings

    def _check_method_registry(self, project: ProjectContext) -> list[Finding]:
        specs = project.load(_SPECS)
        serialization = project.load(_SERIALIZATION)
        if specs is None or serialization is None:
            return []
        findings: list[Finding] = []
        codec_names = _dict_literal_keys(serialization.tree, "_METHOD_STATE_CODECS") or set()
        test_source = project.read_text(_SER_TESTS) or ""
        for call in _spec_calls(specs.tree, "MethodSpec"):
            name_node = _call_kwarg(call, "name")
            tag_node = _call_kwarg(call, "tag")
            if not (isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)):
                continue
            name = name_node.value
            tag = tag_node.value if isinstance(tag_node, ast.Constant) else name
            if name not in codec_names:
                findings.append(
                    Finding(
                        path=specs.rel,
                        line=call.lineno,
                        col=call.col_offset,
                        rule=self.rule,
                        message=(
                            f"MethodSpec {name!r} has no codec entry in "
                            f"{_SERIALIZATION} _METHOD_STATE_CODECS"
                        ),
                        hint="snapshots of this method cannot serialize; add dump/load functions",
                    )
                )
            if f'"{tag}"' not in test_source and f"'{tag}'" not in test_source:
                findings.append(
                    Finding(
                        path=specs.rel,
                        line=call.lineno,
                        col=call.col_offset,
                        rule=self.rule,
                        message=(
                            f"MethodSpec tag {tag!r} is never exercised by {_SER_TESTS}"
                        ),
                        hint="add a round-trip test for the new kind",
                    )
                )
        if test_source:
            for version in ("v1", "v2", "v3"):
                if version not in test_source:
                    findings.append(
                        Finding(
                            path=_SER_TESTS,
                            line=1,
                            col=0,
                            rule=self.rule,
                            message=(
                                f"serialization round-trip tests never mention {version} "
                                "(accepted format versions are v1/v2/v3)"
                            ),
                            hint="keep a load test for every accepted envelope version",
                        )
                    )
        return findings

    def _check_op_registry(self, project: ProjectContext) -> list[Finding]:
        ops = project.load(_OPS)
        frames = project.load(_FRAMES)
        client = project.load(_CLIENT)
        if ops is None or frames is None or client is None:
            return []
        findings: list[Finding] = []
        kinds = _dict_literal_keys(frames.tree, "_KIND_DTYPES") or set()
        client_names = _literal_strings(client.tree) | {
            keyword.arg
            for node in ast.walk(client.tree)
            if isinstance(node, ast.Call)
            for keyword in node.keywords
            if keyword.arg is not None
        }
        for call in _spec_calls(ops.tree, "OpSpec"):
            for field in ("request_arrays", "result_arrays"):
                for name, kind, line, col in _array_decls(call, field):
                    if kind not in kinds:
                        findings.append(
                            Finding(
                                path=ops.rel,
                                line=line,
                                col=col,
                                rule=self.rule,
                                message=(
                                    f"{field} kind {kind!r} has no dtype entry in "
                                    f"{_FRAMES} _KIND_DTYPES"
                                ),
                                hint="the binary transport cannot lift this field; add the kind",
                            )
                        )
                    if name not in client_names:
                        findings.append(
                            Finding(
                                path=ops.rel,
                                line=line,
                                col=col,
                                rule=self.rule,
                                message=(
                                    f"{field} field {name!r} is never referenced by {_CLIENT}"
                                ),
                                hint="teach ServiceClient the field (lift plan / result parsing)",
                            )
                        )
        return findings
