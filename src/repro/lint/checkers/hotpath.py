"""RL003 — hot-path purity: vectorized kernels stay vectorized.

PRs 1, 5 and 8 earned their speedups by removing per-element Python from
the batch update/query paths; nothing stops a convenient ``for user in
users:`` from creeping back.  Inside the designated hot modules
(``engine/kernels.py``, ``engine/query.py``, ``state/arena.py``) and any
function marked ``@hot_path`` (:func:`repro.engine.hot_path`) anywhere,
this rule flags the three regressions that ate the previous wins:

* a loop (statement or comprehension) over ``.items()`` / ``.keys()`` /
  ``.values()`` — the per-user dict hop the arena exists to eliminate;
* a numpy call inside a ``for``/``while`` body — per-element numpy
  dispatch overhead, the opposite of one whole-array call;
* in ``@hot_path`` functions: a ``for`` loop directly over a function
  parameter — the per-element iteration the marker promises not to do.

Dunder methods in hot modules are exempt: ``__deepcopy__``,
``__getstate__`` and friends are snapshot/debug paths, not data paths.
Genuinely-bounded scalar fallbacks (cache-miss fills) stay expressible via
an explicit suppression naming the bound.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, FileContext
from repro.lint.findings import Finding

_DICT_HOPS = {"items", "keys", "values"}

#: Names numpy is imported as across this repository.
_NUMPY_ALIASES = {"np", "numpy"}


def _is_hot_path_decorated(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in func.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "hot_path":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "hot_path":
            return True
    return False


def _is_numpy_call(call: ast.Call) -> bool:
    node = call.func
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id in _NUMPY_ALIASES


class HotPathChecker(Checker):
    rule = "RL003"
    title = (
        "hot-path kernels stay vectorized: no per-element loops, dict "
        "hops or per-element numpy dispatch (PRs 1/5/8)"
    )
    scope = (
        "src/repro/engine/kernels.py",
        "src/repro/engine/query.py",
        "src/repro/state/arena.py",
        "src/repro/**/*.py",  # @hot_path-marked functions anywhere
        "scripts/*.py",
    )

    #: Files where *every* function is hot (module scope), not only marked ones.
    _HOT_MODULES = (
        "src/repro/engine/kernels.py",
        "src/repro/engine/query.py",
        "src/repro/state/arena.py",
    )

    def check(self, context: FileContext) -> list[Finding]:
        module_is_hot = context.rel in self._HOT_MODULES
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            marked = _is_hot_path_decorated(node)
            if marked:
                self._check_function(context, node, findings, marked=True)
            elif module_is_hot and not node.name.startswith("__"):
                self._check_function(context, node, findings, marked=False)
        return findings

    def _check_function(
        self,
        context: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        findings: list[Finding],
        marked: bool,
    ) -> None:
        params = {
            arg.arg
            for arg in [
                *func.args.posonlyargs,
                *func.args.args,
                *func.args.kwonlyargs,
            ]
            if arg.arg not in ("self", "cls")
        }

        def visit(node: ast.AST, in_loop: bool) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                return  # nested defs are their own scope (checked if marked)
            if isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if (
                    isinstance(iterable, ast.Call)
                    and isinstance(iterable.func, ast.Attribute)
                    and iterable.func.attr in _DICT_HOPS
                ):
                    anchor = node if isinstance(node, ast.For) else iterable
                    findings.append(
                        self._finding(
                            context,
                            anchor,
                            func,
                            f"iterates `.{iterable.func.attr}()` per element",
                            "gather through the arena / a vectorized column instead",
                        )
                    )
                if (
                    marked
                    and isinstance(node, ast.For)
                    and isinstance(iterable, ast.Name)
                    and iterable.id in params
                ):
                    findings.append(
                        self._finding(
                            context,
                            node,
                            func,
                            f"loops per element over parameter `{iterable.id}`",
                            "vectorize over the whole batch (the @hot_path promise)",
                        )
                    )
            if isinstance(node, ast.Call) and in_loop and _is_numpy_call(node):
                findings.append(
                    self._finding(
                        context,
                        node,
                        func,
                        "calls numpy inside a Python loop",
                        "hoist to one whole-array operation outside the loop",
                    )
                )
            if isinstance(node, ast.For):
                # The iterable expression runs once; only the body repeats.
                visit(node.iter, in_loop)
                visit(node.target, in_loop)
                for stmt in [*node.body, *node.orelse]:
                    visit(stmt, True)
                return
            entering_loop = in_loop or isinstance(node, ast.While)
            for child in ast.iter_child_nodes(node):
                visit(child, entering_loop)

        visit(func, False)

    def _finding(
        self,
        context: FileContext,
        node: ast.AST,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        what: str,
        hint: str,
    ) -> Finding:
        return Finding(
            path=context.rel,
            line=getattr(node, "lineno", func.lineno),
            col=getattr(node, "col_offset", func.col_offset),
            rule=self.rule,
            message=f"hot path {func.name} {what}",
            hint=hint,
        )
