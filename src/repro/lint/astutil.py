"""Small AST helpers shared by the checker set.

These existed as private helpers inside individual checkers (RL002 grew
the first copies); the flow rules need them too, so they live here once.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator


def call_origin(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """Dotted origin of a call target, resolved through import aliases.

    ``sleep(...)`` under ``from time import sleep`` resolves to
    ``time.sleep``; ``np.zeros`` under ``import numpy as np`` to
    ``numpy.zeros``.  Attribute chains rooted in anything but a name
    (``foo().bar``) resolve to None.
    """
    if isinstance(func, ast.Name):
        return aliases.get(func.id, func.id)
    if isinstance(func, ast.Attribute):
        base = call_origin(func.value, aliases)
        if base is None:
            return None
        return f"{base}.{func.attr}"
    return None


def dotted_name(node: ast.expr) -> str | None:
    """The literal dotted text of a Name/Attribute chain (``self._lock``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def attr_tail(node: ast.expr) -> str | None:
    """Trailing attribute/identifier name of a dotted expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def walk_expressions(element: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class defs.

    A statement's flow effects stop at a nested ``def`` — its body runs
    later, under whoever calls it — so flow transfer functions scan with
    this instead of :func:`ast.walk`.
    """
    stack = [element]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(child, ast.Lambda):
                continue
            stack.append(child)


def names_loaded(element: ast.AST) -> set[str]:
    """Every bare name read anywhere in ``element`` (nested defs excluded)."""
    return {
        node.id
        for node in walk_expressions(element)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }
