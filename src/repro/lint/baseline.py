"""The ratchet baseline: known findings may linger, new ones may not.

Turning the flow-sensitive rules on over a living tree surfaces findings
that are real but not this change's to fix.  The baseline records them —
keyed by ``(path, rule, message)`` with a count, deliberately *without*
line numbers so unrelated edits above a finding do not churn the file —
and CI fails only on findings absent from it.  The ratchet direction is
one-way by convention: ``--update-baseline`` is run when findings are
*fixed* (shrinking the file), never to bury new ones.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

_VERSION = 1


def finding_key(finding: Finding) -> str:
    """The baseline identity of a finding (line numbers excluded, stable)."""
    return f"{finding.path}::{finding.rule}::{finding.message}"


def load_baseline(path: Path) -> Counter[str]:
    """The recorded finding multiset; empty when absent or unreadable."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return Counter()
    if not isinstance(raw, dict) or raw.get("version") != _VERSION:
        return Counter()
    findings = raw.get("findings")
    if not isinstance(findings, dict):
        return Counter()
    return Counter(
        {str(key): int(count) for key, count in findings.items() if int(count) > 0}
    )


def save_baseline(path: Path, findings: list[Finding]) -> None:
    counts = Counter(finding_key(finding) for finding in findings)
    document = {
        "version": _VERSION,
        "findings": dict(sorted(counts.items())),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", "utf-8")


@dataclass
class BaselineDiff:
    """This run's findings split against the recorded baseline."""

    #: Findings not covered by the baseline — these fail the run.
    new: list[Finding] = field(default_factory=list)
    #: Findings the baseline already records — reported, never fatal.
    known: list[Finding] = field(default_factory=list)
    #: Baseline keys with fewer occurrences now than recorded — fixed
    #: findings whose entries should be ratcheted out.
    resolved: list[str] = field(default_factory=list)


def diff_baseline(findings: list[Finding], baseline: Counter[str]) -> BaselineDiff:
    """Split ``findings`` into new/known and list the resolved keys.

    When a key occurs more often than the baseline records, the recorded
    count is treated as known and the excess (in sorted order) as new.
    """
    result = BaselineDiff()
    remaining = Counter(baseline)
    for finding in sorted(findings):
        key = finding_key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            result.known.append(finding)
        else:
            result.new.append(finding)
    result.resolved = sorted(key for key, count in remaining.items() if count > 0)
    return result
