"""Applying autofixes: span edits, bottom-up, one file at a time.

A :class:`~repro.lint.findings.Fix` is a set of span-based edits that must
land atomically — the shield fix, for example, is two insertions that are
nonsense applied alone.  The applier therefore admits or rejects whole
fixes: a fix whose edits overlap an already-admitted fix (two rules
rewriting the same span) is skipped and stays reported, never half-applied.
Admitted edits are applied bottom-up — descending source offset — so each
edit's span is still valid when its turn comes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.lint.findings import Edit, Finding


@dataclass
class FixReport:
    """What ``--fix`` did to one tree."""

    #: rel path -> number of fixes applied there.
    applied: dict[str, int]
    #: Fixable findings skipped because their edits conflicted.
    skipped: list[Finding]

    @property
    def total(self) -> int:
        return sum(self.applied.values())


def _offsets(source: str) -> list[int]:
    """Absolute offset of the start of each 1-based line."""
    starts = [0]
    for line in source.splitlines(keepends=True):
        starts.append(starts[-1] + len(line))
    return starts


def _span(edit: Edit, starts: list[int]) -> tuple[int, int] | None:
    """The absolute ``[start, end)`` span of an edit, or None if out of range."""
    if not (1 <= edit.line < len(starts) + 1 and 1 <= edit.end_line < len(starts) + 1):
        return None
    start = starts[edit.line - 1] + edit.col
    end = starts[edit.end_line - 1] + edit.end_col
    if start > end or end > starts[-1]:
        return None
    return start, end


def _conflicts(span: tuple[int, int], taken: list[tuple[int, int]]) -> bool:
    start, end = span
    for other_start, other_end in taken:
        # Zero-width insertions at the same point conflict too: their
        # relative order would be an accident of sorting.
        if start < other_end and other_start < end:
            return True
        if start == end and other_start <= start <= other_end:
            return True
        if other_start == other_end and start <= other_start <= end:
            return True
    return False


def fix_source(source: str, findings: list[Finding]) -> tuple[str, int, list[Finding]]:
    """Apply the fixes carried by ``findings`` to ``source``.

    Returns ``(new_source, fixes_applied, skipped_findings)``.
    """
    starts = _offsets(source)
    taken: list[tuple[int, int]] = []
    admitted: list[tuple[tuple[int, int], str]] = []
    applied = 0
    skipped: list[Finding] = []
    for finding in sorted(findings):
        if finding.fix is None:
            continue
        spans = [_span(edit, starts) for edit in finding.fix.edits]
        if any(span is None for span in spans) or any(
            _conflicts(span, taken) for span in spans if span is not None
        ):
            skipped.append(finding)
            continue
        for span, edit in zip(spans, finding.fix.edits):
            assert span is not None
            taken.append(span)
            admitted.append((span, edit.text))
        applied += 1
    # Bottom-up: descending start offset keeps earlier spans valid.
    text = source
    for (start, end), replacement in sorted(admitted, reverse=True):
        text = text[:start] + replacement + text[end:]
    return text, applied, skipped


def apply_fixes(root: Path, findings: list[Finding]) -> FixReport:
    """Apply every carried fix, grouped per file, writing files in place."""
    by_path: dict[str, list[Finding]] = {}
    for finding in findings:
        if finding.fix is not None:
            by_path.setdefault(finding.path, []).append(finding)
    report = FixReport(applied={}, skipped=[])
    for rel in sorted(by_path):
        path = root / rel
        if not path.is_file():
            report.skipped.extend(by_path[rel])
            continue
        source = path.read_text(encoding="utf-8")
        fixed, count, skipped = fix_source(source, by_path[rel])
        report.skipped.extend(skipped)
        if count and fixed != source:
            path.write_text(fixed, encoding="utf-8")
            report.applied[rel] = count
    return report
