"""Structured lint findings.

Every checker reports :class:`Finding` records — one invariant violation
each, carrying the rule id, the ``file:line:col`` anchor, a one-line
message and a *fix hint* (what a developer should actually do about it).
Findings are plain data: the driver sorts, filters (suppressions) and
renders them as text or JSON without checkers knowing about output.

A finding may additionally carry a :class:`Fix` — a set of span-based
source edits that mechanically repair the violation.  ``--fix`` applies
them bottom-up per file (later edits first, so earlier spans stay valid);
a finding without a fix is report-only.  Fixes round-trip through the
JSON form so the incremental cache can serve them warm.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Edit:
    """Replace one source span with ``text`` (pure insertion when empty).

    ``line``/``end_line`` are 1-based, ``col``/``end_col`` 0-based — the
    :mod:`ast` location convention — and the span end is exclusive.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    text: str

    def to_list(self) -> list[object]:
        return [self.line, self.col, self.end_line, self.end_col, self.text]

    @classmethod
    def from_list(cls, raw: list[object]) -> Edit:
        line, col, end_line, end_col, text = raw
        return cls(int(line), int(col), int(end_line), int(end_col), str(text))  # type: ignore[arg-type]


@dataclass(frozen=True)
class Fix:
    """A mechanical repair: what it does, and the edits that do it."""

    description: str
    edits: tuple[Edit, ...]

    def to_dict(self) -> dict[str, object]:
        return {
            "description": self.description,
            "edits": [edit.to_list() for edit in self.edits],
        }

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> Fix:
        edits = tuple(Edit.from_list(item) for item in raw["edits"])  # type: ignore[union-attr]
        return cls(description=str(raw["description"]), edits=edits)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Path of the offending file, relative to the repository root.
    path: str
    #: 1-based line of the violation (0 for whole-file findings).
    line: int
    #: 0-based column of the violation.
    col: int
    #: Rule id (``RL001`` .. ``RL010``; ``RL000`` for suppression hygiene,
    #: ``RL099`` for files the driver could not read or parse).
    rule: str
    #: One-line statement of the violated invariant.
    message: str
    #: What to do about it (shown after the message, serialised in JSON).
    hint: str = field(default="", compare=False)
    #: Mechanical repair applied by ``--fix`` (None: report-only).
    fix: Fix | None = field(default=None, compare=False)

    def render(self) -> str:
        """The canonical one-line text rendering."""
        location = f"{self.path}:{self.line}:{self.col}"
        text = f"{location}: {self.rule} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        if self.fix is not None:
            text += " [fixable]"
        return text

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (the ``--json`` findings artifact)."""
        document: dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }
        if self.fix is not None:
            document["fix"] = self.fix.to_dict()
        return document

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> Finding:
        """Rebuild a finding from :meth:`to_dict` (the cache's wire form)."""
        fix = raw.get("fix")
        return cls(
            path=str(raw["path"]),
            line=int(raw["line"]),  # type: ignore[arg-type]
            col=int(raw["col"]),  # type: ignore[arg-type]
            rule=str(raw["rule"]),
            message=str(raw["message"]),
            hint=str(raw.get("hint", "")),
            fix=Fix.from_dict(fix) if isinstance(fix, dict) else None,
        )
