"""Structured lint findings.

Every checker reports :class:`Finding` records — one invariant violation
each, carrying the rule id, the ``file:line:col`` anchor, a one-line
message and a *fix hint* (what a developer should actually do about it).
Findings are plain data: the driver sorts, filters (suppressions) and
renders them as text or JSON without checkers knowing about output.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Path of the offending file, relative to the repository root.
    path: str
    #: 1-based line of the violation (0 for whole-file findings).
    line: int
    #: 0-based column of the violation.
    col: int
    #: Rule id (``RL001`` .. ``RL006``; ``RL000`` for suppression hygiene).
    rule: str
    #: One-line statement of the violated invariant.
    message: str
    #: What to do about it (shown after the message, serialised in JSON).
    hint: str = field(default="", compare=False)

    def render(self) -> str:
        """The canonical one-line text rendering."""
        location = f"{self.path}:{self.line}:{self.col}"
        text = f"{location}: {self.rule} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (the ``--json`` findings artifact)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }
