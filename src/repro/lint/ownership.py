"""Ownership dataflow: a local acquires something that must be disposed.

Two shipped rules are instances of the same lattice — RL007 tracks OS
resources (files, sockets, shared-memory segments) that must be closed,
RL010 tracks asyncio tasks that must be awaited or cancelled.  Both boil
down to: a *local variable* acquires ownership at some site, ownership is
discharged by a release call / a ``with`` exit / an escape (the value is
returned, stored, or handed to another callee), and a path on which the
variable still owns the thing at a function exit is a finding.

The fact is a map ``variable -> Claim``; :class:`Claim` remembers the
acquire site(s), whether ownership holds on *every* path reaching here
(``definite``) or only some, and a rule-specific ``status`` ("held",
"pending", "cancelled", ...).

Escape analysis is deliberately generous: any use of the owned name as a
call argument, in a ``return``/``yield`` value, or on the right of an
assignment into an attribute/subscript/container counts as a transfer of
ownership and ends tracking.  Generosity here trades false negatives for
precision — every remaining finding is a local that *nobody else could
have released*.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace

from repro.lint.astutil import call_origin, walk_expressions
from repro.lint.cfg import Marker
from repro.lint.dataflow import ForwardAnalysis

#: (line, col, description) of one acquire site.
Site = tuple[int, int, str]


@dataclass(frozen=True)
class Claim:
    """Ownership of one value by one local variable."""

    sites: frozenset[Site]
    definite: bool = True
    status: str = "held"


State = dict[str, Claim]


class OwnershipAnalysis(ForwardAnalysis[State]):
    """Track local ownership claims through one function's CFG."""

    #: ``status`` values ordered most-severe-first; joins of unequal
    #: statuses keep the more severe one.
    status_order: tuple[str, ...] = ("held",)
    #: Status a fresh claim starts in.
    acquire_status: str = "held"

    def __init__(self, aliases: dict[str, str]) -> None:
        self.aliases = aliases

    # -- hooks for concrete rules ------------------------------------------

    def acquire(self, call: ast.Call) -> str | None:
        """Description of what ``call`` acquires, or None."""
        raise NotImplementedError

    def release_status(self, method: str) -> str | None:
        """New status after ``owned.<method>()`` — "" releases outright."""
        raise NotImplementedError

    # -- lattice ------------------------------------------------------------

    def initial(self) -> State:
        return {}

    def join(self, left: State, right: State) -> State:
        joined: State = {}
        for var in left.keys() | right.keys():
            a, b = left.get(var), right.get(var)
            if a is None or b is None:
                present = a if a is not None else b
                assert present is not None
                joined[var] = replace(present, definite=False)
            else:
                status = a.status
                if a.status != b.status:
                    by_severity = {name: i for i, name in enumerate(self.status_order)}
                    status = min(
                        (a.status, b.status), key=lambda s: by_severity.get(s, len(by_severity))
                    )
                joined[var] = Claim(
                    sites=a.sites | b.sites,
                    definite=a.definite and b.definite,
                    status=status,
                )
        return joined

    # -- transfer -----------------------------------------------------------

    def transfer(self, element: ast.stmt | Marker, state: State) -> State:
        if isinstance(element, Marker):
            return self._transfer_marker(element, state)
        state = self._scan_uses(element, state)
        if isinstance(element, ast.Delete):
            state = {
                var: claim
                for var, claim in state.items()
                if var not in {t.id for t in element.targets if isinstance(t, ast.Name)}
            }
        if isinstance(element, (ast.Assign, ast.AnnAssign)):
            state = self._transfer_assign(element, state)
        return state

    def exception_state(self, element: ast.stmt | Marker, pre: State, post: State) -> State:
        # Binding an acquired value is atomic-on-success: if the acquiring
        # call raised, nothing was bound, so only the pre-state escapes.
        # If the element *released* claims (close() raised after closing,
        # an escape call raised after taking ownership), the discharged
        # state escapes — never resurrect a claim on the exception edge.
        if set(post) <= set(pre):
            return post
        return pre

    def _transfer_marker(self, marker: Marker, state: State) -> State:
        if marker.kind == "with_enter":
            item = marker.node
            assert isinstance(item, ast.withitem)
            state = self._scan_uses(item.context_expr, state)
            if isinstance(item.context_expr, ast.Call) and isinstance(
                item.optional_vars, ast.Name
            ):
                what = self.acquire(item.context_expr)
                if what is not None:
                    state = dict(state)
                    state[item.optional_vars.id] = Claim(
                        sites=frozenset({self._site(item.context_expr, what)}),
                        status=self.acquire_status,
                    )
            return state
        if marker.kind == "with_exit":
            item = marker.node
            assert isinstance(item, ast.withitem)
            return self._release_with_item(item, state)
        if marker.kind in {"test", "loop_iter"}:
            return self._scan_uses(marker.node, state)
        return state

    def _release_with_item(self, item: ast.withitem, state: State) -> State:
        """Leaving ``with <expr> as <name>`` disposes whatever it guards."""
        released: set[str] = set()
        if isinstance(item.optional_vars, ast.Name):
            released.add(item.optional_vars.id)
        expr = item.context_expr
        if isinstance(expr, ast.Name):
            released.add(expr.id)  # ``with f:`` closes f on exit
        if isinstance(expr, ast.Call):  # ``with closing(f):`` and kin
            for arg in expr.args:
                if isinstance(arg, ast.Name):
                    released.add(arg.id)
        if not released & state.keys():
            return state
        return {var: claim for var, claim in state.items() if var not in released}

    def _transfer_assign(self, stmt: ast.Assign | ast.AnnAssign, state: State) -> State:
        value = stmt.value
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names or value is None:
            return state
        state = dict(state)
        for name in names:
            state.pop(name, None)  # rebinding drops the stale claim
        if isinstance(value, ast.Call):
            what = self.acquire(value)
            if what is not None:
                claim = Claim(
                    sites=frozenset({self._site(value, what)}), status=self.acquire_status
                )
                for name in names:
                    state[name] = claim
        elif isinstance(value, ast.Name) and value.id in state:
            # ``g = f`` moves ownership (the scan already dropped f if it
            # appeared in a larger expression).
            claim = state.pop(value.id)
            for name in names:
                state[name] = claim
        return state

    def _scan_uses(self, element: ast.AST, state: State) -> State:
        """Releases, status changes and escapes anywhere in ``element``."""
        if not state:
            return state
        discharged: set[str] = set()
        restatus: dict[str, str] = {}
        for node in walk_expressions(element):
            if isinstance(node, ast.Call):
                # ``owned.release_method()``.
                if (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in state
                ):
                    status = self.release_status(node.func.attr)
                    if status == "":
                        discharged.add(node.func.value.id)
                    elif status is not None:
                        restatus[node.func.value.id] = status
                    continue
                # Any owned name handed to a callee escapes.
                for sub in node.args + [kw.value for kw in node.keywords]:
                    for name in _names_in(sub):
                        if name in state:
                            discharged.add(name)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    discharged |= _names_in(node.value) & state.keys()
            elif isinstance(node, ast.Await):
                discharged, restatus = self._scan_await(node, state, discharged, restatus)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.NamedExpr)):
                discharged |= self._escaping_stores(node, state)
        if not discharged and not restatus:
            return state
        new_state = {}
        for var, claim in state.items():
            if var in discharged:
                continue
            if var in restatus:
                claim = replace(claim, status=restatus[var])
            new_state[var] = claim
        return new_state

    def _scan_await(
        self,
        node: ast.Await,
        state: State,
        discharged: set[str],
        restatus: dict[str, str],
    ) -> tuple[set[str], dict[str, str]]:
        """Hook: RL010 treats ``await t`` as joining the claim."""
        return discharged, restatus

    def _escaping_stores(
        self, node: ast.Assign | ast.AnnAssign | ast.NamedExpr, state: State
    ) -> set[str]:
        """Owned names stored into non-local places (attributes, containers)."""
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        if node.value is None:
            return set()
        if all(isinstance(t, ast.Name) for t in targets) and isinstance(
            node.value, (ast.Call, ast.Name)
        ):
            return set()  # plain rebinding/move: _transfer_assign owns it
        return _names_in(node.value) & state.keys()

    def _site(self, node: ast.expr, what: str) -> Site:
        return (node.lineno, node.col_offset, what)

    # -- shared acquire helpers --------------------------------------------

    def origin_of(self, call: ast.Call) -> str | None:
        return call_origin(call.func, self.aliases)


def _names_in(node: ast.AST) -> set[str]:
    return {
        sub.id
        for sub in walk_expressions(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }
