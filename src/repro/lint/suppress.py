"""Inline suppressions: ``# repro-lint: disable=RL001(reason)``.

A suppression silences one rule on one line — never a file, never a
directory — and must name its reason in parentheses, so every silenced
finding documents *why* the invariant does not apply.  Suppressions are
themselves checked: one that silences nothing (the code was fixed, the
rule changed, the line moved) is stale and reported as :data:`META_RULE`,
as is one missing its reason.  The suppression mechanism can therefore
never rot into a pile of dead annotations.

Stale suppressions additionally carry an **autofix**: ``--fix`` deletes
the dead item — the whole comment (and its line, when the comment stands
alone) if every item in it is stale, otherwise a rewrite keeping the
still-live items.  One comment yields exactly one edit, attached to the
first stale finding, so multiple stale items can never produce
overlapping edits.  Reason-less suppressions have no fix: nobody can
invent the missing reason mechanically.

Grammar (one comment, any number of rules)::

    # repro-lint: disable=RL003(cache-miss fill is bounded by misses)
    # repro-lint: disable=RL001(reason one),RL005(reason two)

Reasons may not contain parentheses; keep them to one clause.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO

from repro.lint.findings import Edit, Finding, Fix

#: Rule id for suppression-hygiene findings (stale / reason-less).
META_RULE = "RL000"

_COMMENT_RE = re.compile(r"#\s*repro-lint:\s*disable=(?P<items>.+?)\s*$")
_ITEM_RE = re.compile(r"(?P<rule>RL\d{3})(?:\((?P<reason>[^()]*)\))?")


@dataclass
class Suppression:
    """One ``RLxxx(reason)`` item on one source line."""

    rule: str
    reason: str
    line: int
    col: int
    #: Set by the driver when the suppression silenced at least one finding.
    used: bool = field(default=False, compare=False)


@dataclass
class _Comment:
    """One ``# repro-lint:`` comment and the span needed to rewrite it."""

    line: int
    #: Column of the ``#`` (0-based).
    col: int
    #: Column just past the comment's last character.
    end_col: int
    #: Column where the whitespace run preceding the comment starts —
    #: deleting from here removes the trailing blanks too.
    ws_col: int
    #: True when nothing but whitespace precedes the comment (own line).
    standalone: bool
    items: list[Suppression] = field(default_factory=list)


def _render_items(items: list[Suppression]) -> str:
    parts = []
    for item in items:
        parts.append(f"{item.rule}({item.reason})" if item.reason else item.rule)
    return "# repro-lint: disable=" + ",".join(parts)


class SuppressionTable:
    """Every suppression in one file, indexed by (line, rule)."""

    def __init__(self, comments: list[_Comment], total_lines: int = 0) -> None:
        self._comments = comments
        self._total_lines = total_lines
        self._by_line_rule: dict[tuple[int, str], Suppression] = {
            (item.line, item.rule): item
            for comment in comments
            for item in comment.items
        }

    @classmethod
    def from_source(cls, source: str) -> SuppressionTable:
        """Parse a file's comments for suppression items.

        Comments are found with :mod:`tokenize` (not a regex over raw
        lines), so a ``# repro-lint:`` sequence inside a string literal is
        never mistaken for a suppression.
        """
        comments: list[_Comment] = []
        try:
            tokens = tokenize.generate_tokens(StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _COMMENT_RE.search(token.string)
                if match is None:
                    continue
                line, col = token.start
                before = token.line[:col]
                ws_col = len(before.rstrip(" \t"))
                comment = _Comment(
                    line=line,
                    col=col,
                    end_col=token.end[1],
                    ws_col=ws_col,
                    standalone=not before.strip(),
                )
                for item in _ITEM_RE.finditer(match.group("items")):
                    comment.items.append(
                        Suppression(
                            rule=item.group("rule"),
                            reason=(item.group("reason") or "").strip(),
                            line=line,
                            col=col,
                        )
                    )
                if comment.items:
                    comments.append(comment)
        except tokenize.TokenError:
            # Unparseable tail (the AST pass already reported the syntax
            # error); whatever was tokenised before the failure still counts.
            pass
        return cls(comments, total_lines=source.count("\n") + 1)

    def match(self, finding: Finding) -> Suppression | None:
        """The suppression covering ``finding``, if any (marks it used)."""
        suppression = self._by_line_rule.get((finding.line, finding.rule))
        if suppression is not None and suppression.reason:
            suppression.used = True
            return suppression
        return None

    def _deletion_fix(self, comment: _Comment) -> Fix:
        """The single edit repairing one comment's stale items."""
        survivors = [
            item for item in comment.items if not (item.reason and not item.used)
        ]
        if survivors:
            edit = Edit(
                comment.line,
                comment.col,
                comment.line,
                comment.end_col,
                _render_items(survivors),
            )
            return Fix(description="drop the stale suppression item", edits=(edit,))
        if comment.standalone and comment.line < self._total_lines:
            # The comment owns its line: delete the line outright.
            edit = Edit(comment.line, 0, comment.line + 1, 0, "")
        else:
            edit = Edit(comment.line, comment.ws_col, comment.line, comment.end_col, "")
        return Fix(description="delete the stale suppression comment", edits=(edit,))

    def hygiene_findings(self, path: str) -> list[Finding]:
        """Meta findings: reason-less and stale (unused) suppressions."""
        findings = []
        for comment in sorted(self._comments, key=lambda c: (c.line, c.col)):
            fix: Fix | None = None
            if any(item.reason and not item.used for item in comment.items):
                fix = self._deletion_fix(comment)
            for item in comment.items:
                if not item.reason:
                    findings.append(
                        Finding(
                            path=path,
                            line=item.line,
                            col=item.col,
                            rule=META_RULE,
                            message=f"suppression of {item.rule} carries no reason",
                            hint=(
                                f"write `# repro-lint: disable={item.rule}"
                                "(why the invariant does not apply)`"
                            ),
                        )
                    )
                elif not item.used:
                    findings.append(
                        Finding(
                            path=path,
                            line=item.line,
                            col=item.col,
                            rule=META_RULE,
                            message=f"suppression of {item.rule} silences nothing (stale)",
                            hint="the violation is gone or moved; delete the comment",
                            fix=fix,
                        )
                    )
                    # One edit per comment: only the first stale item
                    # carries it, the rest are report-only duplicates.
                    fix = None
        return sorted(findings)
