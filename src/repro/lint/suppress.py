"""Inline suppressions: ``# repro-lint: disable=RL001(reason)``.

A suppression silences one rule on one line — never a file, never a
directory — and must name its reason in parentheses, so every silenced
finding documents *why* the invariant does not apply.  Suppressions are
themselves checked: one that silences nothing (the code was fixed, the
rule changed, the line moved) is stale and reported as :data:`META_RULE`,
as is one missing its reason.  The suppression mechanism can therefore
never rot into a pile of dead annotations.

Grammar (one comment, any number of rules)::

    # repro-lint: disable=RL003(cache-miss fill is bounded by misses)
    # repro-lint: disable=RL001(reason one),RL005(reason two)

Reasons may not contain parentheses; keep them to one clause.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO

from repro.lint.findings import Finding

#: Rule id for suppression-hygiene findings (stale / reason-less).
META_RULE = "RL000"

_COMMENT_RE = re.compile(r"#\s*repro-lint:\s*disable=(?P<items>.+?)\s*$")
_ITEM_RE = re.compile(r"(?P<rule>RL\d{3})(?:\((?P<reason>[^()]*)\))?")


@dataclass
class Suppression:
    """One ``RLxxx(reason)`` item on one source line."""

    rule: str
    reason: str
    line: int
    col: int
    #: Set by the driver when the suppression silenced at least one finding.
    used: bool = field(default=False, compare=False)


class SuppressionTable:
    """Every suppression in one file, indexed by (line, rule)."""

    def __init__(self, suppressions: list[Suppression]) -> None:
        self._by_line_rule: dict[tuple[int, str], Suppression] = {
            (item.line, item.rule): item for item in suppressions
        }

    @classmethod
    def from_source(cls, source: str) -> SuppressionTable:
        """Parse a file's comments for suppression items.

        Comments are found with :mod:`tokenize` (not a regex over raw
        lines), so a ``# repro-lint:`` sequence inside a string literal is
        never mistaken for a suppression.
        """
        suppressions: list[Suppression] = []
        try:
            tokens = tokenize.generate_tokens(StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _COMMENT_RE.search(token.string)
                if match is None:
                    continue
                line, col = token.start
                for item in _ITEM_RE.finditer(match.group("items")):
                    suppressions.append(
                        Suppression(
                            rule=item.group("rule"),
                            reason=(item.group("reason") or "").strip(),
                            line=line,
                            col=col,
                        )
                    )
        except tokenize.TokenError:
            # Unparseable tail (the AST pass already reported the syntax
            # error); whatever was tokenised before the failure still counts.
            pass
        return cls(suppressions)

    def match(self, finding: Finding) -> Suppression | None:
        """The suppression covering ``finding``, if any (marks it used)."""
        suppression = self._by_line_rule.get((finding.line, finding.rule))
        if suppression is not None and suppression.reason:
            suppression.used = True
            return suppression
        return None

    def hygiene_findings(self, path: str) -> list[Finding]:
        """Meta findings: reason-less and stale (unused) suppressions."""
        findings = []
        for (line, rule), item in sorted(self._by_line_rule.items()):
            if not item.reason:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=item.col,
                        rule=META_RULE,
                        message=f"suppression of {rule} carries no reason",
                        hint=f"write `# repro-lint: disable={rule}(why the invariant does not apply)`",
                    )
                )
            elif not item.used:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=item.col,
                        rule=META_RULE,
                        message=f"suppression of {rule} silences nothing (stale)",
                        hint="the violation is gone or moved; delete the comment",
                    )
                )
        return findings
