"""The single ``build()`` entry point over the method registry.

All estimator construction in the repository funnels through here: the
experiments factory, the CLI ``estimate`` / ``run`` commands, the monitor
configuration and the parallel-ingest runtime all call :func:`build` (or its
multi-method convenience :func:`build_many`), so the equal-memory protocol,
the virtual-size clamping and the sharded scale-out wrapping are decided in
exactly one place.
"""

from __future__ import annotations

from collections.abc import Iterable

from dataclasses import dataclass

from repro.core.base import CardinalityEstimator
from repro.engine.sharded import ShardedEstimator
from repro.registry.specs import METHOD_ORDER, REGISTRY, DimensionConfig, MethodSpec

#: Smallest per-shard memory budget the dimensioning rules stay sane under.
MIN_SHARD_MEMORY_BITS = 64


@dataclass(frozen=True)
class _ShardConfig:
    """A per-shard budget: the four dimensioning knobs and nothing else.

    The sharded path must not mutate the caller's config, and the dimension
    rules read only these knobs — so the shard budget is a fresh value, not
    a ``dataclasses.replace`` of whatever config type the caller passed.
    """

    memory_bits: int
    virtual_size: int
    register_width: int
    seed: int


def method_names() -> list[str]:
    """Canonical method names in table order."""
    return list(METHOD_ORDER)


def spec_for(method: str) -> MethodSpec:
    """Look up the :class:`MethodSpec` of ``method`` (raising on unknowns)."""
    try:
        return REGISTRY[method]
    except KeyError:
        raise ValueError(f"unknown method {method!r}; known: {METHOD_ORDER}") from None


def _default_config() -> DimensionConfig:
    # Imported lazily: repro.experiments.__init__ imports the experiment
    # modules, which import this package — a module-level import would cycle.
    from repro.experiments.config import ExperimentConfig

    return ExperimentConfig()


def build(
    method: str,
    config: DimensionConfig | None = None,
    expected_users: int = 1000,
    shards: int = 1,
) -> CardinalityEstimator:
    """Build one estimator by method name under the configuration's budget.

    Parameters
    ----------
    method:
        One of :data:`~repro.registry.specs.METHOD_ORDER`.
    config:
        Dimensioning configuration (``memory_bits``, ``virtual_size``,
        ``register_width``, ``seed``); defaults to a fresh
        :class:`~repro.experiments.config.ExperimentConfig`.
    expected_users:
        User population used to dimension the per-user baselines.
    shards:
        With ``shards > 1`` the estimator is a
        :class:`~repro.engine.ShardedEstimator` of that many sub-sketches,
        each dimensioned at ``1/shards`` of the memory budget and expected
        users (so the totals stay at the configured budget).
    """
    spec = spec_for(method)
    if config is None:
        config = _default_config()
    if shards <= 0:
        raise ValueError("shards must be positive")
    if shards == 1:
        return spec.build(config, expected_users)
    shard_memory = config.memory_bits // shards
    if shard_memory < MIN_SHARD_MEMORY_BITS:
        raise ValueError(
            f"memory budget of {config.memory_bits} bits is too small for "
            f"{shards} shards (each shard would get {shard_memory} < "
            f"{MIN_SHARD_MEMORY_BITS} bits); raise the budget or lower the shard count"
        )
    shard_config = _ShardConfig(
        memory_bits=shard_memory,
        virtual_size=config.virtual_size,
        register_width=config.register_width,
        seed=config.seed,
    )
    shard_users = max(1, expected_users // shards)

    def factory(_shard_index: int) -> CardinalityEstimator:
        return spec.build(shard_config, shard_users)

    return ShardedEstimator(factory, shards=shards, seed=config.seed)


def build_many(
    config: DimensionConfig | None = None,
    expected_users: int = 1000,
    methods: Iterable[str] | None = None,
    shards: int = 1,
) -> dict[str, CardinalityEstimator]:
    """Build several estimators under one shared memory budget.

    ``methods`` defaults to all of :data:`~repro.registry.specs.METHOD_ORDER`;
    unknown names are rejected up front so a typo cannot silently shrink a
    comparison.
    """
    selected: list[str] = list(methods) if methods is not None else list(METHOD_ORDER)
    unknown = set(selected) - set(REGISTRY)
    if unknown:
        raise ValueError(f"unknown methods {sorted(unknown)}; known: {METHOD_ORDER}")
    return {
        method: build(method, config, expected_users, shards=shards) for method in selected
    }
