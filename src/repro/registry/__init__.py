"""Central method registry: one authoritative description per method.

This package is the repository's method layer.  Each of the six compared
methods (FreeBS, FreeRS, CSE, vHLL, per-user LPC, per-user HLL++) has one
:class:`~repro.registry.specs.MethodSpec` recording its constructor, its
equal-memory dimensioning rule, its merge capability, its serialization tag
and its batch-engine support; :func:`~repro.registry.factory.build` is the
single entry point every construction site uses (experiments, CLI, monitor,
runtime, serialization).
"""

from repro.registry.factory import (
    build,
    build_many,
    method_names,
    spec_for,
)
from repro.registry.specs import (
    METHOD_ORDER,
    MIN_VIRTUAL_SIZE,
    REGISTRY,
    DimensionConfig,
    MethodSpec,
    clamp_virtual_size,
    shared_registers,
)

__all__ = [
    "METHOD_ORDER",
    "MIN_VIRTUAL_SIZE",
    "REGISTRY",
    "DimensionConfig",
    "MethodSpec",
    "build",
    "build_many",
    "clamp_virtual_size",
    "method_names",
    "shared_registers",
    "spec_for",
]
