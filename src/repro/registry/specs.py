"""Method specifications: the single authoritative description of each method.

Every construction site in the repository — the experiments factory, the CLI,
the monitor configuration and the snapshot serialiser — used to carry its own
if/elif chain over method names, with subtly different ``virtual_size``
clamping between them.  This module replaces all of that with one
:class:`MethodSpec` per method, pinning down:

* the **constructor** (``estimator_cls``) and how to call it;
* the **equal-memory dimensioning rule** (``dimension``) implementing the
  paper's protocol (Section V-B): FreeBS and CSE get ``M`` bits, FreeRS and
  vHLL get ``M / w`` registers of ``w`` bits, the per-user baselines are
  dimensioned from the expected user population;
* the **merge capability** (``mergeable``): whether sketch-level union
  merges are *exact* (CSE / vHLL / LPC / HLL++ — estimates are pure
  functions of order-independent sketch state) or only *additive*
  (FreeBS / FreeRS — Horvitz–Thompson sums depend on the fill trajectory);
  this mirrors :func:`repro.monitor.merge.merge_exactness`;
* the **serialization tag** (``tag``): the ``kind`` string used by
  :mod:`repro.core.serialization` snapshot envelopes;
* **batch-engine support** (``batch_engine``): whether the estimator
  implements the engine's vectorised ``update_encoded`` path.

The virtual-sketch methods share one documented clamp,
:func:`clamp_virtual_size`; the historical divergence (CSE clamped only to
``memory_bits`` while vHLL clamped to a quarter of the register capacity) is
gone.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from dataclasses import dataclass
from typing import Protocol

from repro.baselines import CSE, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.core import FreeBS, FreeRS
from repro.core.base import CardinalityEstimator

#: Floor of the virtual sketch size: below this the LC/HLL estimators are
#: meaningless, so the clamp never dimensions a virtual sketch smaller.
MIN_VIRTUAL_SIZE = 16

#: Upper clamp fraction: a virtual sketch larger than a quarter of the shared
#: physical capacity leaves too little head-room for the noise-subtraction
#: terms of CSE/vHLL to work (almost every physical cell would belong to
#: every user), so the requested size is capped at ``capacity // 4``.
CAPACITY_FRACTION = 4


class DimensionConfig(Protocol):
    """The four dimensioning knobs every rule reads.

    Structurally typed: anything exposing these (``ExperimentConfig`` in
    practice, :class:`repro.registry.factory._ShardConfig` for per-shard
    budgets) dimensions identically.
    """

    @property
    def memory_bits(self) -> int: ...

    @property
    def virtual_size(self) -> int: ...

    @property
    def register_width(self) -> int: ...

    @property
    def seed(self) -> int: ...


#: Rule mapping ``(config, expected_users) -> constructor kwargs``.
DimensionRule = Callable[[DimensionConfig, int], dict[str, object]]


def shared_registers(config: DimensionConfig) -> int:
    """Register count under the equal-memory protocol: ``max(16, M // w)``.

    Matches :attr:`repro.experiments.config.ExperimentConfig.registers` so
    duck-typed configs without that property dimension identically.
    """
    return max(16, config.memory_bits // config.register_width)


def clamp_virtual_size(requested: int, capacity: int, *, strict: bool = False) -> int:
    """The one shared virtual-sketch dimensioning rule for CSE and vHLL.

    ``m = min(requested, max(MIN_VIRTUAL_SIZE, capacity // 4), upper)`` where
    ``capacity`` is the shared physical capacity (bits for CSE, registers for
    vHLL) and ``upper`` keeps the constructor invariants satisfiable:
    ``capacity`` for CSE (``m <= M`` bits), ``capacity - 1`` for vHLL
    (``m < M`` registers, ``strict=True``).  Heavily-sharded configurations
    (small per-shard capacity) therefore always stay valid, and both methods
    degrade the same way instead of CSE silently keeping an oversized virtual
    sketch.
    """
    if requested <= 0:
        raise ValueError("virtual_size must be positive")
    upper = capacity - 1 if strict else capacity
    return min(requested, max(MIN_VIRTUAL_SIZE, capacity // CAPACITY_FRACTION), upper)


def _dimension_freebs(config: DimensionConfig, expected_users: int) -> dict[str, object]:
    """FreeBS gets the full memory budget as one shared bit array."""
    return {"memory_bits": config.memory_bits, "seed": config.seed}


def _dimension_freers(config: DimensionConfig, expected_users: int) -> dict[str, object]:
    """FreeRS gets ``M / w`` shared registers of ``w`` bits."""
    return {
        "registers": shared_registers(config),
        "register_width": config.register_width,
        "seed": config.seed,
    }


def _dimension_cse(config: DimensionConfig, expected_users: int) -> dict[str, object]:
    """CSE gets ``M`` shared bits; the virtual sketch follows the shared clamp."""
    return {
        "memory_bits": config.memory_bits,
        "virtual_size": clamp_virtual_size(config.virtual_size, config.memory_bits),
        "seed": config.seed,
    }


def _dimension_vhll(config: DimensionConfig, expected_users: int) -> dict[str, object]:
    """vHLL gets ``M / w`` shared registers; the virtual sketch must stay smaller."""
    registers = shared_registers(config)
    return {
        "registers": registers,
        "virtual_size": clamp_virtual_size(config.virtual_size, registers, strict=True),
        "register_width": config.register_width,
        "seed": config.seed,
    }


def _dimension_lpc(config: DimensionConfig, expected_users: int) -> dict[str, object]:
    """Per-user LPC splits the budget into ``M / |S|`` bits per expected user."""
    return {
        "memory_bits": config.memory_bits,
        "expected_users": expected_users,
        "seed": config.seed,
    }


def _dimension_hllpp(config: DimensionConfig, expected_users: int) -> dict[str, object]:
    """Per-user HLL++ splits the budget into ``M / (6 |S|)`` six-bit registers."""
    return {
        "memory_bits": config.memory_bits,
        "expected_users": expected_users,
        "seed": config.seed,
    }


@dataclass(frozen=True)
class MethodSpec:
    """Everything the rest of the system needs to know about one method."""

    #: Canonical method name (the key of :data:`REGISTRY`, shown in tables).
    name: str
    #: ``kind`` tag of :mod:`repro.core.serialization` snapshot envelopes.
    tag: str
    #: Estimator class the spec constructs.
    estimator_cls: type[CardinalityEstimator]
    #: Equal-memory dimensioning rule (see module docstring).
    dimension: DimensionRule
    #: True when sketch-level union merges are *exact* (estimates are pure
    #: functions of order-independent sketch state); False for the additive
    #: FreeBS/FreeRS semantics.  Mirrors :mod:`repro.monitor.merge`.
    mergeable: bool
    #: True when the estimator implements the engine's vectorised
    #: ``update_encoded`` batch path.
    batch_engine: bool
    #: One-line description for docs and ``--help`` output.
    summary: str

    def dimensions(self, config: DimensionConfig, expected_users: int) -> dict[str, object]:
        """Constructor kwargs for this method under ``config``'s budget."""
        return self.dimension(config, expected_users)

    def describe(self) -> dict[str, object]:
        """JSON-ready description of the spec.

        The service layer's ``stats`` op embeds this so a remote client can
        learn the served method's capabilities (merge exactness, batch
        support) without importing the registry.
        """
        return {
            "name": self.name,
            "tag": self.tag,
            "estimator": self.estimator_cls.__name__,
            "mergeable": self.mergeable,
            "batch_engine": self.batch_engine,
            "summary": self.summary,
        }

    def build(self, config: DimensionConfig, expected_users: int) -> CardinalityEstimator:
        """Construct the estimator under the configuration's memory budget."""
        # Bound as a plain callable: the concrete constructors take
        # method-specific keyword sets a ``type[CardinalityEstimator]`` call
        # signature cannot express.
        construct: Callable[..., CardinalityEstimator] = self.estimator_cls
        return construct(**self.dimensions(config, expected_users))


#: The central registry, in the order every table and legend uses.
REGISTRY: Mapping[str, MethodSpec] = {
    spec.name: spec
    for spec in (
        MethodSpec(
            name="FreeBS",
            tag="FreeBS",
            estimator_cls=FreeBS,
            dimension=_dimension_freebs,
            mergeable=False,
            batch_engine=True,
            summary="bit-sharing estimator with Horvitz-Thompson updates (the paper's)",
        ),
        MethodSpec(
            name="FreeRS",
            tag="FreeRS",
            estimator_cls=FreeRS,
            dimension=_dimension_freers,
            mergeable=False,
            batch_engine=True,
            summary="register-sharing estimator with HT updates (the paper's)",
        ),
        MethodSpec(
            name="CSE",
            tag="CSE",
            estimator_cls=CSE,
            dimension=_dimension_cse,
            mergeable=True,
            batch_engine=True,
            summary="compact spread estimator: virtual LPC over shared bits",
        ),
        MethodSpec(
            name="vHLL",
            tag="vHLL",
            estimator_cls=VirtualHLL,
            dimension=_dimension_vhll,
            mergeable=True,
            batch_engine=True,
            summary="virtual HyperLogLog over shared registers",
        ),
        MethodSpec(
            name="LPC",
            tag="LPC",
            estimator_cls=PerUserLPC,
            dimension=_dimension_lpc,
            mergeable=True,
            batch_engine=True,
            summary="per-user linear probabilistic counting baseline",
        ),
        MethodSpec(
            name="HLL++",
            tag="HLL++",
            estimator_cls=PerUserHLLPP,
            dimension=_dimension_hllpp,
            mergeable=True,
            batch_engine=True,
            summary="per-user HyperLogLog++ baseline",
        ),
    )
}

#: Order in which methods appear in every table (matches the paper's legends).
METHOD_ORDER = list(REGISTRY)
