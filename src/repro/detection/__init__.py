"""Super-spreader detection case study (paper Section V-F).

A *super spreader* at time ``t`` is a user whose cardinality is at least
``Delta * n(t)``, where ``n(t)`` is the sum of all user cardinalities at time
``t`` and ``Delta`` is a relative threshold (the paper uses 5e-5).  The
detector consumes any :class:`repro.core.base.CardinalityEstimator` and
reports the detected set either at stream end or on a schedule of snapshots;
the evaluator scores detections against exact ground truth with the paper's
FNR / FPR metrics (Figure 6 and Table II).
"""

from repro.detection.super_spreader import SuperSpreaderDetector, super_spreaders
from repro.detection.evaluation import (
    DetectionResult,
    detection_error_at_end,
    detection_error_over_time,
)

__all__ = [
    "SuperSpreaderDetector",
    "super_spreaders",
    "DetectionResult",
    "detection_error_at_end",
    "detection_error_over_time",
]
