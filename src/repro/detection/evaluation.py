"""Evaluation of super-spreader detection (FNR / FPR, over time and at stream end).

Implements the protocol of the paper's Section V-F: at evaluation time the
ground-truth super spreaders are the users whose *exact* cardinality is at
least ``Delta * n(t)`` (with ``n(t)`` the exact total), the detected set is
computed the same way from the estimator's current estimates, and

* FNR = missed super spreaders / true super spreaders,
* FPR = falsely reported users / all observed users.

``detection_error_over_time`` replays a stream once per estimator, pausing at
a fixed number of checkpoints — the "t (minutes)" axis of Figure 6.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from dataclasses import dataclass

from repro.baselines.exact import ExactCounter
from repro.core.base import CardinalityEstimator
from repro.detection.super_spreader import super_spreaders

UserItemPair = tuple[object, object]


@dataclass(frozen=True)
class DetectionResult:
    """FNR/FPR of one estimator at one checkpoint."""

    checkpoint: int
    pairs_processed: int
    true_spreaders: int
    detected_spreaders: int
    false_negative_rate: float
    false_positive_rate: float

    def as_dict(self) -> dict[str, float]:
        """Return the result as a plain dictionary (for reports/CSV)."""
        return {
            "checkpoint": float(self.checkpoint),
            "pairs_processed": float(self.pairs_processed),
            "true_spreaders": float(self.true_spreaders),
            "detected_spreaders": float(self.detected_spreaders),
            "fnr": self.false_negative_rate,
            "fpr": self.false_positive_rate,
        }


def _score(
    truth: dict[object, int],
    total_cardinality: int,
    estimates: dict[object, float],
    delta: float,
    checkpoint: int,
    pairs_processed: int,
) -> DetectionResult:
    true_set = super_spreaders(truth, delta, total_cardinality=float(total_cardinality))
    detected = super_spreaders(estimates, delta, total_cardinality=float(total_cardinality))
    population = len(truth)
    missed = len(true_set - detected)
    false_positives = len(detected - true_set)
    fnr = missed / len(true_set) if true_set else 0.0
    fpr = false_positives / population if population else 0.0
    return DetectionResult(
        checkpoint=checkpoint,
        pairs_processed=pairs_processed,
        true_spreaders=len(true_set),
        detected_spreaders=len(detected),
        false_negative_rate=fnr,
        false_positive_rate=fpr,
    )


def detection_error_at_end(
    estimator: CardinalityEstimator,
    pairs: Sequence[UserItemPair],
    delta: float = 5e-5,
) -> DetectionResult:
    """Process the whole stream, then score detection once (Table II protocol)."""
    exact = ExactCounter()
    for user, item in pairs:
        estimator.update(user, item)
        exact.update(user, item)
    return _score(
        truth=exact.cardinalities(),
        total_cardinality=exact.total_cardinality,
        estimates=estimator.estimates(),
        delta=delta,
        checkpoint=1,
        pairs_processed=exact.pairs_processed,
    )


def detection_error_over_time(
    estimator: CardinalityEstimator,
    pairs: Sequence[UserItemPair],
    delta: float = 5e-5,
    checkpoints: int = 10,
) -> list[DetectionResult]:
    """Score detection at ``checkpoints`` evenly spaced points of the stream.

    Reproduces the Figure 6 protocol: the stream (one hour of traffic in the
    paper) is cut into equal time slices and FNR/FPR are computed after each
    slice, using the exact ground truth *at that time*.
    """
    if checkpoints <= 0:
        raise ValueError("checkpoints must be positive")
    pairs = list(pairs)
    if not pairs:
        return []
    exact = ExactCounter()
    boundaries = [((index + 1) * len(pairs)) // checkpoints for index in range(checkpoints)]
    results: list[DetectionResult] = []
    position = 0
    for checkpoint_index, boundary in enumerate(boundaries, start=1):
        while position < boundary:
            user, item = pairs[position]
            estimator.update(user, item)
            exact.update(user, item)
            position += 1
        results.append(
            _score(
                truth=exact.cardinalities(),
                total_cardinality=exact.total_cardinality,
                estimates=estimator.estimates(),
                delta=delta,
                checkpoint=checkpoint_index,
                pairs_processed=position,
            )
        )
    return results
