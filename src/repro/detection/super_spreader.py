"""Super-spreader detection over a stream of per-user cardinality estimates.

The detector is deliberately estimator-agnostic: it asks the wrapped
estimator for per-user estimates and compares them against the absolute
threshold ``Delta * n(t)``.  ``n(t)`` (the sum of all user cardinalities) can
be supplied exactly by the harness — the configuration used in the paper's
evaluation, where the threshold is a property of the workload — or resolved
from the estimator itself when it exposes a ``total_cardinality_estimate``
method (FreeBS and FreeRS do), which is the fully-online deployment mode.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping


from repro.core.base import CardinalityEstimator


def super_spreaders(
    cardinalities: Mapping[object, float],
    delta: float,
    total_cardinality: float | None = None,
) -> set[object]:
    """Return the users whose cardinality is at least ``delta * total``.

    ``total_cardinality`` defaults to the sum of the provided cardinalities,
    which is the paper's ``n(t)``.
    """
    if delta <= 0 or delta >= 1:
        raise ValueError("delta must be in (0, 1)")
    if total_cardinality is None:
        total_cardinality = float(sum(cardinalities.values()))
    threshold = delta * total_cardinality
    return {user for user, value in cardinalities.items() if value >= threshold}


class SuperSpreaderDetector:
    """Online super-spreader detector wrapping any cardinality estimator.

    Parameters
    ----------
    estimator:
        Any :class:`CardinalityEstimator`; its per-user estimates drive the
        detection decisions.
    delta:
        Relative threshold ``Delta`` (the paper uses 5e-5).
    use_exact_total:
        When True (default) the caller must pass the exact total cardinality
        to :meth:`detect`; when False the detector resolves the total from
        the estimator's own ``total_cardinality_estimate`` (if available) or
        the sum of its per-user estimates.
    """

    def __init__(
        self,
        estimator: CardinalityEstimator,
        delta: float = 5e-5,
        use_exact_total: bool = True,
    ) -> None:
        if delta <= 0 or delta >= 1:
            raise ValueError("delta must be in (0, 1)")
        self.estimator = estimator
        self.delta = delta
        self.use_exact_total = use_exact_total

    def update(self, user: object, item: object) -> float:
        """Feed one pair to the wrapped estimator (pass-through)."""
        return self.estimator.update(user, item)

    def process(self, stream: Iterable[tuple]) -> SuperSpreaderDetector:
        """Feed an entire stream to the wrapped estimator; return ``self``."""
        self.estimator.process(stream)
        return self

    def _resolve_total(self, exact_total: float | None, estimates: dict[object, float]) -> float:
        if self.use_exact_total:
            if exact_total is None:
                raise ValueError(
                    "exact_total is required when use_exact_total=True; "
                    "pass the ground-truth n(t) or construct the detector with "
                    "use_exact_total=False"
                )
            return float(exact_total)
        total_estimator = getattr(self.estimator, "total_cardinality_estimate", None)
        if callable(total_estimator):
            return float(total_estimator())
        return float(sum(estimates.values()))

    def detect(self, exact_total: float | None = None) -> set[object]:
        """Return the set of users currently classified as super spreaders."""
        estimates = self.estimator.estimates()
        total = self._resolve_total(exact_total, estimates)
        threshold = self.delta * total
        return {user for user, value in estimates.items() if value >= threshold}

    def threshold(self, exact_total: float | None = None) -> float:
        """Return the current absolute cardinality threshold ``Delta * n(t)``."""
        estimates = self.estimator.estimates()
        return self.delta * self._resolve_total(exact_total, estimates)

    def top_users(self, count: int = 10) -> list[tuple]:
        """Return the ``count`` users with the largest estimates (diagnostics)."""
        estimates = self.estimator.estimates()
        ranked = sorted(estimates.items(), key=lambda pair: pair[1], reverse=True)
        return ranked[:count]
