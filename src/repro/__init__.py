"""FreeSketch reproduction library.

Reproduction of "Utilizing Dynamic Properties of Sharing Bits and Registers
to Estimate User Cardinalities over Time" (Wang et al., ICDE 2019).

The package estimates, at every point in a (user, item) graph stream, the
cardinality (number of distinct connected items) of every user, using a
memory budget shared by all users.

Quick start::

    from repro import FreeRS
    from repro.streams import zipf_bipartite_stream

    estimator = FreeRS(registers=1 << 16)
    for user, item in zipf_bipartite_stream(n_users=1000, n_pairs=100_000, seed=7):
        estimator.update(user, item)
    heavy = max(estimator.estimates(), key=estimator.estimate)

The estimators exported at the top level all implement the common
:class:`repro.core.base.CardinalityEstimator` interface.
"""

from repro.core import CardinalityEstimator, FreeBS, FreeRS
from repro.baselines import CSE, ExactCounter, PerUserHLLPP, PerUserLPC, VirtualHLL

__version__ = "1.0.0"

__all__ = [
    "CardinalityEstimator",
    "FreeBS",
    "FreeRS",
    "CSE",
    "VirtualHLL",
    "PerUserLPC",
    "PerUserHLLPP",
    "ExactCounter",
    "__version__",
]
