"""The paper's primary contribution: FreeBS and FreeRS.

Both estimators maintain a single shared array (bits for FreeBS, HLL
registers for FreeRS) plus one running counter per observed user, and update
both in O(1) per arriving (user, item) pair.  They report every user's
cardinality *at any time* during the stream, which is the "over time"
property the paper's title refers to.
"""

from repro.core.base import CardinalityEstimator, EstimatorState
from repro.core.batch import FreeBSBatch, FreeRSBatch, encode_int_pairs, encode_pairs
from repro.core.freebs import FreeBS
from repro.core.freers import FreeRS

__all__ = [
    "CardinalityEstimator",
    "EstimatorState",
    "FreeBS",
    "FreeRS",
    "FreeBSBatch",
    "FreeRSBatch",
    "encode_pairs",
    "encode_int_pairs",
]
