"""Snapshot serialization for the FreeBS / FreeRS estimators.

Monitoring deployments need to checkpoint sketch state: a monitor restarts,
a snapshot is shipped to an analysis box, or an operator wants yesterday's
state next to today's.  This module serialises the two proposed estimators
(scalar and batch variants) to a compact, versioned, self-describing JSON +
base85 payload and restores them exactly — estimates, shared-array state and
seed — so a restored estimator continues the stream as if nothing happened.

Only the estimators the paper proposes are covered: the baselines exist for
comparison experiments, which never need checkpointing.

The format intentionally favours debuggability (a JSON envelope with the
array payload base85-encoded) over minimum size; the arrays dominate and are
stored raw, so the overhead is a few percent.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.batch import FreeBSBatch, FreeRSBatch
from repro.core.freebs import FreeBS
from repro.core.freers import FreeRS

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

SerializableEstimator = Union[FreeBS, FreeRS, FreeBSBatch, FreeRSBatch]


def _encode_array(array: np.ndarray) -> str:
    return base64.b85encode(np.ascontiguousarray(array).tobytes()).decode("ascii")


def _decode_array(payload: str, dtype: np.dtype, count: int) -> np.ndarray:
    raw = base64.b85decode(payload.encode("ascii"))
    return np.frombuffer(raw, dtype=dtype, count=count).copy()


def _estimates_to_json(estimates: dict) -> list:
    # JSON object keys must be strings; store (repr-tag, key, value) triples
    # so integer and string users round-trip without collision.
    triples = []
    for user, value in estimates.items():
        if isinstance(user, int):
            triples.append(["int", str(user), value])
        else:
            triples.append(["str", str(user), value])
    return triples


def _estimates_from_json(triples: list) -> dict:
    estimates = {}
    for kind, key, value in triples:
        estimates[int(key) if kind == "int" else key] = float(value)
    return estimates


def dumps(estimator: SerializableEstimator) -> str:
    """Serialise a FreeBS/FreeRS estimator (scalar or batch) to a JSON string."""
    if isinstance(estimator, FreeBS):
        kind = "FreeBS"
        body = {
            "memory_bits": estimator.M,
            "seed": estimator.seed,
            "pairs_processed": estimator.pairs_processed,
            "words": _encode_array(estimator._bits._words),
            "ones": estimator._bits.ones,
        }
    elif isinstance(estimator, FreeBSBatch):
        kind = "FreeBSBatch"
        body = {
            "memory_bits": estimator.M,
            "seed": estimator.seed,
            "pairs_processed": estimator.pairs_processed,
            "bits": _encode_array(estimator._bit_state),
            "zero_bits": estimator._zero_bits,
        }
    elif isinstance(estimator, FreeRS):
        kind = "FreeRS"
        body = {
            "registers": estimator.M,
            "register_width": estimator._registers.width,
            "seed": estimator.seed,
            "pairs_processed": estimator.pairs_processed,
            "values": _encode_array(estimator._registers.values),
        }
    elif isinstance(estimator, FreeRSBatch):
        kind = "FreeRSBatch"
        body = {
            "registers": estimator.M,
            "register_width": estimator.register_width,
            "seed": estimator.seed,
            "pairs_processed": estimator.pairs_processed,
            "values": _encode_array(estimator._register_state),
        }
    else:
        raise TypeError(
            f"cannot serialise {type(estimator).__name__}; "
            "only FreeBS/FreeRS (scalar or batch) snapshots are supported"
        )
    envelope = {
        "format": "freesketch-snapshot",
        "version": _FORMAT_VERSION,
        "kind": kind,
        "estimates": _estimates_to_json(estimator.estimates()),
        "body": body,
    }
    return json.dumps(envelope)


def loads(payload: str) -> SerializableEstimator:
    """Restore an estimator previously serialised with :func:`dumps`."""
    envelope = json.loads(payload)
    if envelope.get("format") != "freesketch-snapshot":
        raise ValueError("not a freesketch snapshot payload")
    if envelope.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot version {envelope.get('version')!r}")
    kind = envelope["kind"]
    body = envelope["body"]
    estimates = _estimates_from_json(envelope["estimates"])

    if kind == "FreeBS":
        estimator = FreeBS(body["memory_bits"], seed=body["seed"])
        words = _decode_array(body["words"], np.uint64, len(estimator._bits._words))
        estimator._bits._words[:] = words
        estimator._bits._ones = int(body["ones"])
        estimator._pairs_processed = int(body["pairs_processed"])
    elif kind == "FreeBSBatch":
        estimator = FreeBSBatch(body["memory_bits"], seed=body["seed"])
        bits = _decode_array(body["bits"], np.bool_, estimator.M)
        estimator._bit_state[:] = bits
        estimator._zero_bits = int(body["zero_bits"])
        estimator._pairs_processed = int(body["pairs_processed"])
    elif kind == "FreeRS":
        estimator = FreeRS(
            body["registers"], register_width=body["register_width"], seed=body["seed"]
        )
        values = _decode_array(body["values"], np.uint8, estimator.M)
        for index in np.nonzero(values)[0]:
            estimator._registers.update(int(index), int(values[index]))
        estimator._pairs_processed = int(body["pairs_processed"])
    elif kind == "FreeRSBatch":
        estimator = FreeRSBatch(
            body["registers"], register_width=body["register_width"], seed=body["seed"]
        )
        values = _decode_array(body["values"], np.int64, estimator.M)
        estimator._register_state[:] = values
        estimator._harmonic_sum = float(np.sum(np.exp2(-values.astype(np.float64))))
        estimator._pairs_processed = int(body["pairs_processed"])
    else:
        raise ValueError(f"unknown snapshot kind {kind!r}")

    estimator._estimates = estimates
    return estimator


def save(estimator: SerializableEstimator, path: PathLike) -> None:
    """Serialise ``estimator`` to a file."""
    Path(path).write_text(dumps(estimator), encoding="utf-8")


def load(path: PathLike) -> SerializableEstimator:
    """Restore an estimator from a file written by :func:`save`."""
    return loads(Path(path).read_text(encoding="utf-8"))
