"""Snapshot serialization for every compared estimator.

Monitoring deployments need to checkpoint sketch state: a monitor restarts,
a snapshot is shipped to an analysis box, or an operator wants yesterday's
state next to today's.  This module serialises all six compared methods —
FreeBS / FreeRS (scalar and batch variants), CSE, vHLL and the per-user LPC
/ HLL++ baselines — plus :class:`repro.engine.ShardedEstimator` compositions
of any of them, to a compact, versioned, self-describing JSON + base85
payload, and restores them exactly: estimates, shared-array state and seeds
round-trip so a restored estimator continues the stream as if nothing
happened.

Dispatch is codec-table driven: each estimator kind has one
:class:`_Codec` (kind tag, estimator class, dump/load functions).  The six
compared methods take their tag and class from the central method registry
(:mod:`repro.registry` — the ``MethodSpec.tag`` field), so the snapshot
format and the method layer cannot drift apart; the engine-level
``Sharded`` envelope and the legacy ``FreeBSBatch`` / ``FreeRSBatch``
variants are registered locally.

Format history:

* version 1 — FreeBS / FreeRS (scalar and batch) only;
* version 2 — adds the ``CSE``, ``vHLL``, ``LPC``, ``HLL++`` and ``Sharded``
  kinds (sharded envelopes nest one sub-envelope per shard);
* version 3 — adds ``bytes`` / ``tuple`` key kinds and the columnar
  estimates payload (pure-int user populations ship as two base85 arrays —
  int64 keys + float64 values — instead of one JSON triple per user).
  Loaders dispatch on payload *shape*, and versions 1-2 still load.

The format intentionally favours debuggability (a JSON envelope with the
array payload base85-encoded) over minimum size; the arrays dominate and are
stored raw, so the overhead is a few percent.
"""

from __future__ import annotations

from collections.abc import Callable

import base64
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.batch import FreeBSBatch, FreeRSBatch
from repro.core.freebs import FreeBS
from repro.core.freers import FreeRS

PathLike = str | Path

_FORMAT_VERSION = 3

#: Payload versions this loader understands (older versions stay readable).
_ACCEPTED_VERSIONS = frozenset({1, 2, 3})

SerializableEstimator = FreeBS | FreeRS | FreeBSBatch | FreeRSBatch


def _encode_array(array: np.ndarray) -> str:
    return base64.b85encode(np.ascontiguousarray(array).tobytes()).decode("ascii")


def _decode_array(payload: str, dtype: np.dtype, count: int) -> np.ndarray:
    raw = base64.b85decode(payload.encode("ascii"))
    return np.frombuffer(raw, dtype=dtype, count=count).copy()


def _key_to_json(key: object) -> list:
    # JSON object keys must be strings; store (repr-tag, key) so integer and
    # string users round-trip without collision.  Bytes and tuples — the
    # other first-class user-key types — get their own tags so they survive
    # the round-trip as the same Python objects (a stringified tuple would
    # no longer match the interned key on restore).
    if isinstance(key, (int, np.integer)):
        return ["int", str(int(key))]
    if isinstance(key, bytes):
        return ["bytes", base64.b85encode(key).decode("ascii")]
    if isinstance(key, tuple):
        return ["tuple", [_key_to_json(part) for part in key]]
    return ["str", str(key)]


def _key_from_json(kind: str, key) -> object:
    if kind == "int":
        return int(key)
    if kind == "bytes":
        return base64.b85decode(key.encode("ascii"))
    if kind == "tuple":
        return tuple(_key_from_json(part_kind, part) for part_kind, part in key)
    return key


def _estimates_to_json(estimates: dict) -> list:
    return [[*_key_to_json(user), value] for user, value in estimates.items()]


def _estimates_from_json(triples: list) -> dict:
    return {_key_from_json(kind, key): float(value) for kind, key, value in triples}


def _estimates_payload(estimates: dict):
    """Estimates in wire form: columnar arrays for pure-int populations.

    The common case at scale — integer user ids — serialises as two base85
    arrays (int64 keys in first-seen order + float64 values) instead of one
    JSON triple per user, cutting both payload size and the per-user
    encode/decode work by an order of magnitude.  Mixed/non-int key sets
    keep the legacy triple list.  ``type(k) is int`` (not isinstance): bools
    must keep the legacy path's int coercion and floats must not silently
    truncate.
    """
    keys = list(estimates.keys())
    if keys and all(type(key) is int for key in keys):
        try:
            keys_arr = np.fromiter(keys, dtype=np.int64, count=len(keys))
        except OverflowError:  # ints beyond int64: legacy triples
            return _estimates_to_json(estimates)
        values_arr = np.fromiter(
            estimates.values(), dtype=np.float64, count=len(keys)
        )
        return {
            "encoding": "columnar-i64",
            "count": len(keys),
            "keys": _encode_array(keys_arr),
            "values": _encode_array(values_arr),
        }
    return _estimates_to_json(estimates)


def _estimates_from_payload(payload) -> dict:
    """Inverse of :func:`_estimates_payload`, dispatched on payload shape.

    Shape, not envelope version: a dict is the columnar form, a list the
    triple form — so envelopes whose version marker was rewritten (the
    compatibility tests do this) still load either body.
    """
    if isinstance(payload, dict):
        count = int(payload["count"])
        keys = _decode_array(payload["keys"], np.int64, count)
        values = _decode_array(payload["values"], np.float64, count)
        return dict(zip(keys.tolist(), values.tolist()))
    return _estimates_from_json(payload)


@dataclass(frozen=True)
class _Codec:
    """One snapshot kind: its tag, estimator class and state dump/load."""

    tag: str
    cls: type
    dump: Callable[[object], dict]
    load: Callable[[dict], object]
    #: The generic loader attaches the envelope's cached estimates after
    #: ``load``; the sharded envelope carries them inside its sub-envelopes.
    attach_estimates: bool = True


# -- per-kind state codecs -----------------------------------------------------


def _dump_sharded(estimator) -> dict:
    return {
        "shards": estimator.num_shards,
        "seed": estimator.seed,
        "shard_pairs": list(estimator.shard_pair_counts),
        "sub": [to_obj(shard) for shard in estimator.shards],
    }


def _load_sharded(body: dict):
    from repro.engine.sharded import ShardedEstimator

    shards = [_load_envelope(sub) for sub in body["sub"]]
    estimator = ShardedEstimator(
        lambda k: shards[k], shards=int(body["shards"]), seed=int(body["seed"])
    )
    estimator._shard_pairs = [int(count) for count in body["shard_pairs"]]
    return estimator


def _dump_freebs(estimator) -> dict:
    return {
        "memory_bits": estimator.M,
        "seed": estimator.seed,
        "pairs_processed": estimator.pairs_processed,
        "words": _encode_array(estimator._bits._words),
        "ones": estimator._bits.ones,
    }


def _load_freebs(body: dict):
    estimator = FreeBS(body["memory_bits"], seed=body["seed"])
    _restore_bitarray(estimator._bits, body["words"], body["ones"])
    estimator._pairs_processed = int(body["pairs_processed"])
    return estimator


def _dump_freebs_batch(estimator) -> dict:
    return {
        "memory_bits": estimator.M,
        "seed": estimator.seed,
        "pairs_processed": estimator.pairs_processed,
        "bits": _encode_array(estimator._bit_state),
        "zero_bits": estimator._zero_bits,
    }


def _load_freebs_batch(body: dict):
    estimator = FreeBSBatch(body["memory_bits"], seed=body["seed"])
    bits = _decode_array(body["bits"], np.bool_, estimator.M)
    estimator._bit_state[:] = bits
    estimator._zero_bits = int(body["zero_bits"])
    estimator._pairs_processed = int(body["pairs_processed"])
    return estimator


def _dump_freers(estimator) -> dict:
    return {
        "registers": estimator.M,
        "register_width": estimator._registers.width,
        "seed": estimator.seed,
        "pairs_processed": estimator.pairs_processed,
        "values": _encode_array(estimator._registers.values),
    }


def _load_freers(body: dict):
    estimator = FreeRS(
        body["registers"], register_width=body["register_width"], seed=body["seed"]
    )
    _restore_registers(estimator._registers, body["values"], estimator.M)
    estimator._pairs_processed = int(body["pairs_processed"])
    return estimator


def _dump_freers_batch(estimator) -> dict:
    return {
        "registers": estimator.M,
        "register_width": estimator.register_width,
        "seed": estimator.seed,
        "pairs_processed": estimator.pairs_processed,
        "values": _encode_array(estimator._register_state),
    }


def _load_freers_batch(body: dict):
    estimator = FreeRSBatch(
        body["registers"], register_width=body["register_width"], seed=body["seed"]
    )
    values = _decode_array(body["values"], np.int64, estimator.M)
    estimator._register_state[:] = values
    estimator._harmonic_sum = float(np.sum(np.exp2(-values.astype(np.float64))))
    estimator._pairs_processed = int(body["pairs_processed"])
    return estimator


def _dump_cse(estimator) -> dict:
    return {
        "memory_bits": estimator.M,
        "virtual_size": estimator.m,
        "seed": estimator.seed,
        "words": _encode_array(estimator._bits._words),
        "ones": estimator._bits.ones,
    }


def _load_cse(body: dict):
    from repro.baselines.cse import CSE

    estimator = CSE(
        body["memory_bits"], virtual_size=body["virtual_size"], seed=body["seed"]
    )
    _restore_bitarray(estimator._bits, body["words"], body["ones"])
    return estimator


def _dump_vhll(estimator) -> dict:
    return {
        "registers": estimator.M,
        "virtual_size": estimator.m,
        "register_width": estimator._registers.width,
        "seed": estimator.seed,
        "values": _encode_array(estimator._registers.values),
    }


def _load_vhll(body: dict):
    from repro.baselines.vhll import VirtualHLL

    estimator = VirtualHLL(
        body["registers"],
        virtual_size=body["virtual_size"],
        register_width=body["register_width"],
        seed=body["seed"],
    )
    _restore_registers(estimator._registers, body["values"], estimator.M)
    return estimator


def _dump_lpc(estimator) -> dict:
    return {
        "bits_per_user": estimator.bits_per_user,
        "seed": estimator.seed,
        "users": [
            [
                *_key_to_json(user),
                _encode_array(sketch._bits._words),
                sketch._bits.ones,
            ]
            for user, sketch in estimator._sketches.items()
        ],
    }


def _load_lpc(body: dict):
    from repro.baselines.per_user import PerUserLPC
    from repro.sketches.lpc import LinearProbabilisticCounter

    estimator = PerUserLPC(
        memory_bits=0,
        expected_users=1,
        bits_per_user=int(body["bits_per_user"]),
        seed=int(body["seed"]),
    )
    for key_kind, key, words, ones in body["users"]:
        sketch = LinearProbabilisticCounter(estimator.bits_per_user, seed=estimator.seed)
        _restore_bitarray(sketch._bits, words, ones)
        estimator._sketches[_key_from_json(key_kind, key)] = sketch
    return estimator


def _dump_hllpp(estimator) -> dict:
    return {
        "registers_per_user": estimator.registers_per_user,
        "register_width": estimator.register_width,
        "seed": estimator.seed,
        "users": [
            [*_key_to_json(user), _hllpp_state(sketch)]
            for user, sketch in estimator._sketches.items()
        ],
    }


def _load_hllpp(body: dict):
    from repro.baselines.per_user import PerUserHLLPP
    from repro.sketches.hllpp import HyperLogLogPlusPlus

    estimator = PerUserHLLPP(
        memory_bits=0,
        expected_users=1,
        registers_per_user=int(body["registers_per_user"]),
        register_width=int(body["register_width"]),
        seed=int(body["seed"]),
    )
    for key_kind, key, state in body["users"]:
        sketch = HyperLogLogPlusPlus(
            estimator.registers_per_user,
            width=estimator.register_width,
            seed=estimator.seed,
        )
        _restore_hllpp(sketch, state)
        estimator._sketches[_key_from_json(key_kind, key)] = sketch
    return estimator


#: Dump/load state functions per registry method name; tag and class come
#: from the registry spec itself so the two layers cannot disagree.
_METHOD_STATE_CODECS: dict[str, tuple] = {
    "FreeBS": (_dump_freebs, _load_freebs),
    "FreeRS": (_dump_freers, _load_freers),
    "CSE": (_dump_cse, _load_cse),
    "vHLL": (_dump_vhll, _load_vhll),
    "LPC": (_dump_lpc, _load_lpc),
    "HLL++": (_dump_hllpp, _load_hllpp),
}

_CODECS: list[_Codec] = []
_CODEC_BY_TAG: dict[str, _Codec] = {}


def _codecs() -> list[_Codec]:
    """Build (once) the codec table from the method registry + local kinds."""
    if _CODECS:
        return _CODECS
    # Imported lazily: repro.core.__init__ loads this module, and the
    # registry imports repro.core — a module-level import would cycle.
    from repro.engine.sharded import ShardedEstimator
    from repro.registry import REGISTRY

    # The Sharded envelope is checked first: it composes the other kinds.
    table = [_Codec("Sharded", ShardedEstimator, _dump_sharded, _load_sharded, False)]
    for name, spec in REGISTRY.items():
        dump, load = _METHOD_STATE_CODECS[name]
        table.append(_Codec(spec.tag, spec.estimator_cls, dump, load))
    table.append(_Codec("FreeBSBatch", FreeBSBatch, _dump_freebs_batch, _load_freebs_batch))
    table.append(_Codec("FreeRSBatch", FreeRSBatch, _dump_freers_batch, _load_freers_batch))
    _CODECS.extend(table)
    _CODEC_BY_TAG.update({codec.tag: codec for codec in table})
    return _CODECS


def _dump_body(estimator) -> tuple:
    """Return ``(kind, body)`` for one estimator via the codec table."""
    for codec in _codecs():
        if isinstance(estimator, codec.cls):
            return codec.tag, codec.dump(estimator)
    raise TypeError(
        f"cannot serialise {type(estimator).__name__}; supported kinds: "
        "FreeBS/FreeRS (scalar or batch), CSE, vHLL, LPC, HLL++ and "
        "Sharded compositions of them"
    )


def _hllpp_state(sketch) -> dict:
    """State of one private HLL++ sketch, preserving its representation."""
    if sketch._sparse is not None:
        # Entry order is preserved so densification (which replays the dict
        # in insertion order) happens on the same trajectory after a restore.
        return {
            "mode": "sparse",
            "entries": [[int(bucket), int(rank)] for bucket, rank in sketch._sparse.items()],
        }
    return {"mode": "dense", "values": _encode_array(sketch._registers.values)}


def _restore_hllpp(sketch, state: dict) -> None:
    if state["mode"] == "sparse":
        for bucket, rank in state["entries"]:
            sketch._sparse[int(bucket)] = int(rank)
        if len(sketch._sparse) > sketch._sparse_limit:
            sketch._densify()
    else:
        values = _decode_array(state["values"], np.uint8, sketch.m)
        sketch._sparse = None
        from repro.sketches.registers import RegisterArray

        registers = RegisterArray(sketch.m, width=sketch.width)
        for index in np.nonzero(values)[0]:
            registers.update(int(index), int(values[index]))
        sketch._registers = registers


def to_obj(estimator) -> dict:
    """Serialise an estimator to a JSON-ready envelope *dict*.

    The object-level half of :func:`dumps`: callers embedding snapshots in a
    larger JSON document (the monitor's :mod:`repro.monitor.snapshot`, the
    sharded sub-envelopes) use this directly instead of paying a render +
    re-parse round-trip per estimator.
    """
    kind, body = _dump_body(estimator)
    return {
        "format": "freesketch-snapshot",
        "version": _FORMAT_VERSION,
        "kind": kind,
        "estimates": (
            [] if kind == "Sharded" else _estimates_payload(estimator.estimates())
        ),
        "body": body,
    }


def dumps(estimator) -> str:
    """Serialise an estimator to a JSON string (see module doc for coverage)."""
    return json.dumps(to_obj(estimator))


def _restore_bitarray(bits, words_payload: str, ones: int) -> None:
    bits._words[:] = _decode_array(words_payload, np.uint64, len(bits._words))
    bits._ones = int(ones)


def _restore_registers(registers, values_payload: str, count: int) -> None:
    # Replaying through update() keeps the incremental harmonic-sum and
    # zero-count bookkeeping on a clean trajectory (see RegisterArray).
    values = _decode_array(values_payload, np.uint8, count)
    for index in np.nonzero(values)[0]:
        registers.update(int(index), int(values[index]))


def _load_envelope(envelope: dict):
    kind = envelope["kind"]
    _codecs()
    codec = _CODEC_BY_TAG.get(kind)
    if codec is None:
        raise ValueError(f"unknown snapshot kind {kind!r}")
    estimator = codec.load(envelope["body"])
    if codec.attach_estimates:
        # Arena-backed estimators adopt the dict through their _estimates
        # property setter (interning users in mapping order).
        estimator._estimates = _estimates_from_payload(envelope["estimates"])
    return estimator


def from_obj(envelope: dict):
    """Restore an estimator from an already-parsed envelope dict.

    The inverse of :func:`to_obj` — validates the same format/version
    markers :func:`loads` does, without requiring the caller to re-serialise
    a dict it already holds (the snapshot-restore hot path loads every
    retained epoch through here).
    """
    if not isinstance(envelope, dict) or envelope.get("format") != "freesketch-snapshot":
        raise ValueError("not a freesketch snapshot payload")
    if envelope.get("version") not in _ACCEPTED_VERSIONS:
        raise ValueError(f"unsupported snapshot version {envelope.get('version')!r}")
    return _load_envelope(envelope)


def loads(payload: str):
    """Restore an estimator previously serialised with :func:`dumps`."""
    return from_obj(json.loads(payload))


def save(estimator, path: PathLike) -> None:
    """Serialise ``estimator`` to a file."""
    Path(path).write_text(dumps(estimator), encoding="utf-8")


def load(path: PathLike):
    """Restore an estimator from a file written by :func:`save`."""
    return loads(Path(path).read_text(encoding="utf-8"))
