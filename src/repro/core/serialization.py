"""Snapshot serialization for every compared estimator.

Monitoring deployments need to checkpoint sketch state: a monitor restarts,
a snapshot is shipped to an analysis box, or an operator wants yesterday's
state next to today's.  This module serialises all six compared methods —
FreeBS / FreeRS (scalar and batch variants), CSE, vHLL and the per-user LPC
/ HLL++ baselines — plus :class:`repro.engine.ShardedEstimator` compositions
of any of them, to a compact, versioned, self-describing JSON + base85
payload, and restores them exactly: estimates, shared-array state and seeds
round-trip so a restored estimator continues the stream as if nothing
happened.

Format history:

* version 1 — FreeBS / FreeRS (scalar and batch) only;
* version 2 — adds the ``CSE``, ``vHLL``, ``LPC``, ``HLL++`` and ``Sharded``
  kinds (sharded envelopes nest one sub-envelope per shard).  Version-1
  payloads still load.

The format intentionally favours debuggability (a JSON envelope with the
array payload base85-encoded) over minimum size; the arrays dominate and are
stored raw, so the overhead is a few percent.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.batch import FreeBSBatch, FreeRSBatch
from repro.core.freebs import FreeBS
from repro.core.freers import FreeRS

PathLike = Union[str, Path]

_FORMAT_VERSION = 2

#: Payload versions this loader understands (older versions stay readable).
_ACCEPTED_VERSIONS = frozenset({1, 2})

SerializableEstimator = Union[FreeBS, FreeRS, FreeBSBatch, FreeRSBatch]


def _encode_array(array: np.ndarray) -> str:
    return base64.b85encode(np.ascontiguousarray(array).tobytes()).decode("ascii")


def _decode_array(payload: str, dtype: np.dtype, count: int) -> np.ndarray:
    raw = base64.b85decode(payload.encode("ascii"))
    return np.frombuffer(raw, dtype=dtype, count=count).copy()


def _key_to_json(key: object) -> list:
    # JSON object keys must be strings; store (repr-tag, key) so integer and
    # string users round-trip without collision.
    if isinstance(key, (int, np.integer)):
        return ["int", str(int(key))]
    return ["str", str(key)]


def _key_from_json(kind: str, key: str) -> object:
    return int(key) if kind == "int" else key


def _estimates_to_json(estimates: dict) -> list:
    return [[*_key_to_json(user), value] for user, value in estimates.items()]


def _estimates_from_json(triples: list) -> dict:
    return {_key_from_json(kind, key): float(value) for kind, key, value in triples}


def _dump_body(estimator) -> tuple:
    """Return ``(kind, body)`` for one estimator, dispatching on its type."""
    from repro.baselines.cse import CSE
    from repro.baselines.per_user import PerUserHLLPP, PerUserLPC
    from repro.baselines.vhll import VirtualHLL
    from repro.engine.sharded import ShardedEstimator

    if isinstance(estimator, ShardedEstimator):
        return "Sharded", {
            "shards": estimator.num_shards,
            "seed": estimator.seed,
            "shard_pairs": list(estimator.shard_pair_counts),
            "sub": [json.loads(dumps(shard)) for shard in estimator.shards],
        }
    if isinstance(estimator, FreeBS):
        return "FreeBS", {
            "memory_bits": estimator.M,
            "seed": estimator.seed,
            "pairs_processed": estimator.pairs_processed,
            "words": _encode_array(estimator._bits._words),
            "ones": estimator._bits.ones,
        }
    if isinstance(estimator, FreeBSBatch):
        return "FreeBSBatch", {
            "memory_bits": estimator.M,
            "seed": estimator.seed,
            "pairs_processed": estimator.pairs_processed,
            "bits": _encode_array(estimator._bit_state),
            "zero_bits": estimator._zero_bits,
        }
    if isinstance(estimator, FreeRS):
        return "FreeRS", {
            "registers": estimator.M,
            "register_width": estimator._registers.width,
            "seed": estimator.seed,
            "pairs_processed": estimator.pairs_processed,
            "values": _encode_array(estimator._registers.values),
        }
    if isinstance(estimator, FreeRSBatch):
        return "FreeRSBatch", {
            "registers": estimator.M,
            "register_width": estimator.register_width,
            "seed": estimator.seed,
            "pairs_processed": estimator.pairs_processed,
            "values": _encode_array(estimator._register_state),
        }
    if isinstance(estimator, CSE):
        return "CSE", {
            "memory_bits": estimator.M,
            "virtual_size": estimator.m,
            "seed": estimator.seed,
            "words": _encode_array(estimator._bits._words),
            "ones": estimator._bits.ones,
        }
    if isinstance(estimator, VirtualHLL):
        return "vHLL", {
            "registers": estimator.M,
            "virtual_size": estimator.m,
            "register_width": estimator._registers.width,
            "seed": estimator.seed,
            "values": _encode_array(estimator._registers.values),
        }
    if isinstance(estimator, PerUserLPC):
        return "LPC", {
            "bits_per_user": estimator.bits_per_user,
            "seed": estimator.seed,
            "users": [
                [
                    *_key_to_json(user),
                    _encode_array(sketch._bits._words),
                    sketch._bits.ones,
                ]
                for user, sketch in estimator._sketches.items()
            ],
        }
    if isinstance(estimator, PerUserHLLPP):
        return "HLL++", {
            "registers_per_user": estimator.registers_per_user,
            "register_width": estimator.register_width,
            "seed": estimator.seed,
            "users": [
                [*_key_to_json(user), _hllpp_state(sketch)]
                for user, sketch in estimator._sketches.items()
            ],
        }
    raise TypeError(
        f"cannot serialise {type(estimator).__name__}; supported kinds: "
        "FreeBS/FreeRS (scalar or batch), CSE, vHLL, LPC, HLL++ and "
        "Sharded compositions of them"
    )


def _hllpp_state(sketch) -> dict:
    """State of one private HLL++ sketch, preserving its representation."""
    if sketch._sparse is not None:
        # Entry order is preserved so densification (which replays the dict
        # in insertion order) happens on the same trajectory after a restore.
        return {
            "mode": "sparse",
            "entries": [[int(bucket), int(rank)] for bucket, rank in sketch._sparse.items()],
        }
    return {"mode": "dense", "values": _encode_array(sketch._registers.values)}


def _restore_hllpp(sketch, state: dict) -> None:
    if state["mode"] == "sparse":
        for bucket, rank in state["entries"]:
            sketch._sparse[int(bucket)] = int(rank)
        if len(sketch._sparse) > sketch._sparse_limit:
            sketch._densify()
    else:
        values = _decode_array(state["values"], np.uint8, sketch.m)
        sketch._sparse = None
        from repro.sketches.registers import RegisterArray

        registers = RegisterArray(sketch.m, width=sketch.width)
        for index in np.nonzero(values)[0]:
            registers.update(int(index), int(values[index]))
        sketch._registers = registers


def dumps(estimator) -> str:
    """Serialise an estimator to a JSON string (see module doc for coverage)."""
    kind, body = _dump_body(estimator)
    envelope = {
        "format": "freesketch-snapshot",
        "version": _FORMAT_VERSION,
        "kind": kind,
        "estimates": (
            [] if kind == "Sharded" else _estimates_to_json(estimator.estimates())
        ),
        "body": body,
    }
    return json.dumps(envelope)


def _restore_bitarray(bits, words_payload: str, ones: int) -> None:
    bits._words[:] = _decode_array(words_payload, np.uint64, len(bits._words))
    bits._ones = int(ones)


def _restore_registers(registers, values_payload: str, count: int) -> None:
    # Replaying through update() keeps the incremental harmonic-sum and
    # zero-count bookkeeping on a clean trajectory (see RegisterArray).
    values = _decode_array(values_payload, np.uint8, count)
    for index in np.nonzero(values)[0]:
        registers.update(int(index), int(values[index]))


def _load_envelope(envelope: dict):
    from repro.baselines.cse import CSE
    from repro.baselines.per_user import PerUserHLLPP, PerUserLPC
    from repro.baselines.vhll import VirtualHLL
    from repro.engine.sharded import ShardedEstimator
    from repro.sketches.hllpp import HyperLogLogPlusPlus
    from repro.sketches.lpc import LinearProbabilisticCounter

    kind = envelope["kind"]
    body = envelope["body"]
    estimates = _estimates_from_json(envelope["estimates"])

    if kind == "Sharded":
        shards = [_load_envelope(sub) for sub in body["sub"]]
        estimator = ShardedEstimator(
            lambda k: shards[k], shards=int(body["shards"]), seed=int(body["seed"])
        )
        estimator._shard_pairs = [int(count) for count in body["shard_pairs"]]
        return estimator
    if kind == "FreeBS":
        estimator = FreeBS(body["memory_bits"], seed=body["seed"])
        _restore_bitarray(estimator._bits, body["words"], body["ones"])
        estimator._pairs_processed = int(body["pairs_processed"])
    elif kind == "FreeBSBatch":
        estimator = FreeBSBatch(body["memory_bits"], seed=body["seed"])
        bits = _decode_array(body["bits"], np.bool_, estimator.M)
        estimator._bit_state[:] = bits
        estimator._zero_bits = int(body["zero_bits"])
        estimator._pairs_processed = int(body["pairs_processed"])
    elif kind == "FreeRS":
        estimator = FreeRS(
            body["registers"], register_width=body["register_width"], seed=body["seed"]
        )
        _restore_registers(estimator._registers, body["values"], estimator.M)
        estimator._pairs_processed = int(body["pairs_processed"])
    elif kind == "FreeRSBatch":
        estimator = FreeRSBatch(
            body["registers"], register_width=body["register_width"], seed=body["seed"]
        )
        values = _decode_array(body["values"], np.int64, estimator.M)
        estimator._register_state[:] = values
        estimator._harmonic_sum = float(np.sum(np.exp2(-values.astype(np.float64))))
        estimator._pairs_processed = int(body["pairs_processed"])
    elif kind == "CSE":
        estimator = CSE(
            body["memory_bits"], virtual_size=body["virtual_size"], seed=body["seed"]
        )
        _restore_bitarray(estimator._bits, body["words"], body["ones"])
    elif kind == "vHLL":
        estimator = VirtualHLL(
            body["registers"],
            virtual_size=body["virtual_size"],
            register_width=body["register_width"],
            seed=body["seed"],
        )
        _restore_registers(estimator._registers, body["values"], estimator.M)
    elif kind == "LPC":
        estimator = PerUserLPC(
            memory_bits=0,
            expected_users=1,
            bits_per_user=int(body["bits_per_user"]),
            seed=int(body["seed"]),
        )
        for key_kind, key, words, ones in body["users"]:
            sketch = LinearProbabilisticCounter(estimator.bits_per_user, seed=estimator.seed)
            _restore_bitarray(sketch._bits, words, ones)
            estimator._sketches[_key_from_json(key_kind, key)] = sketch
    elif kind == "HLL++":
        estimator = PerUserHLLPP(
            memory_bits=0,
            expected_users=1,
            registers_per_user=int(body["registers_per_user"]),
            register_width=int(body["register_width"]),
            seed=int(body["seed"]),
        )
        for key_kind, key, state in body["users"]:
            sketch = HyperLogLogPlusPlus(
                estimator.registers_per_user,
                width=estimator.register_width,
                seed=estimator.seed,
            )
            _restore_hllpp(sketch, state)
            estimator._sketches[_key_from_json(key_kind, key)] = sketch
    else:
        raise ValueError(f"unknown snapshot kind {kind!r}")

    estimator._estimates = estimates
    return estimator


def loads(payload: str):
    """Restore an estimator previously serialised with :func:`dumps`."""
    envelope = json.loads(payload)
    if envelope.get("format") != "freesketch-snapshot":
        raise ValueError("not a freesketch snapshot payload")
    if envelope.get("version") not in _ACCEPTED_VERSIONS:
        raise ValueError(f"unsupported snapshot version {envelope.get('version')!r}")
    return _load_envelope(envelope)


def save(estimator, path: PathLike) -> None:
    """Serialise ``estimator`` to a file."""
    Path(path).write_text(dumps(estimator), encoding="utf-8")


def load(path: PathLike):
    """Restore an estimator from a file written by :func:`save`."""
    return loads(Path(path).read_text(encoding="utf-8"))
