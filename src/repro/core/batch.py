"""Vectorised batch-processing variants of FreeBS and FreeRS.

The scalar estimators in :mod:`repro.core.freebs` / :mod:`repro.core.freers`
process one (user, item) pair per call, which is the right shape for the
paper's streaming model but leaves a lot of throughput on the table in pure
Python.  High-rate replay — the situation the benchmark harness is in — can
instead hand the estimator a *batch* of pre-encoded integer pairs and let
numpy do the heavy lifting.

The encoding pipeline and the change-event kernels now live in the engine
layer (:mod:`repro.engine.encoding`, :mod:`repro.engine.kernels`) and are
shared with the CSE/vHLL/per-user batch paths; ``encode_pairs`` and
``encode_int_pairs`` are re-exported here for backwards compatibility.

The batch implementations are **exactly equivalent** to feeding the same
pairs one by one to the scalar estimators with the same seed (the test-suite
asserts this bit-for-bit on random streams).  Equivalence is achieved by
replaying the batch's *change events* in arrival order:

* FreeBS: the pairs that change the array are the first occurrences of bit
  indices that are still zero; `q_B` decreases by `1/M` at each such event,
  so the increments `1/q` for all events can be computed with one cumulative
  sum.
* FreeRS: a pair changes a register iff its rank exceeds the running maximum
  of that register (initial value, then previous in-batch updates); the
  events are found with a per-register prefix maximum after sorting by
  (register, position), and `q_R`'s trajectory is reconstructed with a
  cumulative sum of the per-event harmonic-sum deltas.

Both classes also accept plain Python keys through the scalar
``update``/``process`` API (they simply encode and delegate), so they are
drop-in replacements implementing :class:`repro.core.base.CardinalityEstimator`.
"""

from __future__ import annotations


import numpy as np

from repro.core.base import CardinalityEstimator
from repro.core.freebs import FreeBS
from repro.core.freers import FreeRS
from repro.engine.base import BatchUpdatable
from repro.engine.encoding import (  # noqa: F401  (re-exported legacy API)
    EncodedBatch,
    encode_int_pairs,
    encode_pairs,
    seed_mix,
)
from repro.engine.kernels import bit_change_events, register_change_events
from repro.hashing import splitmix64_array
from repro.hashing.geometric import geometric_rank_array


class _BatchEstimatorBase(BatchUpdatable, CardinalityEstimator):
    """Shared plumbing of the two batch estimators (user bookkeeping, interface)."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._estimates: dict[object, float] = {}
        self._pairs_processed = 0

    # -- scalar interface delegates to the batch path -------------------------

    def update(self, user: object, item: object) -> float:
        """Process a single pair (delegates to a batch of size one)."""
        self.update_batch([(user, item)])
        return self._estimates.get(user, 0.0)

    def estimate(self, user: object) -> float:
        """Return the current estimate of ``user`` (0.0 for unseen users)."""
        return self._estimates.get(user, 0.0)

    def estimate_many(self, users):
        """Batch estimates in input order, served from the running HT sums."""
        from repro.engine.query import gather_cached_estimates

        return gather_cached_estimates(self._estimates, users)

    def estimates(self) -> dict[object, float]:
        """Return the current estimate of every observed user."""
        return dict(self._estimates)

    @property
    def pairs_processed(self) -> int:
        """Total number of pairs processed so far (duplicates included)."""
        return self._pairs_processed

    # -- engine interface ------------------------------------------------------

    def update_encoded(self, batch: EncodedBatch) -> None:
        """Process an engine-encoded batch (adapts to the legacy tuple API)."""
        self.update_batch_encoded(batch.user_codes, batch.pair_keys(), batch.decode_table())

    def update_batch_encoded(
        self,
        user_codes: np.ndarray,
        pair_keys: np.ndarray,
        decode: dict[int, object],
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _touch_users(self, users) -> None:
        for user in users:
            self._estimates.setdefault(user, 0.0)


class FreeBSBatch(_BatchEstimatorBase):
    """Batch-oriented FreeBS, update-for-update equivalent to :class:`FreeBS`."""

    name = "FreeBS(batch)"

    def __init__(self, memory_bits: int, seed: int = 0) -> None:
        if memory_bits <= 0:
            raise ValueError("memory_bits must be positive")
        super().__init__(seed)
        self.M = memory_bits
        # Dense byte-per-bit state: the batch path needs random access reads
        # and fancy-indexed writes, which a packed representation would make
        # much slower in numpy.  Memory accounting still reports M bits.
        self._bit_state = np.zeros(memory_bits, dtype=bool)
        self._zero_bits = memory_bits

    def memory_bits(self) -> int:
        """Accounted memory of the shared bit array (M bits, as in the paper)."""
        return self.M

    @property
    def change_probability(self) -> float:
        """Current ``q_B``: probability a new pair changes the array."""
        return self._zero_bits / self.M

    def update_batch_encoded(
        self,
        user_codes: np.ndarray,
        pair_keys: np.ndarray,
        decode: dict[int, object],
    ) -> None:
        """Process a batch already encoded by :func:`encode_pairs`.

        ``pair_keys`` must identify pairs (equal pairs ⇒ equal keys); they are
        re-mixed with this estimator's seed before use, so the same encoded
        batch can be fed to estimators with different seeds.
        """
        if user_codes.shape != pair_keys.shape:
            raise ValueError("user_codes and pair_keys must have the same length")
        count = int(user_codes.shape[0])
        if count == 0:
            return
        self._pairs_processed += count
        indices = (splitmix64_array(pair_keys ^ seed_mix(self.seed)) % np.uint64(self.M)).astype(
            np.int64
        )

        # A pair is a change event iff its bit is still zero at its arrival
        # time, i.e. the bit was zero at batch start AND this is the first
        # occurrence of that bit index within the batch.
        ordered_positions = bit_change_events(indices, ~self._bit_state[indices])

        self._touch_users(decode[int(code)] for code in np.unique(user_codes))
        if ordered_positions.size == 0:
            return

        # q before the k-th change event (in arrival order) is
        # (zero_bits_at_batch_start - k) / M.
        zeros_before = self._zero_bits - np.arange(ordered_positions.size)
        increments = self.M / zeros_before

        # Attribute each increment to the user of the changing pair.
        for position, increment in zip(ordered_positions, increments):
            user = decode[int(user_codes[position])]
            self._estimates[user] = self._estimates.get(user, 0.0) + float(increment)

        # Commit the array state.
        self._bit_state[indices[ordered_positions]] = True
        self._zero_bits -= int(ordered_positions.size)

    def to_scalar(self) -> FreeBS:
        """Return a scalar :class:`FreeBS` snapshot with identical state.

        Useful for handing the state to code written against the scalar class
        (e.g. the super-spreader detector's ``total_cardinality_estimate``).
        """
        scalar = FreeBS(self.M, seed=self.seed)
        scalar._bits.set_many(np.nonzero(self._bit_state)[0])
        scalar._estimates = dict(self._estimates)
        scalar._pairs_processed = self._pairs_processed
        return scalar

    def total_cardinality_estimate(self) -> float:
        """LPC estimate of the total distinct-pair count (see :class:`FreeBS`)."""
        import math

        if self._zero_bits == 0:
            return self.M * math.log(self.M)
        return -self.M * math.log(self._zero_bits / self.M)


class FreeRSBatch(_BatchEstimatorBase):
    """Batch-oriented FreeRS, update-for-update equivalent to :class:`FreeRS`."""

    name = "FreeRS(batch)"

    def __init__(self, registers: int, register_width: int = 5, seed: int = 0) -> None:
        if registers <= 0:
            raise ValueError("registers must be positive")
        if not 1 <= register_width <= 8:
            raise ValueError("register_width must be between 1 and 8")
        super().__init__(seed)
        self.M = registers
        self.register_width = register_width
        self._max_rank = (1 << register_width) - 1
        self._register_state = np.zeros(registers, dtype=np.int64)
        self._harmonic_sum = float(registers)

    def memory_bits(self) -> int:
        """Accounted memory of the shared register array."""
        return self.M * self.register_width

    @property
    def change_probability(self) -> float:
        """Current ``q_R``: probability a new pair changes some register."""
        return self._harmonic_sum / self.M

    def update_batch_encoded(
        self,
        user_codes: np.ndarray,
        pair_keys: np.ndarray,
        decode: dict[int, object],
    ) -> None:
        """Process a batch already encoded by :func:`encode_pairs`."""
        if user_codes.shape != pair_keys.shape:
            raise ValueError("user_codes and pair_keys must have the same length")
        count = int(user_codes.shape[0])
        if count == 0:
            return
        self._pairs_processed += count
        hashes = splitmix64_array(pair_keys ^ seed_mix(self.seed))
        indices = (hashes % np.uint64(self.M)).astype(np.int64)
        ranks = geometric_rank_array(splitmix64_array(hashes), max_rank=self._max_rank)

        self._touch_users(decode[int(code)] for code in np.unique(user_codes))

        # Find the change events with the shared per-register prefix-maximum
        # kernel: a pair is an event iff its rank exceeds the running maximum
        # of (initial register value, earlier in-batch ranks).
        event_positions, event_registers, event_old, event_new = register_change_events(
            indices, ranks, self._register_state[indices]
        )
        if event_positions.size == 0:
            return

        # Replay the events in arrival order to reconstruct q_R's trajectory.
        deltas = np.exp2(-event_new.astype(np.float64)) - np.exp2(-event_old.astype(np.float64))
        harmonic_before = self._harmonic_sum + np.concatenate(([0.0], np.cumsum(deltas)[:-1]))
        increments = self.M / harmonic_before

        for user_code, increment in zip(user_codes[event_positions], increments):
            user = decode[int(user_code)]
            self._estimates[user] = self._estimates.get(user, 0.0) + float(increment)

        # Commit register state: each register ends at the max rank seen.
        np.maximum.at(self._register_state, event_registers, event_new)
        self._harmonic_sum += float(np.sum(deltas))

    def to_scalar(self) -> FreeRS:
        """Return a scalar :class:`FreeRS` snapshot with identical state."""
        scalar = FreeRS(self.M, register_width=self.register_width, seed=self.seed)
        for index in np.nonzero(self._register_state)[0]:
            scalar._registers.update(int(index), int(self._register_state[index]))
        scalar._estimates = dict(self._estimates)
        scalar._pairs_processed = self._pairs_processed
        return scalar

    def total_cardinality_estimate(self) -> float:
        """HLL estimate of the total distinct-pair count (see :class:`FreeRS`)."""
        import math

        from repro.sketches.hll import alpha_m

        raw = alpha_m(self.M) * self.M * self.M / self._harmonic_sum
        zeros = int(np.count_nonzero(self._register_state == 0))
        if raw < 2.5 * self.M and zeros > 0:
            return self.M * math.log(self.M / zeros)
        return raw
