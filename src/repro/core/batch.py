"""Vectorised batch-processing variants of FreeBS and FreeRS.

The scalar estimators in :mod:`repro.core.freebs` / :mod:`repro.core.freers`
process one (user, item) pair per call, which is the right shape for the
paper's streaming model but leaves a lot of throughput on the table in pure
Python.  High-rate replay — the situation the benchmark harness is in — can
instead hand the estimator a *batch* of pre-encoded integer pairs and let
numpy do the heavy lifting.

The batch implementations are **exactly equivalent** to feeding the same
pairs one by one to the scalar estimators with the same seed (the test-suite
asserts this bit-for-bit on random streams).  Equivalence is achieved by
replaying the batch's *change events* in arrival order:

* FreeBS: the pairs that change the array are the first occurrences of bit
  indices that are still zero; `q_B` decreases by `1/M` at each such event,
  so the increments `1/q` for all events can be computed with one cumulative
  sum.
* FreeRS: a pair changes a register iff its rank exceeds the running maximum
  of that register (initial value, then previous in-batch updates); the
  events are found with a per-register prefix maximum after sorting by
  (register, position), and `q_R`'s trajectory is reconstructed with a
  cumulative sum of the per-event harmonic-sum deltas.

Both classes also accept plain Python keys through the scalar
``update``/``process`` API (they simply encode and delegate), so they are
drop-in replacements implementing :class:`repro.core.base.CardinalityEstimator`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.core.base import CardinalityEstimator
from repro.core.freebs import FreeBS
from repro.core.freers import FreeRS
from repro.hashing import MASK64, pair_key, splitmix64, splitmix64_array
from repro.hashing.geometric import geometric_rank_array

UserItemPair = Tuple[object, object]


def encode_pairs(pairs: Iterable[UserItemPair]) -> Tuple[np.ndarray, np.ndarray, Dict[int, object]]:
    """Encode arbitrary (user, item) pairs into integer arrays for batch APIs.

    Returns ``(user_codes, pair_hash_keys, decode_table)`` where
    ``user_codes[i]`` is a dense integer id of the i-th pair's user,
    ``pair_hash_keys[i]`` is a 64-bit key that identifies the *pair* (equal
    pairs get equal keys), and ``decode_table`` maps user codes back to the
    original user objects.
    """
    users: list = []
    user_codes: Dict[object, int] = {}
    codes = []
    keys = []
    for user, item in pairs:
        code = user_codes.get(user)
        if code is None:
            code = len(users)
            user_codes[user] = code
            users.append(user)
        codes.append(code)
        keys.append(pair_key(user, item))
    decode = {code: user for user, code in user_codes.items()}
    return (
        np.asarray(codes, dtype=np.int64),
        np.asarray(keys, dtype=np.uint64),
        decode,
    )


_GOLDEN_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def encode_int_pairs(users: np.ndarray, items: np.ndarray) -> Tuple[np.ndarray, np.ndarray, Dict[int, object]]:
    """Vectorised :func:`encode_pairs` for streams of integer users and items.

    Produces exactly the same keys as the scalar path (``pair_key(u, i)`` for
    integer ``u``/``i``), but without a Python-level loop — this is the fast
    path the high-rate benchmarks use.  The decode table maps each user code
    to the original integer user id.
    """
    users = np.asarray(users)
    items = np.asarray(items)
    if users.shape != items.shape:
        raise ValueError("users and items must have the same length")
    with np.errstate(over="ignore"):
        keys = splitmix64_array(users.astype(np.uint64) ^ _GOLDEN_GAMMA) ^ splitmix64_array(
            items.astype(np.uint64)
        )
    unique_users, codes = np.unique(users, return_inverse=True)
    decode = {code: int(user) for code, user in enumerate(unique_users)}
    return codes.astype(np.int64), keys, decode


class _BatchEstimatorBase(CardinalityEstimator):
    """Shared plumbing of the two batch estimators (user bookkeeping, interface)."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._estimates: Dict[object, float] = {}
        self._pairs_processed = 0

    # -- scalar interface delegates to the batch path -------------------------

    def update(self, user: object, item: object) -> float:
        """Process a single pair (delegates to a batch of size one)."""
        self.update_batch([(user, item)])
        return self._estimates.get(user, 0.0)

    def estimate(self, user: object) -> float:
        """Return the current estimate of ``user`` (0.0 for unseen users)."""
        return self._estimates.get(user, 0.0)

    def estimates(self) -> Dict[object, float]:
        """Return the current estimate of every observed user."""
        return dict(self._estimates)

    @property
    def pairs_processed(self) -> int:
        """Total number of pairs processed so far (duplicates included)."""
        return self._pairs_processed

    # -- to be provided by subclasses -----------------------------------------

    def update_batch(self, pairs: Iterable[UserItemPair]) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _touch_users(self, users: Iterable[object]) -> None:
        for user in users:
            self._estimates.setdefault(user, 0.0)


class FreeBSBatch(_BatchEstimatorBase):
    """Batch-oriented FreeBS, update-for-update equivalent to :class:`FreeBS`."""

    name = "FreeBS(batch)"

    def __init__(self, memory_bits: int, seed: int = 0) -> None:
        if memory_bits <= 0:
            raise ValueError("memory_bits must be positive")
        super().__init__(seed)
        self.M = memory_bits
        # Dense byte-per-bit state: the batch path needs random access reads
        # and fancy-indexed writes, which a packed representation would make
        # much slower in numpy.  Memory accounting still reports M bits.
        self._bit_state = np.zeros(memory_bits, dtype=bool)
        self._zero_bits = memory_bits

    def memory_bits(self) -> int:
        """Accounted memory of the shared bit array (M bits, as in the paper)."""
        return self.M

    @property
    def change_probability(self) -> float:
        """Current ``q_B``: probability a new pair changes the array."""
        return self._zero_bits / self.M

    def update_batch(self, pairs: Iterable[UserItemPair]) -> None:
        """Process a batch of raw (user, item) pairs."""
        pairs = list(pairs)
        if not pairs:
            return
        user_codes, keys, decode = encode_pairs(pairs)
        self.update_batch_encoded(user_codes, keys, decode)

    def update_batch_encoded(
        self,
        user_codes: np.ndarray,
        pair_keys: np.ndarray,
        decode: Dict[int, object],
    ) -> None:
        """Process a batch already encoded by :func:`encode_pairs`.

        ``pair_keys`` must identify pairs (equal pairs ⇒ equal keys); they are
        re-mixed with this estimator's seed before use, so the same encoded
        batch can be fed to estimators with different seeds.
        """
        if user_codes.shape != pair_keys.shape:
            raise ValueError("user_codes and pair_keys must have the same length")
        count = int(user_codes.shape[0])
        if count == 0:
            return
        self._pairs_processed += count
        seed_mix = np.uint64(splitmix64(self.seed & MASK64))
        indices = (splitmix64_array(pair_keys ^ seed_mix) % np.uint64(self.M)).astype(np.int64)

        # A pair is a change event iff its bit is still zero at its arrival
        # time, i.e. the bit was zero at batch start AND this is the first
        # occurrence of that bit index within the batch.
        first_occurrence = np.zeros(count, dtype=bool)
        unique_indices, first_positions = np.unique(indices, return_index=True)
        first_occurrence[first_positions] = True
        zero_at_start = ~self._bit_state[indices]
        changes = first_occurrence & zero_at_start
        change_positions = np.nonzero(changes)[0]

        self._touch_users(decode[int(code)] for code in np.unique(user_codes))
        if change_positions.size == 0:
            return

        # q before the k-th change event (in arrival order) is
        # (zero_bits_at_batch_start - k) / M.
        order = np.argsort(change_positions, kind="stable")
        ordered_positions = change_positions[order]
        zeros_before = self._zero_bits - np.arange(ordered_positions.size)
        increments = self.M / zeros_before

        # Attribute each increment to the user of the changing pair.
        for position, increment in zip(ordered_positions, increments):
            user = decode[int(user_codes[position])]
            self._estimates[user] = self._estimates.get(user, 0.0) + float(increment)

        # Commit the array state.
        self._bit_state[indices[ordered_positions]] = True
        self._zero_bits -= int(ordered_positions.size)

    def to_scalar(self) -> FreeBS:
        """Return a scalar :class:`FreeBS` snapshot with identical state.

        Useful for handing the state to code written against the scalar class
        (e.g. the super-spreader detector's ``total_cardinality_estimate``).
        """
        scalar = FreeBS(self.M, seed=self.seed)
        for index in np.nonzero(self._bit_state)[0]:
            scalar._bits.set_bit(int(index))
        scalar._estimates = dict(self._estimates)
        scalar._pairs_processed = self._pairs_processed
        return scalar

    def total_cardinality_estimate(self) -> float:
        """LPC estimate of the total distinct-pair count (see :class:`FreeBS`)."""
        import math

        if self._zero_bits == 0:
            return self.M * math.log(self.M)
        return -self.M * math.log(self._zero_bits / self.M)


class FreeRSBatch(_BatchEstimatorBase):
    """Batch-oriented FreeRS, update-for-update equivalent to :class:`FreeRS`."""

    name = "FreeRS(batch)"

    def __init__(self, registers: int, register_width: int = 5, seed: int = 0) -> None:
        if registers <= 0:
            raise ValueError("registers must be positive")
        if not 1 <= register_width <= 8:
            raise ValueError("register_width must be between 1 and 8")
        super().__init__(seed)
        self.M = registers
        self.register_width = register_width
        self._max_rank = (1 << register_width) - 1
        self._register_state = np.zeros(registers, dtype=np.int64)
        self._harmonic_sum = float(registers)

    def memory_bits(self) -> int:
        """Accounted memory of the shared register array."""
        return self.M * self.register_width

    @property
    def change_probability(self) -> float:
        """Current ``q_R``: probability a new pair changes some register."""
        return self._harmonic_sum / self.M

    def update_batch(self, pairs: Iterable[UserItemPair]) -> None:
        """Process a batch of raw (user, item) pairs."""
        pairs = list(pairs)
        if not pairs:
            return
        user_codes, keys, decode = encode_pairs(pairs)
        self.update_batch_encoded(user_codes, keys, decode)

    def update_batch_encoded(
        self,
        user_codes: np.ndarray,
        pair_keys: np.ndarray,
        decode: Dict[int, object],
    ) -> None:
        """Process a batch already encoded by :func:`encode_pairs`."""
        if user_codes.shape != pair_keys.shape:
            raise ValueError("user_codes and pair_keys must have the same length")
        count = int(user_codes.shape[0])
        if count == 0:
            return
        self._pairs_processed += count
        seed_mix = np.uint64(splitmix64(self.seed & MASK64))
        hashes = splitmix64_array(pair_keys ^ seed_mix)
        indices = (hashes % np.uint64(self.M)).astype(np.int64)
        ranks = geometric_rank_array(splitmix64_array(hashes), max_rank=self._max_rank)

        self._touch_users(decode[int(code)] for code in np.unique(user_codes))

        # Find the change events: sort by (register, position); within each
        # register segment a pair is an event iff its rank exceeds the running
        # maximum of (initial register value, earlier in-batch ranks).
        order = np.lexsort((np.arange(count), indices))
        sorted_registers = indices[order]
        sorted_ranks = ranks[order]
        segment_starts = np.ones(count, dtype=bool)
        segment_starts[1:] = sorted_registers[1:] != sorted_registers[:-1]

        initial_values = self._register_state[sorted_registers]
        # Running maximum of ranks *before* each element within its segment.
        # Compute an inclusive prefix max, then shift it right by one inside
        # each segment (the first element of a segment sees only the initial
        # register value).
        inclusive = np.maximum(sorted_ranks, initial_values)
        # Segment-aware cumulative maximum via np.maximum.accumulate with
        # resets: offset each segment so values from previous segments cannot
        # leak (ranks are bounded by _max_rank, so a per-segment offset of
        # (_max_rank + 1) is enough).
        segment_ids = np.cumsum(segment_starts) - 1
        offset = segment_ids * (self._max_rank + 2)
        running = np.maximum.accumulate(inclusive + offset) - offset
        previous_max = np.empty(count, dtype=np.int64)
        previous_max[0] = initial_values[0]
        previous_max[1:] = np.where(
            segment_starts[1:], initial_values[1:], running[:-1]
        )
        is_event_sorted = sorted_ranks > previous_max

        if not np.any(is_event_sorted):
            return

        event_positions = order[is_event_sorted]
        event_old = previous_max[is_event_sorted]
        event_new = sorted_ranks[is_event_sorted]
        event_registers = sorted_registers[is_event_sorted]
        event_users = user_codes[event_positions]

        # Replay the events in arrival order to reconstruct q_R's trajectory.
        arrival = np.argsort(event_positions, kind="stable")
        deltas = np.exp2(-event_new[arrival].astype(np.float64)) - np.exp2(
            -event_old[arrival].astype(np.float64)
        )
        harmonic_before = self._harmonic_sum + np.concatenate(([0.0], np.cumsum(deltas)[:-1]))
        increments = self.M / harmonic_before

        for user_code, increment in zip(event_users[arrival], increments):
            user = decode[int(user_code)]
            self._estimates[user] = self._estimates.get(user, 0.0) + float(increment)

        # Commit register state: each register ends at the max rank seen.
        np.maximum.at(self._register_state, event_registers, event_new)
        self._harmonic_sum += float(np.sum(deltas))

    def to_scalar(self) -> FreeRS:
        """Return a scalar :class:`FreeRS` snapshot with identical state."""
        scalar = FreeRS(self.M, register_width=self.register_width, seed=self.seed)
        for index in np.nonzero(self._register_state)[0]:
            scalar._registers.update(int(index), int(self._register_state[index]))
        scalar._estimates = dict(self._estimates)
        scalar._pairs_processed = self._pairs_processed
        return scalar

    def total_cardinality_estimate(self) -> float:
        """HLL estimate of the total distinct-pair count (see :class:`FreeRS`)."""
        import math

        from repro.sketches.hll import alpha_m

        raw = alpha_m(self.M) * self.M * self.M / self._harmonic_sum
        zeros = int(np.count_nonzero(self._register_state == 0))
        if raw < 2.5 * self.M and zeros > 0:
            return self.M * math.log(self.M / zeros)
        return raw
