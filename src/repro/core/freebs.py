"""FreeBS — parameter-free bit sharing (paper Algorithm 1).

A single bit array ``B`` of ``M`` bits is shared by *all* users.  Every
arriving (user, item) pair ``e`` is hashed uniformly into ``B`` with
``h*(e)``.  If the chosen bit is already one the pair is discarded (it is
either a duplicate or a collision); if the bit flips from zero to one, the
arriving user's running estimate is increased by ``1 / q_B(t)``, where
``q_B(t) = m0 / M`` is the fraction of zero bits *just before* the update —
i.e. the probability that a brand-new pair would have changed the array.
This is a Horvitz–Thompson estimator, and Theorem 1 of the paper shows it is
unbiased with variance ``sum_i E[1/q_B(i)] - n_s``.

Properties reproduced here:

* O(1) work per arriving pair (one hash, one bit probe, O(1) bookkeeping);
* no per-user parameter ``m`` to tune — users implicitly use more bits as
  their cardinality grows;
* estimation range ``[0, M ln M]`` (the estimate keeps growing until the
  array is full);
* anytime estimates: ``estimate(user)`` is valid after every update.
"""

from __future__ import annotations


import numpy as np

from repro.core.base import CardinalityEstimator
from repro.engine.base import BatchUpdatable
from repro.engine.encoding import EncodedBatch, seed_mix
from repro.engine.kernels import bit_change_events
from repro.hashing import hash_pair, splitmix64_array
from repro.sketches.bitarray import BitArray


class FreeBS(BatchUpdatable, CardinalityEstimator):
    """Parameter-free bit-sharing estimator over a shared ``M``-bit array.

    Parameters
    ----------
    memory_bits:
        Total number of shared bits ``M``.
    seed:
        Seed of the pair hash ``h*``; runs with different seeds are
        independent repetitions.
    """

    name = "FreeBS"

    def __init__(self, memory_bits: int, seed: int = 0) -> None:
        if memory_bits <= 0:
            raise ValueError("memory_bits must be positive")
        self.M = memory_bits
        self.seed = seed
        self._bits = BitArray(memory_bits)
        self._estimates: dict[object, float] = {}
        self._pairs_processed = 0
        self._pairs_sampled = 0

    # -- streaming API --------------------------------------------------------

    def update(self, user: object, item: object) -> float:
        """Process one (user, item) pair in O(1); return the user's estimate."""
        self._pairs_processed += 1
        zero_bits_before = self._bits.zeros
        index = hash_pair(user, item, seed=self.seed) % self.M
        changed = self._bits.set_bit(index)
        if changed:
            # q_B(t) = fraction of zero bits before this update.
            q = zero_bits_before / self.M
            increment = 1.0 / q
            self._estimates[user] = self._estimates.get(user, 0.0) + increment
            self._pairs_sampled += 1
        elif user not in self._estimates:
            # Make sure every observed user is reported, even if all its pairs
            # were discarded (possible for tiny users late in a full array).
            self._estimates[user] = 0.0
        return self._estimates[user]

    def update_encoded(self, batch: EncodedBatch) -> None:
        """Vectorised engine path: process a whole encoded batch at once.

        Bit-identical to feeding the batch pair-by-pair through
        :meth:`update`: change events are detected with one vectorised pass,
        ``q_B``'s trajectory is reconstructed from the batch-start zero count
        (it drops by exactly one zero bit per event), and each increment is
        computed with the same ``1 / (zeros / M)`` expression — same
        floating-point roundings — before being attributed to the event's
        user in arrival order.
        """
        count = len(batch)
        if count == 0:
            return
        self._pairs_processed += count
        indices = (
            splitmix64_array(batch.pair_keys() ^ seed_mix(self.seed)) % np.uint64(self.M)
        ).astype(np.int64)
        events = bit_change_events(indices, ~self._bits.get_bits(indices))

        for user in batch.users:
            self._estimates.setdefault(user, 0.0)
        if events.size == 0:
            return

        zeros_before = self._bits.zeros - np.arange(events.size)
        increments = 1.0 / (zeros_before / self.M)
        event_codes = batch.user_codes[events]
        users = batch.users
        estimates = self._estimates
        for code, increment in zip(event_codes.tolist(), increments.tolist()):
            user = users[code]
            estimates[user] = estimates.get(user, 0.0) + increment

        self._bits.set_many(indices[events])
        self._pairs_sampled += int(events.size)

    def estimate(self, user: object) -> float:
        """Return the current estimate of ``user`` (0.0 for unseen users)."""
        return self._estimates.get(user, 0.0)

    def estimate_many(self, users):
        """Batch estimates in input order, served from the running HT sums."""
        from repro.engine.query import gather_cached_estimates

        return gather_cached_estimates(self._estimates, users)

    def estimates(self) -> dict[object, float]:
        """Return the current estimate of every observed user."""
        return dict(self._estimates)

    def memory_bits(self) -> int:
        """Accounted memory of the shared bit array."""
        return self._bits.memory_bits()

    # -- introspection --------------------------------------------------------

    @property
    def fill_fraction(self) -> float:
        """Fraction of shared bits already set to one."""
        return 1.0 - self._bits.zero_fraction

    @property
    def change_probability(self) -> float:
        """Current ``q_B``: probability a new pair changes the array."""
        return self._bits.zero_fraction

    @property
    def pairs_processed(self) -> int:
        """Total number of pairs seen (including duplicates)."""
        return self._pairs_processed

    @property
    def pairs_sampled(self) -> int:
        """Number of pairs that flipped a bit (i.e. were 'sampled')."""
        return self._pairs_sampled

    @property
    def max_estimate(self) -> float:
        """Upper end of the usable estimation range, ``M ln M``."""
        import math

        return self.M * math.log(self.M)

    def total_cardinality_estimate(self) -> float:
        """Estimate of the total number of distinct pairs, ``-M ln(U/M)``.

        This is simply the LPC estimator applied to the shared array; it is
        used by the super-spreader detector to turn the relative threshold
        ``Delta`` into an absolute cardinality threshold without outside help.
        """
        import math

        zeros = self._bits.zeros
        if zeros == 0:
            return self.max_estimate
        return -self.M * math.log(zeros / self.M)
