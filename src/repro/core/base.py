"""Common streaming interface shared by every per-user cardinality estimator.

The paper compares six methods (FreeBS, FreeRS, CSE, vHLL, per-user LPC,
per-user HLL++) on exactly the same task: observe a stream of (user, item)
pairs and be able to report, at any time, an estimate of every user's
cardinality.  :class:`CardinalityEstimator` captures that contract so the
experiment harness, the super-spreader detector and the benchmarks can treat
all six methods uniformly.

Implementations must provide:

``update(user, item)``
    Process one (possibly duplicate) user-item pair and return the user's
    *current* cardinality estimate.  This is the anytime-available estimate
    the paper emphasises; for the non-streaming baselines (CSE, vHLL, LPC,
    HLL++) the estimate is recomputed for the arriving user only, mirroring
    the per-user counter trick described in Section V-B of the paper.

``estimate(user)``
    Current estimate for one user (0.0 for never-seen users).

``estimates()``
    Dict of estimates for every observed user.

``memory_bits()``
    Accounted memory of the shared sketch structures (per-user counters are
    excluded, as in the paper's comparison).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

UserItemPair = tuple[object, object]


@dataclass
class EstimatorState:
    """Lightweight snapshot of an estimator's progress through a stream."""

    pairs_processed: int = 0
    distinct_pairs_estimate: float = 0.0
    users_tracked: int = 0
    extra: dict[str, float] = field(default_factory=dict)


class CardinalityEstimator(ABC):
    """Abstract base class for streaming per-user cardinality estimators."""

    #: Human-readable name used in reports, tables and plots.
    name: str = "estimator"

    @abstractmethod
    def update(self, user: object, item: object) -> float:
        """Process one (user, item) pair; return the user's current estimate."""

    @abstractmethod
    def estimate(self, user: object) -> float:
        """Return the current cardinality estimate of ``user`` (0.0 if unseen)."""

    @abstractmethod
    def estimates(self) -> dict[object, float]:
        """Return a mapping of every observed user to its current estimate."""

    def estimate_many(self, users: Sequence[object]) -> list[float]:
        """Estimates for many users in input order (0.0 for unseen users).

        Bit-identical to ``[self.estimate(user) for user in users]`` — the
        query-engine contract asserted by the test-suite.  Implementations
        override this with a vectorised path; the default is the scalar loop.
        """
        return [self.estimate(user) for user in users]

    @abstractmethod
    def memory_bits(self) -> int:
        """Return the accounted memory of the shared sketch in bits."""

    # -- conveniences shared by all implementations ---------------------------

    def process(
        self,
        stream: Iterable[UserItemPair],
        chunk_size: int | None = None,
    ) -> CardinalityEstimator:
        """Consume an entire stream of (user, item) pairs; return ``self``.

        Batch-capable estimators (everything carrying the engine's
        :class:`~repro.engine.base.BatchUpdatable` mixin — all six compared
        methods) consume the stream in vectorised chunks of ``chunk_size``
        pairs; the result is bit-identical to the scalar loop, just faster.
        Estimators without a batch path fall back to pair-by-pair updates.
        """
        from repro.engine.base import process_stream

        return process_stream(self, stream, chunk_size=chunk_size)

    def process_with_snapshots(
        self,
        stream: Iterable[UserItemPair],
        every: int,
    ) -> Iterator[tuple[int, dict[object, float]]]:
        """Yield ``(t, estimates)`` snapshots every ``every`` processed pairs.

        This powers the "over time" experiments (Figure 6): detection quality
        is evaluated on the snapshot estimates, not only at stream end.
        """
        if every <= 0:
            raise ValueError("every must be positive")
        count = 0
        for user, item in stream:
            self.update(user, item)
            count += 1
            if count % every == 0:
                yield count, self.estimates()
        if count % every != 0:
            yield count, self.estimates()

    def state(self) -> EstimatorState:
        """Return a coarse snapshot of progress (overridden where richer info exists)."""
        current = self.estimates()
        return EstimatorState(
            pairs_processed=-1,
            distinct_pairs_estimate=float(sum(current.values())),
            users_tracked=len(current),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(memory_bits={self.memory_bits()})"
