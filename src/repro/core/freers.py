"""FreeRS — parameter-free register sharing (paper Algorithm 2).

A single array of ``M`` HLL registers is shared by *all* users.  Every
arriving (user, item) pair ``e`` is hashed to a register ``h*(e)`` and a
Geometric(1/2) rank ``rho*(e)``.  If the rank does not exceed the register the
pair is discarded; otherwise the register is raised and the arriving user's
running estimate is increased by ``1 / q_R(t)`` where

    q_R(t) = (sum_j 2^-R[j]) / M

is the probability that a brand-new pair would change some register at time
``t``.  Theorem 2 of the paper shows the estimator is unbiased with variance
``sum_i E[1/q_R(i)] - n_s``.

Compared with FreeBS, FreeRS trades a slightly higher per-update cost (one
extra rank computation) and a coarser early-stream sampling probability for a
much larger estimation range (``~2^(2^w)`` with ``w``-bit registers), which is
why the paper finds FreeBS better for users that appear early / have small
cardinalities and FreeRS better for heavy users (Section IV-C).
"""

from __future__ import annotations


import numpy as np

from repro.core.base import CardinalityEstimator
from repro.engine.base import BatchUpdatable
from repro.engine.encoding import EncodedBatch, seed_mix
from repro.engine.kernels import register_change_events
from repro.hashing import geometric_rank, hash_pair, splitmix64, splitmix64_array
from repro.hashing.geometric import geometric_rank_array
from repro.sketches.registers import RegisterArray


class FreeRS(BatchUpdatable, CardinalityEstimator):
    """Parameter-free register-sharing estimator over ``M`` shared registers.

    Parameters
    ----------
    registers:
        Number of shared registers ``M``.
    register_width:
        Width of each register in bits (the paper uses 5).
    seed:
        Seed of the pair hash; runs with different seeds are independent.
    """

    name = "FreeRS"

    def __init__(self, registers: int, register_width: int = 5, seed: int = 0) -> None:
        if registers <= 0:
            raise ValueError("registers must be positive")
        self.M = registers
        self.seed = seed
        self._registers = RegisterArray(registers, width=register_width)
        self._estimates: dict[object, float] = {}
        self._pairs_processed = 0
        self._pairs_sampled = 0

    # -- streaming API --------------------------------------------------------

    def update(self, user: object, item: object) -> float:
        """Process one (user, item) pair in O(1); return the user's estimate."""
        self._pairs_processed += 1
        hash_value = hash_pair(user, item, seed=self.seed)
        index = hash_value % self.M
        # Derive the rank from an independent remix of the pair hash so that
        # the register choice and the rank are (approximately) independent.
        rank = geometric_rank(splitmix64(hash_value), max_rank=self._registers.max_value)
        q_before = self._registers.harmonic_sum / self.M
        changed = self._registers.update(index, rank)
        if changed:
            increment = 1.0 / q_before
            self._estimates[user] = self._estimates.get(user, 0.0) + increment
            self._pairs_sampled += 1
        elif user not in self._estimates:
            self._estimates[user] = 0.0
        return self._estimates[user]

    def update_encoded(self, batch: EncodedBatch) -> None:
        """Vectorised engine path: process a whole encoded batch at once.

        Bit-identical to the scalar loop: hashing, register choice and rank
        derivation are vectorised, change events are found with the shared
        per-register prefix-maximum kernel, and the (rare) events themselves
        are replayed sequentially through :meth:`RegisterArray.update` so the
        incrementally-maintained harmonic sum — and therefore every
        ``1 / q_R`` increment — accumulates in exactly the scalar order.
        """
        count = len(batch)
        if count == 0:
            return
        self._pairs_processed += count
        hashes = splitmix64_array(batch.pair_keys() ^ seed_mix(self.seed))
        indices = (hashes % np.uint64(self.M)).astype(np.int64)
        ranks = geometric_rank_array(
            splitmix64_array(hashes), max_rank=self._registers.max_value
        )
        positions, event_registers, _, event_ranks = register_change_events(
            indices, ranks, self._registers.get_many(indices)
        )

        for user in batch.users:
            self._estimates.setdefault(user, 0.0)
        if positions.size == 0:
            return

        harmonic_before_start = self._registers.harmonic_sum
        harmonic_trajectory, _ = self._registers.apply_max_updates(
            event_registers, event_ranks
        )
        harmonic_before = [harmonic_before_start] + harmonic_trajectory[:-1].tolist()

        users = batch.users
        codes = batch.user_codes.tolist()
        estimates = self._estimates
        M = self.M
        for position, harmonic in zip(positions.tolist(), harmonic_before):
            q_before = harmonic / M
            user = users[codes[position]]
            estimates[user] = estimates.get(user, 0.0) + 1.0 / q_before
        self._pairs_sampled += int(positions.size)

    def estimate(self, user: object) -> float:
        """Return the current estimate of ``user`` (0.0 for unseen users)."""
        return self._estimates.get(user, 0.0)

    def estimate_many(self, users):
        """Batch estimates in input order, served from the running HT sums."""
        from repro.engine.query import gather_cached_estimates

        return gather_cached_estimates(self._estimates, users)

    def estimates(self) -> dict[object, float]:
        """Return the current estimate of every observed user."""
        return dict(self._estimates)

    def memory_bits(self) -> int:
        """Accounted memory of the shared register array."""
        return self._registers.memory_bits()

    # -- introspection --------------------------------------------------------

    @property
    def change_probability(self) -> float:
        """Current ``q_R``: probability a new pair changes some register."""
        return self._registers.harmonic_sum / self.M

    @property
    def pairs_processed(self) -> int:
        """Total number of pairs seen (including duplicates)."""
        return self._pairs_processed

    @property
    def pairs_sampled(self) -> int:
        """Number of pairs that raised a register (i.e. were 'sampled')."""
        return self._pairs_sampled

    def total_cardinality_estimate(self) -> float:
        """HLL-style estimate of the total number of distinct pairs.

        Applies the standard HLL estimator (with small-range linear counting)
        to the shared register array; used by the super-spreader detector to
        resolve the relative threshold ``Delta`` online.
        """
        import math

        from repro.sketches.hll import alpha_m

        raw = alpha_m(self.M) * self.M * self.M / self._registers.harmonic_sum
        if raw < 2.5 * self.M and self._registers.zeros > 0:
            return self.M * math.log(self.M / self._registers.zeros)
        return raw
