"""Complementary CDFs of user cardinalities (paper Figure 2).

Figure 2 of the paper shows, for every dataset, the fraction of users whose
cardinality is at least ``n`` as a function of ``n`` on log-log axes; all six
curves are approximately straight lines (power-law tails).  The functions
here compute that curve from exact per-user cardinalities and evaluate it at
logarithmically spaced points so the benchmark can print a compact series.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


import numpy as np

from repro.streams.stream import GraphStream


def ccdf(cardinalities: Mapping[object, int] | Sequence[int]) -> list[tuple[int, float]]:
    """Return the CCDF of a cardinality collection as ``(n, P(N >= n))`` pairs.

    The returned points are the distinct observed cardinalities in increasing
    order, which is the exact empirical CCDF.
    """
    if isinstance(cardinalities, Mapping):
        values = np.array(list(cardinalities.values()), dtype=np.int64)
    else:
        values = np.array(list(cardinalities), dtype=np.int64)
    if values.size == 0:
        return []
    values = np.sort(values)
    total = values.size
    points: list[tuple[int, float]] = []
    distinct, first_index = np.unique(values, return_index=True)
    for value, index in zip(distinct, first_index):
        points.append((int(value), float((total - index) / total)))
    return points


def ccdf_at(
    cardinalities: Mapping[object, int] | Sequence[int], thresholds: Sequence[int]
) -> dict[int, float]:
    """Evaluate the CCDF at the given thresholds (``P(N >= threshold)``)."""
    if isinstance(cardinalities, Mapping):
        values = np.array(list(cardinalities.values()), dtype=np.int64)
    else:
        values = np.array(list(cardinalities), dtype=np.int64)
    results: dict[int, float] = {}
    total = values.size
    for threshold in thresholds:
        if total == 0:
            results[int(threshold)] = 0.0
        else:
            results[int(threshold)] = float(np.count_nonzero(values >= threshold) / total)
    return results


def logarithmic_thresholds(max_value: int, points_per_decade: int = 3) -> list[int]:
    """Return logarithmically spaced integer thresholds from 1 to ``max_value``."""
    if max_value < 1:
        return [1]
    thresholds: list[int] = []
    exponent = 0.0
    while 10**exponent <= max_value:
        value = int(round(10**exponent))
        if not thresholds or value > thresholds[-1]:
            thresholds.append(value)
        exponent += 1.0 / points_per_decade
    if thresholds[-1] != max_value:
        thresholds.append(max_value)
    return thresholds


def ccdf_from_stream(stream: GraphStream, points_per_decade: int = 3) -> list[tuple[int, float]]:
    """Compute a compact CCDF series (log-spaced thresholds) for a stream."""
    cardinalities = stream.cardinalities()
    if not cardinalities:
        return []
    thresholds = logarithmic_thresholds(max(cardinalities.values()), points_per_decade)
    evaluated = ccdf_at(cardinalities, thresholds)
    return [(threshold, evaluated[threshold]) for threshold in thresholds]
