"""Metrics, analytic error models and distribution tools used by the evaluation.

* :mod:`repro.analysis.metrics` — the paper's accuracy metrics (RSE per
  cardinality, aggregate error summaries, scatter summaries).
* :mod:`repro.analysis.estimator_math` — the combinatorial quantities behind
  the estimators (``alpha_m``, Stirling occupancy laws, ``E[1/q]``
  approximations from Theorems 1 and 2).
* :mod:`repro.analysis.variance` — closed-form variance/bias models of every
  method (LPC, HLL, CSE, vHLL, FreeBS, FreeRS) used to cross-check the
  empirical errors.
* :mod:`repro.analysis.ccdf` — complementary CDFs of user cardinalities
  (paper Figure 2).
"""

from repro.analysis.metrics import (
    ErrorSummary,
    aggregate_error,
    mean_absolute_relative_error,
    relative_standard_error,
    rse_by_cardinality,
    rse_curve,
    scatter_summary,
)
from repro.analysis.estimator_math import (
    expected_inverse_q_bits,
    expected_inverse_q_registers,
    occupancy_distribution,
    stirling2,
)
from repro.analysis.variance import (
    cse_variance,
    freebs_variance_bound,
    freers_variance_bound,
    hll_relative_error,
    lpc_variance,
    vhll_variance,
)
from repro.analysis.ccdf import ccdf, ccdf_from_stream

__all__ = [
    "ErrorSummary",
    "relative_standard_error",
    "mean_absolute_relative_error",
    "rse_by_cardinality",
    "rse_curve",
    "aggregate_error",
    "scatter_summary",
    "stirling2",
    "occupancy_distribution",
    "expected_inverse_q_bits",
    "expected_inverse_q_registers",
    "lpc_variance",
    "hll_relative_error",
    "cse_variance",
    "vhll_variance",
    "freebs_variance_bound",
    "freers_variance_bound",
    "ccdf",
    "ccdf_from_stream",
]
