"""Accuracy metrics used in the paper's evaluation (Section V-C).

The central metric is the *relative standard error* at a given true
cardinality ``n``:

    RSE(n) = (1/n) * sqrt( mean over users with cardinality n of (n_hat - n)^2 )

which the paper plots against ``n`` (Figure 5).  Because real cardinalities
rarely repeat exactly, :func:`rse_curve` also supports geometric bucketing so
that each point aggregates users with *similar* cardinalities, which is how
the figures are usually rendered.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ErrorSummary:
    """Aggregate error statistics of one estimator over one workload."""

    count: int
    mean_relative_error: float
    mean_absolute_relative_error: float
    rse: float
    max_relative_error: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dictionary (for reports/CSV)."""
        return {
            "count": float(self.count),
            "mean_relative_error": self.mean_relative_error,
            "mean_absolute_relative_error": self.mean_absolute_relative_error,
            "rse": self.rse,
            "max_relative_error": self.max_relative_error,
        }


def _paired_arrays(
    truth: Mapping[object, float], estimates: Mapping[object, float], minimum_cardinality: int
) -> tuple[np.ndarray, np.ndarray]:
    users = [user for user, true in truth.items() if true >= minimum_cardinality]
    true_values = np.array([truth[user] for user in users], dtype=np.float64)
    estimated = np.array([estimates.get(user, 0.0) for user in users], dtype=np.float64)
    return true_values, estimated


def relative_standard_error(
    truth: Mapping[object, float],
    estimates: Mapping[object, float],
    minimum_cardinality: int = 1,
) -> float:
    """RSE over all users with true cardinality >= ``minimum_cardinality``."""
    true_values, estimated = _paired_arrays(truth, estimates, minimum_cardinality)
    if true_values.size == 0:
        return 0.0
    relative = (estimated - true_values) / true_values
    return float(np.sqrt(np.mean(relative**2)))


def mean_absolute_relative_error(
    truth: Mapping[object, float],
    estimates: Mapping[object, float],
    minimum_cardinality: int = 1,
) -> float:
    """Mean of |n_hat - n| / n over users with cardinality >= the minimum."""
    true_values, estimated = _paired_arrays(truth, estimates, minimum_cardinality)
    if true_values.size == 0:
        return 0.0
    return float(np.mean(np.abs(estimated - true_values) / true_values))


def aggregate_error(
    truth: Mapping[object, float],
    estimates: Mapping[object, float],
    minimum_cardinality: int = 1,
) -> ErrorSummary:
    """Return the full :class:`ErrorSummary` for one estimator."""
    true_values, estimated = _paired_arrays(truth, estimates, minimum_cardinality)
    if true_values.size == 0:
        return ErrorSummary(0, 0.0, 0.0, 0.0, 0.0)
    relative = (estimated - true_values) / true_values
    return ErrorSummary(
        count=int(true_values.size),
        mean_relative_error=float(np.mean(relative)),
        mean_absolute_relative_error=float(np.mean(np.abs(relative))),
        rse=float(np.sqrt(np.mean(relative**2))),
        max_relative_error=float(np.max(np.abs(relative))),
    )


def rse_by_cardinality(
    truth: Mapping[object, float],
    estimates: Mapping[object, float],
) -> dict[int, float]:
    """RSE computed separately for every exact cardinality value.

    This is the paper's definition of ``RSE(n)`` verbatim: group users by
    exact true cardinality and compute the root-mean-square relative error
    inside each group.
    """
    groups: dict[int, list[float]] = {}
    for user, true_value in truth.items():
        n = int(true_value)
        if n <= 0:
            continue
        estimate = estimates.get(user, 0.0)
        groups.setdefault(n, []).append((estimate - n) / n)
    return {
        n: float(np.sqrt(np.mean(np.square(errors)))) for n, errors in sorted(groups.items())
    }


def rse_curve(
    truth: Mapping[object, float],
    estimates: Mapping[object, float],
    buckets_per_decade: int = 4,
    minimum_cardinality: int = 1,
) -> list[tuple[float, float, int]]:
    """RSE aggregated in geometric cardinality buckets.

    Returns a list of ``(bucket_center, rse, user_count)`` tuples, which is
    the series plotted in Figure 5 for each method.
    """
    if buckets_per_decade <= 0:
        raise ValueError("buckets_per_decade must be positive")
    groups: dict[int, list[float]] = {}
    for user, true_value in truth.items():
        n = float(true_value)
        if n < minimum_cardinality:
            continue
        bucket = int(math.floor(math.log10(n) * buckets_per_decade)) if n > 0 else 0
        estimate = estimates.get(user, 0.0)
        groups.setdefault(bucket, []).append((estimate - n) / n)
    curve: list[tuple[float, float, int]] = []
    for bucket, errors in sorted(groups.items()):
        center = 10 ** ((bucket + 0.5) / buckets_per_decade)
        rse = float(np.sqrt(np.mean(np.square(errors))))
        curve.append((center, rse, len(errors)))
    return curve


def scatter_summary(
    truth: Mapping[object, float],
    estimates: Mapping[object, float],
    buckets_per_decade: int = 4,
) -> list[tuple[float, float, float, float]]:
    """Summarise an estimated-vs-actual scatter (Figure 4) per geometric bucket.

    Returns ``(bucket_center, mean_estimate, p10_estimate, p90_estimate)``
    rows: a compact textual stand-in for the paper's scatter plots that still
    shows bias (mean away from the diagonal) and spread (p10/p90 band).
    """
    groups: dict[int, list[float]] = {}
    for user, true_value in truth.items():
        n = float(true_value)
        if n <= 0:
            continue
        bucket = int(math.floor(math.log10(n) * buckets_per_decade))
        groups.setdefault(bucket, []).append(estimates.get(user, 0.0))
    rows: list[tuple[float, float, float, float]] = []
    for bucket, values in sorted(groups.items()):
        center = 10 ** ((bucket + 0.5) / buckets_per_decade)
        array = np.array(values, dtype=np.float64)
        rows.append(
            (
                center,
                float(np.mean(array)),
                float(np.percentile(array, 10)),
                float(np.percentile(array, 90)),
            )
        )
    return rows


def detection_confusion(
    true_positives: Iterable[object],
    detected: Iterable[object],
    population: int,
) -> tuple[float, float]:
    """Return (FNR, FPR) for a detection task.

    ``FNR`` is the fraction of true positives that were missed; ``FPR`` is the
    fraction of the whole population wrongly reported (the paper's Figure 6 /
    Table II definitions).
    """
    truth_set = set(true_positives)
    detected_set = set(detected)
    if truth_set:
        fnr = len(truth_set - detected_set) / len(truth_set)
    else:
        fnr = 0.0
    false_positives = len(detected_set - truth_set)
    fpr = false_positives / population if population > 0 else 0.0
    return fnr, fpr
