"""Combinatorial quantities behind the paper's estimators and theorems.

This module implements, exactly where feasible and with the paper's own
approximations otherwise:

* Stirling numbers of the second kind and the bit-occupancy distribution
  ``P(m0 = M - j | n)`` used in the proof of Theorem 1,
* the exact and approximate ``E[1/q_B]`` of Theorem 1 (bit sharing),
* the approximate ``E[1/q_R]`` of Theorem 2 (register sharing),
* helpers shared by the analytic variance models in
  :mod:`repro.analysis.variance`.

Exact formulas are only tractable for small ``M`` and ``n`` (they involve
sums over Stirling numbers); the test-suite uses them to validate the
approximations on small instances, and the experiment harness always uses
the approximations.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.sketches.hll import alpha_m


@lru_cache(maxsize=None)
def stirling2(n: int, k: int) -> int:
    """Stirling number of the second kind S(n, k) (exact integer arithmetic).

    S(n, k) counts the ways to partition ``n`` labelled elements into ``k``
    non-empty unlabelled blocks.  Computed with the standard recurrence
    ``S(n, k) = k S(n-1, k) + S(n-1, k-1)``.
    """
    if n < 0 or k < 0:
        raise ValueError("n and k must be non-negative")
    if n == 0 and k == 0:
        return 1
    if n == 0 or k == 0:
        return 0
    if k > n:
        return 0
    return k * stirling2(n - 1, k) + stirling2(n - 1, k - 1)


def occupancy_distribution(n: int, m: int) -> dict[int, float]:
    """Distribution of the number of occupied cells after ``n`` balls into ``m`` bins.

    Returns ``{j: P(exactly j occupied)}`` for ``j = 0..min(n, m)``, using
    ``P(j) = C(m, j) * j! * S(n, j) / m^n``.  This is the law of the number of
    set bits of FreeBS after ``n`` distinct pairs (paper, proof of Theorem 1).
    """
    if n < 0 or m <= 0:
        raise ValueError("n must be non-negative and m positive")
    if n == 0:
        return {0: 1.0}
    total = float(m) ** n
    distribution: dict[int, float] = {}
    for j in range(1, min(n, m) + 1):
        ways = math.comb(m, j) * math.factorial(j) * stirling2(n, j)
        distribution[j] = ways / total
    return distribution


def expected_inverse_q_bits_exact(n: int, m: int) -> float:
    """Exact ``E[1/q_B]`` after ``n`` distinct pairs in an ``m``-bit array.

    ``q_B = (m - occupied)/m``, so ``E[1/q_B] = sum_j P(occupied = j) * m/(m-j)``.
    Only defined while the array cannot be full (``n < m`` guarantees it);
    feasible for small instances only — O(n*m) Stirling evaluations.
    """
    if n >= m:
        raise ValueError("exact E[1/q_B] requires n < m (array must not fill)")
    distribution = occupancy_distribution(n, m)
    return sum(p * m / (m - j) for j, p in distribution.items())


def expected_inverse_q_bits(n: float, m: int) -> float:
    """Paper's approximation of ``E[1/q_B]`` (Theorem 1).

    ``E[1/q_B] ~= e^(n/M) * (1 + (e^(n/M) - n/M - 1)/M)``.
    """
    if m <= 0:
        raise ValueError("m must be positive")
    load = n / m
    return math.exp(load) * (1.0 + (math.exp(load) - load - 1.0) / m)


def expected_inverse_q_registers(n: float, m: int) -> float:
    """Paper's approximation of ``E[1/q_R]`` (Theorem 2).

    For ``n > 2.5 M`` the paper shows ``E[1/q_R] ~= n / (alpha_M * M)``
    (about ``1.386 n / M`` for large ``M``); below that load the register
    array still contains zero registers and behaves like a bitmap, so the
    bit-sharing approximation with ``m`` registers is used instead.
    """
    if m <= 0:
        raise ValueError("m must be positive")
    if n > 2.5 * m:
        return n / (alpha_m(m) * m)
    return expected_inverse_q_bits(n, m)


def harmonic_partial_sum(m: int) -> float:
    """``sum_{i=1..M} M/i``: the maximum value FreeBS's estimate can reach.

    The paper states the FreeBS estimation range is ``sum_{i=1..M} M/i ~ M ln M``.
    """
    if m <= 0:
        raise ValueError("m must be positive")
    return m * sum(1.0 / i for i in range(1, m + 1))


def geometric_register_distribution(n: int, width: int) -> list[float]:
    """Distribution of a single HLL register after ``n`` distinct elements.

    Returns ``[P(R = 0), P(R = 1), ..., P(R = max)]`` where
    ``P(R <= k) = (1 - 2^-k)^n`` and the register saturates at
    ``max = 2^width - 1``.  Used by the analytic FreeRS model and the tests.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if width <= 0:
        raise ValueError("width must be positive")
    max_value = (1 << width) - 1
    cdf = [(1.0 - 2.0 ** (-k)) ** n if k > 0 else (0.0 if n > 0 else 1.0) for k in range(max_value + 1)]
    # Saturation: P(R <= max) = 1 by construction.
    cdf[-1] = 1.0
    pmf = [cdf[0]] + [cdf[k] - cdf[k - 1] for k in range(1, max_value + 1)]
    return [max(0.0, p) for p in pmf]
