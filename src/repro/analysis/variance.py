"""Closed-form error models of every method compared in the paper.

These formulas come straight from Sections III and IV of the paper (and the
original LPC / HLL / CSE / vHLL papers it cites).  They serve two purposes:

* the test-suite checks that the *empirical* error of each implementation is
  within a constant factor of its analytic prediction on controlled
  workloads, which guards against silent estimator bugs;
* the ablation experiments report analytic-vs-empirical error side by side,
  reproducing the discussion of Section IV-C (when does bit sharing beat
  register sharing, and by how much).

All functions return a *variance* unless the name says otherwise; callers
convert to a relative standard error via ``sqrt(var)/n``.
"""

from __future__ import annotations

import math

from repro.analysis.estimator_math import (
    expected_inverse_q_bits,
    expected_inverse_q_registers,
)
from repro.sketches.hll import beta_m


def lpc_variance(n: float, m: int) -> float:
    """Variance of a private LPC sketch of ``m`` bits at true cardinality ``n``."""
    if m <= 0:
        raise ValueError("m must be positive")
    load = n / m
    return m * (math.exp(load) - load - 1.0)


def lpc_bias(n: float, m: int) -> float:
    """Bias of a private LPC sketch of ``m`` bits at true cardinality ``n``."""
    load = n / m
    return 0.5 * (math.exp(load) - load - 1.0)


def hll_relative_error(m: int) -> float:
    """Asymptotic relative standard error of HLL with ``m`` registers."""
    if m <= 0:
        raise ValueError("m must be positive")
    return beta_m(m) / math.sqrt(m)


def cse_variance(n_user: float, n_total: float, m: int, memory_bits: int) -> float:
    """Approximate variance of CSE for a user of cardinality ``n_user``.

    Follows the expression quoted in Section IV-C of the paper:
    ``Var ~= m (E[1/q] e^{n_s/m} - n_s/m - 1)`` with
    ``E[1/q] ~= e^{n_total/M}`` (the global fill of the shared array).
    """
    if m <= 0 or memory_bits <= 0:
        raise ValueError("m and memory_bits must be positive")
    expected_inverse_q = math.exp(n_total / memory_bits)
    return m * (expected_inverse_q * math.exp(n_user / m) - n_user / m - 1.0)


def vhll_variance(n_user: float, n_total: float, m: int, registers: int) -> float:
    """Approximate variance of vHLL for a user of cardinality ``n_user``.

    Expression from Section III-B.2 of the paper:
    ``Var ~= (M/(M-m))^2 [ (1.04^2/m)(n_s + (n-n_s) m/M)^2
             + (n-n_s)(m/M)(1-m/M) + (1.04 n m)^2 / M^3 ]``.
    """
    if m <= 0 or registers <= 0:
        raise ValueError("m and registers must be positive")
    if m >= registers:
        raise ValueError("m must be smaller than the number of registers")
    noise = (n_total - n_user) * m / registers
    scale = (registers / (registers - m)) ** 2
    term_sampling = (1.04**2 / m) * (n_user + noise) ** 2
    term_noise = (n_total - n_user) * (m / registers) * (1.0 - m / registers)
    term_global = (1.04 * n_total * m) ** 2 / registers**3
    return scale * (term_sampling + term_noise + term_global)


def freebs_variance_bound(n_user: float, n_total: float, memory_bits: int) -> float:
    """Theorem 1 upper bound: ``Var <= n_s (E[1/q_B(t)] - 1)``.

    ``E[1/q_B(t)]`` is evaluated at the end-of-stream load ``n_total``, which
    is the worst case over the user's update times.
    """
    if memory_bits <= 0:
        raise ValueError("memory_bits must be positive")
    return n_user * (expected_inverse_q_bits(n_total, memory_bits) - 1.0)


def freers_variance_bound(n_user: float, n_total: float, registers: int) -> float:
    """Theorem 2 upper bound: ``Var <= n_s (E[1/q_R(t)] - 1)``."""
    if registers <= 0:
        raise ValueError("registers must be positive")
    return n_user * (expected_inverse_q_registers(n_total, registers) - 1.0)


def freebs_rse_bound(n_user: float, n_total: float, memory_bits: int) -> float:
    """Relative standard error bound of FreeBS (``sqrt(Var)/n``)."""
    if n_user <= 0:
        return 0.0
    return math.sqrt(freebs_variance_bound(n_user, n_total, memory_bits)) / n_user


def freers_rse_bound(n_user: float, n_total: float, registers: int) -> float:
    """Relative standard error bound of FreeRS (``sqrt(Var)/n``)."""
    if n_user <= 0:
        return 0.0
    return math.sqrt(freers_variance_bound(n_user, n_total, registers)) / n_user
