"""Columnar per-user state for the virtual-sketch methods (CSE, vHLL).

One :class:`UserArena` replaces two Python dicts of boxed objects per
estimator — ``{user: float}`` cached estimates and ``{user: np.ndarray(m)}``
sketch-position rows — with numpy columns addressed by the dense codes of a
:class:`~repro.state.interner.UserInterner`:

=================  =========  ====================================================
column             dtype      meaning
=================  =========  ====================================================
``estimate``       float64    latest cached estimate (the ``estimate()`` value)
``has_estimate``   bool       whether the estimate was ever published
``fold``           uint64     64-bit key fold (interner-owned; positions seed)
``positions``      int64      ``(capacity, m)`` contiguous physical-cell rows
``positions_ok``   bool       whether a user's dense positions row is materialised
=================  =========  ====================================================

Columns grow by amortised doubling; a grow copies the columns but never
changes a code, so references held by query kernels stay valid.

Positions policies
------------------

``dense`` keeps the contiguous ``(capacity, m)`` int64 block — row gathers
are pure ``np.take``, the fastest query path.  ``fold`` stores *nothing* per
user beyond the 8-byte fold and recomputes rows on demand through
``HashFamily.positions_from_hashes`` (bit-identical to the cached rows by
the hashing contract) — 8 bytes/user instead of ``8*m``, the memory-scale
mode.  ``auto`` (the default) starts dense and drops the block once the
population crosses ``dense_limit`` users, trading the recompute cost for a
~``m``-fold smaller footprint exactly when footprint starts to matter.

The dict-shaped views (:class:`EstimatesView`, :class:`PositionsView`) keep
the estimators' ``_estimates`` / ``_positions_cache`` attributes source
compatible: iteration order is intern order filtered by presence, which
equals the insertion order the dicts used to have.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterator, Mapping, MutableMapping, Sequence
from typing import Any, Protocol

import numpy as np

from repro import obs
from repro.state.interner import UserInterner

#: Default population at which an ``auto`` arena drops its dense positions
#: block.  Chosen above the service-scale query benchmarks (100k users stay
#: on the dense fast path) but far below the multi-million-user populations
#: the fold mode exists for.
DENSE_POSITIONS_LIMIT = 1 << 17

#: Approximate per-user overhead of the interner's dict slot + key object,
#: used for the cheap resident-bytes gauge (the exact figure needs an O(n)
#: ``sys.getsizeof`` sweep — see :meth:`UserArena.resident_bytes`).
_APPROX_KEY_OVERHEAD = 64


class HashFamily(Protocol):
    """The one hash-family operation the arena needs: fold rows -> positions."""

    def positions_from_hashes(self, folds: np.ndarray) -> np.ndarray: ...


def _retire_gauges(owner: str, reported: list[int]) -> None:
    """Finalizer: subtract a dead arena's contribution from the process gauges."""
    users, nbytes = reported
    if users:
        obs.gauge("state.arena.users", owner=owner).add(-users)
    if nbytes:
        obs.gauge("state.arena.bytes", owner=owner).add(-nbytes)


class UserArena:
    """Arena-style columnar store of per-user sketch state."""

    def __init__(
        self,
        m: int,
        family: HashFamily | None = None,
        positions: str = "auto",
        dense_limit: int = DENSE_POSITIONS_LIMIT,
        owner: str = "arena",
        initial_capacity: int = 64,
    ) -> None:
        if positions not in ("dense", "fold", "auto"):
            raise ValueError("positions must be 'dense', 'fold' or 'auto'")
        if m <= 0:
            raise ValueError("m must be positive")
        if family is None:
            raise ValueError("an arena needs the estimator's hash family")
        self._interner = UserInterner(track_folds=True, initial_capacity=initial_capacity)
        self._m = int(m)
        self._family = family
        self._owner = owner
        capacity = max(1, initial_capacity)
        self._estimate = np.zeros(capacity, dtype=np.float64)
        self._has_estimate = np.zeros(capacity, dtype=np.bool_)
        self._estimate_count = 0
        self._positions_policy = positions
        self._dense_limit: int | None = (
            int(dense_limit) if positions == "auto" else None
        )
        if positions == "fold":
            self._positions: np.ndarray | None = None
            self._positions_ok: np.ndarray | None = None
        else:
            self._positions = np.zeros((capacity, self._m), dtype=np.int64)
            self._positions_ok = np.zeros(capacity, dtype=np.bool_)
        self._growth_events = 0
        self.estimates = EstimatesView(self)
        self.positions_cache = PositionsView(self)
        #: [users, bytes] reported to the process gauges so far; mutated in
        #: place so the GC finalizer sees the final figures.
        self._reported = [0, 0]
        self._finalizer = weakref.finalize(self, _retire_gauges, owner, self._reported)

    # -- pickling (weakref finalizers are not picklable) -------------------------

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_finalizer"]
        state["_reported"] = [0, 0]  # gauge deltas belong to the source process
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._finalizer = weakref.finalize(
            self, _retire_gauges, self._owner, self._reported
        )

    def __deepcopy__(self, memo: dict[int, Any]) -> UserArena:
        import copy

        clone = object.__new__(UserArena)
        memo[id(self)] = clone
        state: dict[str, Any] = {
            key: copy.deepcopy(value, memo)
            for key, value in self.__dict__.items()
            if key != "_finalizer"
        }
        state["_reported"] = [0, 0]
        clone.__dict__.update(state)
        clone.estimates._arena = clone
        clone.positions_cache._arena = clone
        clone._finalizer = weakref.finalize(
            clone, _retire_gauges, clone._owner, clone._reported
        )
        return clone

    # -- sizing -------------------------------------------------------------------

    @property
    def n_users(self) -> int:
        return len(self._interner)

    @property
    def m(self) -> int:
        return self._m

    @property
    def positions_mode(self) -> str:
        """The live positions representation: ``dense`` or ``fold``."""
        return "dense" if self._positions is not None else "fold"

    @property
    def growth_events(self) -> int:
        return self._growth_events

    def users(self) -> list[object]:
        """All tracked users in intern (first-seen) order."""
        return self._interner.users()

    def _ensure_capacity(self, code: int) -> None:
        capacity = self._estimate.size
        if code < capacity:
            return
        new_capacity = capacity
        while new_capacity <= code:
            new_capacity *= 2
        grown = np.zeros(new_capacity, dtype=np.float64)
        grown[:capacity] = self._estimate
        self._estimate = grown
        grown_has = np.zeros(new_capacity, dtype=np.bool_)
        grown_has[:capacity] = self._has_estimate
        self._has_estimate = grown_has
        if self._positions is not None:
            assert self._positions_ok is not None
            if self._dense_limit is not None and new_capacity > self._dense_limit:
                # auto policy: the population outgrew the dense block — drop
                # it and recompute rows from folds from here on.
                self._positions = None
                self._positions_ok = None
                obs.counter(
                    "state.arena.dense_to_fold", owner=self._owner
                ).add()
            else:
                grown_pos = np.zeros((new_capacity, self._m), dtype=np.int64)
                grown_pos[:capacity] = self._positions
                self._positions = grown_pos
                grown_ok = np.zeros(new_capacity, dtype=np.bool_)
                grown_ok[:capacity] = self._positions_ok
                self._positions_ok = grown_ok
        self._growth_events += 1
        obs.counter("state.arena.growth_events", owner=self._owner).add()
        self._report_bytes()

    # -- interning ----------------------------------------------------------------

    def intern(self, user: object, fold: int | None = None) -> int:
        before = len(self._interner)
        code = self._interner.intern(user, fold)
        if code >= before:
            self._ensure_capacity(code)
            self._report_users(1)
        return code

    def intern_many(
        self, users: Sequence[object], folds: np.ndarray | None = None
    ) -> np.ndarray:
        before = len(self._interner)
        codes = self._interner.intern_many(users, folds)
        added = len(self._interner) - before
        if added:
            self._ensure_capacity(len(self._interner) - 1)
            self._report_users(added)
        return codes

    def lookup(self, user: object) -> int:
        return self._interner.lookup(user)

    def lookup_many(self, users: Sequence[object]) -> np.ndarray:
        return self._interner.lookup_many(users)

    def contains(self, user: object) -> bool:
        return user in self._interner

    # -- positions ----------------------------------------------------------------

    def positions_row(self, code: int) -> np.ndarray:
        """One user's ``m`` physical positions (scalar update/estimate path)."""
        folds = self._interner._folds
        assert folds is not None
        fold = folds[code : code + 1]
        if self._positions is None:
            return self._family.positions_from_hashes(fold)[0]
        assert self._positions_ok is not None
        if not self._positions_ok[code]:
            self._positions[code] = self._family.positions_from_hashes(fold)[0]
            self._positions_ok[code] = True
        return self._positions[code]

    def positions_rows(self, codes: np.ndarray) -> np.ndarray:
        """``(len(codes), m)`` positions matrix; one gather, no Python loop.

        Dense mode materialises any missing rows first (one vectorised
        family pass over the missing folds — bit-identical to
        ``family.positions`` per key); fold mode recomputes every requested
        row the same way without storing it.
        """
        if self._positions is None:
            return self._family.positions_from_hashes(self._interner.folds(codes))
        assert self._positions_ok is not None
        ok = self._positions_ok[codes]
        if not ok.all():
            missing = codes[~ok]
            self._positions[missing] = self._family.positions_from_hashes(
                self._interner.folds(missing)
            )
            self._positions_ok[missing] = True
        return self._positions[codes]

    def positions_cached_count(self) -> int:
        """Number of materialised dense rows (0 in fold mode)."""
        if self._positions_ok is None:
            return 0
        return int(np.count_nonzero(self._positions_ok[: self.n_users]))

    # -- estimates ----------------------------------------------------------------

    def set_estimate(self, code: int, value: float) -> None:
        if not self._has_estimate[code]:
            self._has_estimate[code] = True
            self._estimate_count += 1
        self._estimate[code] = value

    def set_estimates(self, codes: np.ndarray, values: np.ndarray) -> None:
        """Column write for a batch of (unique) codes."""
        fresh = int(np.count_nonzero(~self._has_estimate[codes]))
        if fresh:
            self._has_estimate[codes] = True
            self._estimate_count += fresh
        self._estimate[codes] = values

    def set_all_estimates(self, values: Sequence[float]) -> None:
        """Replace every tracked user's estimate, in intern order."""
        n = self.n_users
        self._estimate[:n] = np.asarray(values, dtype=np.float64)
        self._has_estimate[:n] = True
        self._estimate_count = n

    def load_estimates(self, mapping: Mapping[object, float]) -> None:
        """Adopt a ``{user: estimate}`` mapping (snapshot-restore seam).

        Users are interned in mapping order, so a restored estimator's
        first-seen order equals the order the snapshot was written in —
        exactly what assigning a dict to ``_estimates`` used to do.
        """
        self._has_estimate[: self.n_users] = False
        self._estimate_count = 0
        users = list(mapping)
        if not users:
            return
        # Dict keys are unique under the same equality the interner uses, so
        # the codes are unique: one column write adopts the whole mapping.
        codes = self.intern_many(users)
        self._estimate[codes] = np.fromiter(
            mapping.values(), dtype=np.float64, count=len(users)
        )
        self._has_estimate[codes] = True
        self._estimate_count = len(users)

    # -- accounting ----------------------------------------------------------------

    def _column_bytes(self) -> int:
        total = self._estimate.nbytes + self._has_estimate.nbytes
        interner_folds = self._interner._folds
        if interner_folds is not None:
            total += interner_folds.nbytes
        if self._positions is not None:
            assert self._positions_ok is not None
            total += self._positions.nbytes + self._positions_ok.nbytes
        return total

    def resident_bytes(self) -> int:
        """Measured resident footprint: columns + interner dict/list/keys."""
        return self._column_bytes() + self._interner.resident_bytes()

    def stats(self) -> dict[str, object]:
        return {
            "owner": self._owner,
            "users": self.n_users,
            "m": self._m,
            "positions_mode": self.positions_mode,
            "growth_events": self._growth_events,
            "column_bytes": self._column_bytes(),
            "resident_bytes": self.resident_bytes(),
        }

    def _report_users(self, added: int) -> None:
        self._reported[0] += added
        obs.gauge("state.arena.users", owner=self._owner).add(added)
        # Keep the bytes gauge roughly current between growths: the interner
        # side grows per key, the columns only at doubling events.
        self._reported[1] += added * _APPROX_KEY_OVERHEAD
        obs.gauge("state.arena.bytes", owner=self._owner).add(
            added * _APPROX_KEY_OVERHEAD
        )

    def _report_bytes(self) -> None:
        current = self._column_bytes() + self.n_users * _APPROX_KEY_OVERHEAD
        delta = current - self._reported[1]
        if delta:
            self._reported[1] = current
            obs.gauge("state.arena.bytes", owner=self._owner).add(delta)


class EstimatesView(MutableMapping):
    """Dict-shaped live view of the arena's estimate column.

    Implements the full ``MutableMapping`` protocol (so ``dict(view)``,
    ``view == {...}``, ``view.setdefault`` all behave) plus the vectorised
    gathers the query engine dispatches on.  Iteration order is intern order
    filtered by ``has_estimate`` — identical to the insertion order of the
    dict this view replaced on every estimator path (publish, batch publish,
    setdefault-merge, snapshot load).  The one divergence: re-publishing
    after ``del view[user]`` restores the user at its *original* position
    rather than the end — no estimator path deletes estimates, so nothing
    observes it (the monitor's score table, where deletion is real, tracks
    re-insert ranks properly).
    """

    __slots__ = ("_arena",)

    def __init__(self, arena: UserArena) -> None:
        self._arena = arena

    def __len__(self) -> int:
        return self._arena._estimate_count

    def __iter__(self) -> Iterator[object]:
        arena = self._arena
        has = arena._has_estimate
        for code, user in enumerate(arena._interner._keys):
            if has[code]:
                yield user

    def __contains__(self, user: object) -> bool:
        arena = self._arena
        code = arena._interner._codes.get(user)
        return code is not None and bool(arena._has_estimate[code])

    def __getitem__(self, user: object) -> float:
        arena = self._arena
        code = arena._interner._codes.get(user)
        if code is None or not arena._has_estimate[code]:
            raise KeyError(user)
        return float(arena._estimate[code])

    def get(self, user: object, default: Any = None) -> Any:
        arena = self._arena
        code = arena._interner._codes.get(user)
        if code is None or not arena._has_estimate[code]:
            return default
        return float(arena._estimate[code])

    def __setitem__(self, user: object, value: float) -> None:
        arena = self._arena
        arena.set_estimate(arena.intern(user), value)

    def setdefault(self, user: object, default: float = 0.0) -> float:
        arena = self._arena
        code = arena.intern(user)
        if not arena._has_estimate[code]:
            arena.set_estimate(code, default)
            return default
        return float(arena._estimate[code])

    def __delitem__(self, user: object) -> None:
        arena = self._arena
        code = arena._interner._codes.get(user)
        if code is None or not arena._has_estimate[code]:
            raise KeyError(user)
        arena._has_estimate[code] = False
        arena._estimate_count -= 1

    def items(self) -> Any:  # a lazy (user, estimate) generator, not an ItemsView
        arena = self._arena
        has = arena._has_estimate
        estimate = arena._estimate
        return (
            (user, float(estimate[code]))
            for code, user in enumerate(arena._interner._keys)
            if has[code]
        )

    def gather_default_zero(self, users: Sequence[object]) -> list[float]:
        """``[view.get(user, 0.0) for user in users]`` as one column gather."""
        arena = self._arena
        codes = arena.lookup_many(users)
        hit = codes >= 0
        safe = np.where(hit, codes, 0)
        values = np.where(
            hit & arena._has_estimate[safe], arena._estimate[safe], 0.0
        )
        return values.tolist()


class PositionsView:
    """Dict-shaped live view of the arena's positions block.

    Only the surface the estimators and merge helpers actually use:
    membership, truthiness (``len`` = materialised dense rows, so a freshly
    restored estimator's cache is falsy exactly like the empty dict was),
    ``get``/``__getitem__`` returning a row, and iteration over users with
    materialised rows.
    """

    __slots__ = ("_arena",)

    def __init__(self, arena: UserArena) -> None:
        self._arena = arena

    def __len__(self) -> int:
        return self._arena.positions_cached_count()

    def __bool__(self) -> bool:
        return len(self) > 0

    def __contains__(self, user: object) -> bool:
        arena = self._arena
        code = arena._interner._codes.get(user)
        if code is None:
            return False
        if arena._positions_ok is None:
            # Fold mode: every interned user's row is derivable on demand.
            return True
        return bool(arena._positions_ok[code])

    def __iter__(self) -> Iterator[object]:
        arena = self._arena
        ok = arena._positions_ok
        for code, user in enumerate(arena._interner._keys):
            if ok is None or ok[code]:
                yield user

    def get(self, user: object, default: np.ndarray | None = None) -> np.ndarray | None:
        arena = self._arena
        code = arena._interner._codes.get(user)
        if code is None:
            return default
        if arena._positions_ok is not None and not arena._positions_ok[code]:
            return default
        return arena.positions_row(code)

    def __getitem__(self, user: object) -> np.ndarray:
        row = self.get(user)
        if row is None:
            raise KeyError(user)
        return row

    def __setitem__(self, user: object, row: np.ndarray) -> None:
        arena = self._arena
        code = arena.intern(user)
        if arena._positions is not None:
            assert arena._positions_ok is not None
            arena._positions[code] = row
            arena._positions_ok[code] = True
