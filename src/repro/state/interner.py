"""Dense user-key interning: arbitrary hashable keys -> stable small ints.

Every columnar structure in :mod:`repro.state` addresses per-user data by a
dense integer *code* instead of a dict key.  The interner owns that mapping:

* codes are assigned sequentially at first sight, so **intern order equals
  dict insertion order** — the canonical first-seen order every ranking and
  tie-break in this repository is defined over;
* codes are permanent: a user never changes or loses its code (deletion is a
  column-level concern — a ``present`` flag — not an interner concern);
* key-type duality is preserved exactly as a Python dict would: ``7`` and
  ``"7"`` are distinct users, ``True`` and ``1`` collide (they are equal and
  hash equal), tuples and bytes are first-class keys.

For the virtual-sketch methods the interner also stores each key's 64-bit
fold (:func:`repro.hashing.fold_key`) in a flat ``uint64`` column, so a
user's sketch positions stay recomputable without the key object in hand —
``HashFamily.positions_from_hashes(fold)`` is bit-identical to
``HashFamily.positions(key)`` by the hashing layer's contract.

Pure-int key populations additionally get a sorted lookup index
(``np.searchsorted``) built lazily and invalidated on intern, which turns a
batch membership probe into one vectorised binary search instead of one dict
hop per user.
"""

from __future__ import annotations

from collections.abc import Sequence


import numpy as np

from repro.hashing import fold_key

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class UserInterner:
    """Append-only key <-> dense-code mapping with optional fold storage."""

    __slots__ = (
        "_codes",
        "_keys",
        "_folds",
        "_track_folds",
        "_int_only",
        "_index_keys",
        "_index_codes",
        "_index_size",
    )

    def __init__(self, track_folds: bool = True, initial_capacity: int = 64) -> None:
        self._codes: dict[object, int] = {}
        self._keys: list[object] = []
        self._track_folds = track_folds
        self._folds: np.ndarray | None = (
            np.zeros(max(1, initial_capacity), dtype=np.uint64) if track_folds else None
        )
        #: True while every interned key is a plain int64-range int (the only
        #: population the sorted lookup index can represent losslessly).
        self._int_only = True
        self._index_keys: np.ndarray | None = None
        self._index_codes: np.ndarray | None = None
        self._index_size = 0

    # -- size / enumeration ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._codes

    @property
    def keys(self) -> list[object]:
        """The live key list, index == code.  Append-only; do not mutate."""
        return self._keys

    def key_at(self, code: int) -> object:
        return self._keys[code]

    def users(self) -> list[object]:
        """A fresh list of all keys in intern (first-seen) order."""
        return list(self._keys)

    # -- interning --------------------------------------------------------------

    def intern(self, key: object, fold: int | None = None) -> int:
        """Return the code of ``key``, assigning the next dense code if new."""
        code = self._codes.get(key)
        if code is not None:
            return code
        code = len(self._keys)
        self._codes[key] = code
        self._keys.append(key)
        if self._track_folds:
            folds = self._folds
            assert folds is not None
            if code >= folds.size:
                grown = np.zeros(folds.size * 2, dtype=np.uint64)
                grown[: folds.size] = folds
                self._folds = folds = grown
            folds[code] = fold if fold is not None else fold_key(key)
        if self._int_only and not (
            type(key) is int and _INT64_MIN <= key <= _INT64_MAX
        ):
            self._int_only = False
        return code

    def intern_many(
        self, keys: Sequence[object], folds: np.ndarray | None = None
    ) -> np.ndarray:
        """Intern a batch of keys; returns their codes as an ``int64`` array.

        ``folds`` — when the caller already holds the keys' 64-bit folds
        (:attr:`EncodedBatch.user_hashes` is exactly that, aligned with
        ``batch.users``) — skips recomputing ``fold_key`` per new key.
        """
        get = self._codes.get
        intern = self.intern
        if folds is None:
            codes = [
                code if (code := get(key)) is not None else intern(key)
                for key in keys
            ]
        else:
            codes = [
                code if (code := get(key)) is not None else intern(key, int(folds[i]))
                for i, key in enumerate(keys)
            ]
        return np.array(codes, dtype=np.int64)

    # -- lookup ------------------------------------------------------------------

    def lookup(self, key: object) -> int:
        """Code of ``key``, or -1 if never interned."""
        code = self._codes.get(key)
        return -1 if code is None else code

    def lookup_many(self, keys: Sequence[object]) -> np.ndarray:
        """Codes of a batch of keys (-1 for unknown), vectorised when possible.

        A pure-int interned population probed with an integer array resolves
        through one sorted binary search; everything else falls back to one
        dict probe per key — both produce identical codes.
        """
        if self._int_only and len(self._keys) > 0 and len(keys) > 4:
            arr = self._as_int64(keys)
            if arr is not None:
                index_keys, index_codes = self._int_index()
                if index_keys is not None and index_codes is not None:
                    pos = np.searchsorted(index_keys, arr)
                    pos_clipped = np.minimum(pos, index_keys.size - 1)
                    found = index_keys[pos_clipped] == arr
                    return np.where(found, index_codes[pos_clipped], -1)
        get = self._codes.get
        return np.array([get(key, -1) for key in keys], dtype=np.int64)

    def folds(self, codes: np.ndarray) -> np.ndarray:
        """Fold column gather (requires ``track_folds=True``)."""
        assert self._folds is not None, "interner built with track_folds=False"
        return self._folds[codes]

    # -- int fast-path plumbing ---------------------------------------------------

    @staticmethod
    def _as_int64(keys: Sequence[object]) -> np.ndarray | None:
        """Coerce a probe batch to int64 losslessly, or return None."""
        arr = keys if isinstance(keys, np.ndarray) else np.asarray(keys)
        kind = arr.dtype.kind
        if kind == "i":
            return arr.astype(np.int64, copy=False)
        if kind == "u":
            if arr.size and int(arr.max()) > _INT64_MAX:
                return None
            return arr.astype(np.int64)
        return None

    def _int_index(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """The (sorted keys, codes) probe index, rebuilt lazily after interns."""
        if self._index_size != len(self._keys):
            try:
                keys_arr = np.fromiter(
                    self._keys, dtype=np.int64, count=len(self._keys)
                )
            except (TypeError, ValueError, OverflowError):
                self._int_only = False
                self._index_keys = self._index_codes = None
                return None, None
            order = np.argsort(keys_arr)
            self._index_keys = keys_arr[order]
            self._index_codes = order.astype(np.int64)
            self._index_size = len(self._keys)
        return self._index_keys, self._index_codes

    # -- accounting ---------------------------------------------------------------

    def resident_bytes(self) -> int:
        """Approximate resident footprint: dict + key list + key objects + folds."""
        import sys

        total = sys.getsizeof(self._codes) + sys.getsizeof(self._keys)
        total += sum(sys.getsizeof(key) for key in self._keys)
        if self._folds is not None:
            total += self._folds.nbytes
        if self._index_keys is not None and self._index_codes is not None:
            total += self._index_keys.nbytes + self._index_codes.nbytes
        return total
