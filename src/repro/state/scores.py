"""Columnar score table + frozen checkout views for the monitor's top-k.

:class:`ScoreTable` is a drop-in for the ``TopKTracker``'s ``{user: score}``
dict: the full ``MutableMapping`` protocol with *identical* iteration
semantics (insertion order; delete-then-reinsert moves a user to the end),
backed by numpy columns so ranking, thresholds and totals are vectorised:

* ``values``  — float64 score per code;
* ``present`` — bool membership (codes are permanent, deletion is a flag);
* ``rank``    — the monotone insertion counter; sorting present codes by
  rank reproduces dict insertion order exactly, because every insert *and*
  every re-insert takes a fresh rank.

:meth:`checkout` returns a :class:`FrozenScores` — the read-only snapshot
``SpreaderMonitor.last_window_estimates`` hands to readers.  Checkout is
O(1): the frozen view borrows the live columns, and the table copies them
for itself before its next mutation (copy-on-write with ownership handoff —
the frozen view keeps the originals, which are never written again, so
concurrent readers can gather from a snapshot while ingest keeps mutating
the table).  Before this existed every ``last_window_estimates()`` call
boxed the whole table into a fresh dict.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, MutableMapping, Sequence
from typing import Any, Literal

import numpy as np

from repro.state.interner import UserInterner

_INT64_MAX = (1 << 63) - 1


class ScoreTable(MutableMapping):
    """Mutable mapping of user -> score over interner-coded numpy columns."""

    def __init__(self, initial_capacity: int = 64) -> None:
        self._interner = UserInterner(track_folds=False, initial_capacity=initial_capacity)
        capacity = max(1, initial_capacity)
        self._values = np.zeros(capacity, dtype=np.float64)
        self._present = np.zeros(capacity, dtype=np.bool_)
        self._rank = np.zeros(capacity, dtype=np.int64)
        self._next_rank = 0
        self._count = 0
        #: Cached present-codes-in-rank-order array (None = needs rebuild).
        self._order_cache: np.ndarray | None = None
        #: True while rank order equals code order with no gaps, which makes
        #: ordered gathers plain contiguous slices.
        self._order_is_identity = True
        #: Columns currently borrowed by an outstanding FrozenScores.
        self._loaned = False

    # -- copy-on-write plumbing --------------------------------------------------

    def _prepare_write(self) -> None:
        """Detach from any outstanding checkout before the first mutation.

        The table takes fresh copies and leaves the originals to the frozen
        view — the lazy-copy contract: a checkout that is never followed by
        a mutation costs nothing.
        """
        if self._loaned:
            self._values = self._values.copy()
            self._present = self._present.copy()
            self._rank = self._rank.copy()
            self._loaned = False

    def checkout(self) -> FrozenScores:
        """An immutable snapshot of the current scores (O(1); see module doc)."""
        self._loaned = True
        return FrozenScores(
            self._interner,
            len(self._interner),
            self._values,
            self._present,
            self._rank,
            self._count,
        )

    # -- growth -------------------------------------------------------------------

    def _ensure_capacity(self, code: int) -> None:
        capacity = self._values.size
        if code < capacity:
            return
        new_capacity = capacity
        while new_capacity <= code:
            new_capacity *= 2
        values = np.zeros(new_capacity, dtype=np.float64)
        values[:capacity] = self._values
        present = np.zeros(new_capacity, dtype=np.bool_)
        present[:capacity] = self._present
        rank = np.zeros(new_capacity, dtype=np.int64)
        rank[:capacity] = self._rank
        # Growth allocates fresh columns either way, which also detaches any
        # outstanding checkout.
        self._values, self._present, self._rank = values, present, rank
        self._loaned = False

    # -- mapping protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __contains__(self, user: object) -> bool:
        code = self._interner._codes.get(user)
        return code is not None and bool(self._present[code])

    def __getitem__(self, user: object) -> float:
        code = self._interner._codes.get(user)
        if code is None or not self._present[code]:
            raise KeyError(user)
        return float(self._values[code])

    def get(self, user: object, default: Any = None) -> Any:
        code = self._interner._codes.get(user)
        if code is None or not self._present[code]:
            return default
        return float(self._values[code])

    def __setitem__(self, user: object, value: float) -> None:
        self.put(user, value)

    def put(self, user: object, value: float) -> float | None:
        """Set ``user``'s score; returns the previous score or None if absent.

        The combined get-and-set the tracker's incremental update uses (one
        interner probe instead of two mapping calls).
        """
        interner = self._interner
        code = interner._codes.get(user)
        if code is None:
            code = interner.intern(user)
            self._ensure_capacity(code)
            self._prepare_write()
            self._present[code] = True
            self._values[code] = value
            self._rank[code] = self._next_rank
            self._next_rank += 1
            self._count += 1
            self._append_to_order(code)
            return None
        self._prepare_write()
        if self._present[code]:
            old = float(self._values[code])
            self._values[code] = value
            return old
        # Re-insert after deletion: fresh rank, moves to the end — exactly
        # what a dict re-insert does.
        self._present[code] = True
        self._values[code] = value
        self._rank[code] = self._next_rank
        self._next_rank += 1
        self._count += 1
        self._order_cache = None
        self._order_is_identity = False
        return None

    def __delitem__(self, user: object) -> None:
        code = self._interner._codes.get(user)
        if code is None or not self._present[code]:
            raise KeyError(user)
        self._prepare_write()
        self._present[code] = False
        self._count -= 1
        self._order_cache = None
        self._order_is_identity = False

    def __iter__(self) -> Iterator[object]:
        keys = self._interner._keys
        for code in self.ordered_codes().tolist():
            yield keys[code]

    def items(self) -> Any:  # a lazy (user, score) generator, not an ItemsView
        keys = self._interner._keys
        values = self._values
        return (
            (keys[code], float(values[code]))
            for code in self.ordered_codes().tolist()
        )

    # -- ordered access -------------------------------------------------------------

    def _append_to_order(self, code: int) -> None:
        # Appending would keep a cached order valid (a new code takes the
        # maximum rank), but growing an ndarray per insert is quadratic over
        # a bulk refresh — drop the cache and rebuild lazily instead.
        if self._order_cache is not None:
            self._order_cache = None
        if self._order_is_identity and code != self._count - 1:
            self._order_is_identity = False

    def ordered_codes(self) -> np.ndarray:
        """Present codes in insertion (rank) order — the dict iteration order."""
        if self._order_is_identity:
            return np.arange(self._count, dtype=np.int64)
        cache = self._order_cache
        if cache is None:
            n = len(self._interner)
            codes = np.flatnonzero(self._present[:n])
            cache = codes[np.argsort(self._rank[codes])]
            self._order_cache = cache
        return cache

    def rank_of(self, user: object) -> int:
        return int(self._rank[self._interner._codes[user]])

    def total(self) -> float:
        """Sum of all scores in insertion order (one vector reduction).

        A pure function of (values, order): a resumed monitor rebuilding the
        same table computes the identical float, which is what the alert
        sequence-number reproducibility contract needs.
        """
        if self._order_is_identity:
            return float(self._values[: self._count].sum())
        codes = self.ordered_codes()
        if codes.size == 0:
            return 0.0
        return float(self._values[codes].sum())

    def threshold_candidates(self, threshold: float) -> list[tuple[object, float]]:
        """(user, score) pairs with ``score >= threshold`` in insertion order.

        The full evaluation's start-alert scan: one vector compare selects
        the (few) candidates, which are then boxed — instead of boxing every
        user/score in the table per batch.
        """
        codes = self.ordered_codes()
        if codes.size == 0:
            return []
        values = self._values[codes]
        selected = np.flatnonzero(values >= threshold)
        keys = self._interner._keys
        return [
            (keys[code], float(value))
            for code, value in zip(
                codes[selected].tolist(), values[selected].tolist()
            )
        ]

    def top_codes(self, k: int) -> list[int]:
        """Codes of the exact top-``k`` under ``(-score, rank)``, best first."""
        codes = self.ordered_codes()
        if codes.size == 0:
            return []
        values = self._values[codes]
        ranks = self._rank[codes]
        selected = np.lexsort((ranks, -values))[:k]
        return codes[selected].tolist()

    def key_at(self, code: int) -> object:
        return self._interner._keys[code]

    def value_at(self, code: int) -> float:
        return float(self._values[code])


class FrozenScores(Mapping):
    """Immutable mapping view over a :meth:`ScoreTable.checkout`.

    Codes interned after the checkout are >= the frozen length and read as
    absent; the interner's dict and key list are append-only, so sharing
    them with the live table is safe (the columns themselves are protected
    by the table's copy-on-write handoff).  Iteration order is the frozen
    insertion order, derived lazily — the hot consumers (``spread`` /
    ``batch_spread`` gathers, ``len``) never need it.
    """

    __slots__ = (
        "_interner",
        "_n",
        "_values",
        "_present",
        "_rank",
        "_count",
        "_order",
        "_int_index",
        "_int_lut",
    )

    def __init__(
        self,
        interner: UserInterner,
        n: int,
        values: np.ndarray,
        present: np.ndarray,
        rank: np.ndarray,
        count: int,
    ) -> None:
        self._interner = interner
        self._n = n
        self._values = values
        self._present = present
        self._rank = rank
        self._count = count
        self._order: np.ndarray | None = None
        #: False = not built; None = unbuildable (non-int keys).
        self._int_index: tuple[np.ndarray, np.ndarray] | None | Literal[False] = False
        #: False = not built; None = key range too sparse for a direct table.
        self._int_lut: tuple[int, np.ndarray] | None | Literal[False] = False

    def __len__(self) -> int:
        return self._count

    def __contains__(self, user: object) -> bool:
        code = self._interner._codes.get(user)
        return code is not None and code < self._n and bool(self._present[code])

    def __getitem__(self, user: object) -> float:
        code = self._interner._codes.get(user)
        if code is None or code >= self._n or not self._present[code]:
            raise KeyError(user)
        return float(self._values[code])

    def get(self, user: object, default: Any = None) -> Any:
        code = self._interner._codes.get(user)
        if code is None or code >= self._n or not self._present[code]:
            return default
        return float(self._values[code])

    def _ordered(self) -> np.ndarray:
        order = self._order
        if order is None:
            codes = np.flatnonzero(self._present[: self._n])
            order = self._order = codes[np.argsort(self._rank[codes])]
        return order

    def __iter__(self) -> Iterator[object]:
        keys = self._interner._keys
        for code in self._ordered().tolist():
            yield keys[code]

    def keys(self) -> Any:  # a lazy iterator, not a KeysView
        return iter(self)

    def values(self) -> Any:  # a lazy iterator, not a ValuesView
        values = self._values
        return (float(values[code]) for code in self._ordered().tolist())

    def items(self) -> Any:  # a lazy (user, score) generator, not an ItemsView
        keys = self._interner._keys
        values = self._values
        return (
            (keys[code], float(values[code])) for code in self._ordered().tolist()
        )

    def __repr__(self) -> str:
        return f"FrozenScores({self._count} users)"

    # -- vectorised gathers ----------------------------------------------------------

    def gather_exact(self, users: Sequence[object]) -> list[float] | None:
        """All-present batch gather, or None if any user misses.

        The ``batch_spread`` hot path: mirrors the semantics of the old
        ``operator.itemgetter`` fast path exactly — a single miss makes the
        caller fall back to the per-user normalising lookup.
        """
        try:
            arr = np.asarray(users) if not isinstance(users, np.ndarray) else users
        except (ValueError, TypeError):  # ragged / inhomogeneous probe lists
            return self._gather_via_dict(users)
        if arr.ndim != 1:  # e.g. a list of equal-length tuples
            return self._gather_via_dict(users)
        kind = arr.dtype.kind
        if kind == "u":
            if arr.size and int(arr.max()) > _INT64_MAX:
                return self._gather_via_dict(users)
            arr = arr.astype(np.int64)
            kind = "i"
        if kind != "i":
            return self._gather_via_dict(users)
        index = self._build_int_index()
        if index is None:
            return self._gather_via_dict(users)
        sorted_keys, sorted_codes = index
        if sorted_keys.size == 0:
            return None
        lut_entry = self._build_int_lut(sorted_keys, sorted_codes)
        if lut_entry is not None:
            # Dense key range (the service's integer-id hot case): one fancy
            # index replaces a per-element binary search over unsorted probes.
            lo, table = lut_entry
            shifted = arr - lo
            if shifted.size and (
                int(shifted.min()) < 0 or int(shifted.max()) >= table.size
            ):
                return None  # some probe is outside the frozen key range
            codes = table[shifted]
            if not np.all(codes >= 0):
                return None
        else:
            pos = np.searchsorted(sorted_keys, arr)
            pos_clipped = np.minimum(pos, sorted_keys.size - 1)
            if not np.all(sorted_keys[pos_clipped] == arr):
                return None
            codes = sorted_codes[pos_clipped]
        if not np.all(self._present[codes]):
            return None
        return self._values[codes].tolist()

    def _gather_via_dict(self, users: Sequence[object]) -> list[float] | None:
        codes_map = self._interner._codes
        values = self._values
        present = self._present
        n = self._n
        out: list[float] = []
        for user in users:
            try:
                code = codes_map.get(user)
            except TypeError:  # unhashable probe — let the caller normalise
                return None
            if code is None or code >= n or not present[code]:
                return None
            out.append(float(values[code]))
        return out

    def _build_int_index(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Sorted (key, code) probe index over the frozen prefix, built once.

        Only representable when every frozen key is a plain int64-range
        integer; reading ``keys[:n]`` of the append-only key list is safe
        against concurrent interns.
        """
        index = self._int_index
        if index is False:
            try:
                keys_arr = np.fromiter(
                    self._interner._keys[: self._n], dtype=np.int64, count=self._n
                )
            except (TypeError, ValueError, OverflowError):
                index = self._int_index = None
            else:
                order = np.argsort(keys_arr)
                index = self._int_index = (keys_arr[order], order.astype(np.int64))
        return index

    def _build_int_lut(
        self, sorted_keys: np.ndarray, sorted_codes: np.ndarray
    ) -> tuple[int, np.ndarray] | None:
        """Direct ``key - lo -> code`` table over the frozen key range.

        Built once per checkout, and only when the integer keys are dense
        enough that the table stays proportional to the population (range
        <= 4x the key count, with a 64Ki floor so small tables always
        qualify); sparse populations keep the searchsorted path.  ``-1``
        marks in-range gaps.
        """
        lut = self._int_lut
        if lut is False:
            lo = int(sorted_keys[0])
            span = int(sorted_keys[-1]) - lo + 1
            if span <= max(4 * sorted_keys.size, 1 << 16):
                table = np.full(span, -1, dtype=np.int64)
                table[sorted_keys - lo] = sorted_codes
                lut = self._int_lut = (lo, table)
            else:
                lut = self._int_lut = None
        return lut

    def total(self) -> float:
        """Sum of the frozen scores in insertion order (vector reduction)."""
        codes = self._ordered()
        if codes.size == 0:
            return 0.0
        return float(self._values[codes].sum())
