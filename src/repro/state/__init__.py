"""Columnar per-user state: interned keys + numpy arena columns.

The scale layer under the estimators and the monitor (ROADMAP item 1):
per-user bookkeeping that used to live in Python dicts of boxed objects —
CSE/vHLL cached estimates and position rows, the monitor's score table —
moves into dense numpy columns addressed by interned user codes, cutting
bytes/tracked-user by several fold at million-user populations while every
estimate stays bit-identical to the dict-backed paths (the dict-shaped
views reproduce insertion-order semantics exactly).

* :class:`UserInterner` — user key (int/str/bytes/tuple) -> dense code,
  with eager 64-bit folds and a sorted int probe index.
* :class:`UserArena` — estimate/validity columns plus the ``(n, m)``
  positions block with amortised-doubling growth and the dense->fold
  auto policy.
* :class:`ScoreTable` / :class:`FrozenScores` — the top-k tracker's score
  columns and the O(1) copy-on-write checkout view readers hold.
"""

from repro.state.arena import DENSE_POSITIONS_LIMIT, EstimatesView, PositionsView, UserArena
from repro.state.interner import UserInterner
from repro.state.scores import FrozenScores, ScoreTable

__all__ = [
    "DENSE_POSITIONS_LIMIT",
    "EstimatesView",
    "FrozenScores",
    "PositionsView",
    "ScoreTable",
    "UserArena",
    "UserInterner",
]
