"""Vectorised kernels shared by every batch update path.

The paper's shared-memory estimators are all *event driven*: an arriving
pair either changes the shared array (a "change event") or is discarded.
The batch paths therefore all reduce to the same three primitives, which
this module provides independent of any particular estimator:

``bit_change_events``
    Which pairs of a batch flip a still-zero bit (FreeBS, CSE)?

``register_change_events``
    Which pairs of a batch raise a register above its running maximum
    (FreeRS, vHLL)?  Found with a per-register prefix maximum after sorting
    by (register, arrival position).

``value_after_events`` / ``event_time_for_index`` / ``last_occurrence`` /
``grouped_indices``
    Time-travel lookups: reconstruct the state of a cell *as of a given
    arrival position* from the batch's event list, so per-user estimates can
    be evaluated at each user's last arrival exactly as the scalar paths do.

All kernels operate on plain numpy arrays; the estimator classes own the
storage (:class:`~repro.sketches.bitarray.BitArray`,
:class:`~repro.sketches.registers.RegisterArray`) and the update semantics.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.engine.base import hot_path


@hot_path
def bit_change_events(indices: np.ndarray, zero_at_start: np.ndarray) -> np.ndarray:
    """Return the arrival-ordered batch positions that flip a zero bit.

    A pair is a change event iff its bit was zero at batch start AND it is
    the first occurrence of that bit index within the batch (after the first
    occurrence the bit is one, so later duplicates are discarded).

    Parameters
    ----------
    indices:
        ``int64`` physical bit index per pair.
    zero_at_start:
        Boolean per pair: was the bit zero before the batch?
    """
    count = int(indices.shape[0])
    first_occurrence = np.zeros(count, dtype=bool)
    _, first_positions = np.unique(indices, return_index=True)
    first_occurrence[first_positions] = True
    return np.nonzero(first_occurrence & zero_at_start)[0]


@hot_path
def register_change_events(
    indices: np.ndarray, ranks: np.ndarray, initial_values: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Find the pairs of a batch that raise a register.

    A pair is an event iff its rank exceeds the running maximum of (initial
    register value, ranks of earlier in-batch events on the same register) —
    exactly the condition the sequential scalar update applies.

    Parameters
    ----------
    indices:
        ``int64`` register index per pair.
    ranks:
        ``int64`` rank per pair, already clipped to the register capacity.
    initial_values:
        ``int64`` register value per pair *at batch start*.

    Returns
    -------
    (positions, registers, old_values, new_ranks)
        All in arrival order: the batch position of each event, the register
        it raises, the register's value just before the event, and the rank
        it is raised to.
    """
    count = int(indices.shape[0])
    if count == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty
    order = np.lexsort((np.arange(count), indices))
    sorted_registers = indices[order]
    sorted_ranks = ranks[order]
    sorted_initial = initial_values[order]

    segment_starts = np.ones(count, dtype=bool)
    segment_starts[1:] = sorted_registers[1:] != sorted_registers[:-1]

    # Running maximum *before* each element within its register segment:
    # compute an inclusive prefix max, then shift right by one inside each
    # segment (the first element of a segment sees only the initial value).
    # Segments are isolated by offsetting each with a stride larger than any
    # possible value, so np.maximum.accumulate cannot leak across them.
    inclusive = np.maximum(sorted_ranks, sorted_initial)
    stride = int(max(int(inclusive.max()), 0)) + 2
    segment_ids = np.cumsum(segment_starts) - 1
    offset = segment_ids * stride
    running = np.maximum.accumulate(inclusive + offset) - offset
    previous_max = np.empty(count, dtype=np.int64)
    previous_max[0] = sorted_initial[0]
    previous_max[1:] = np.where(segment_starts[1:], sorted_initial[1:], running[:-1])

    is_event = sorted_ranks > previous_max
    positions = order[is_event]
    arrival = np.argsort(positions, kind="stable")
    return (
        positions[arrival],
        sorted_registers[is_event][arrival],
        previous_max[is_event][arrival],
        sorted_ranks[is_event][arrival],
    )


def last_occurrence(codes: np.ndarray, n_codes: int) -> np.ndarray:
    """Return, per code, the batch position of its last occurrence (-1 if absent)."""
    last = np.full(n_codes, -1, dtype=np.int64)
    np.maximum.at(last, codes, np.arange(codes.shape[0], dtype=np.int64))
    return last


def event_time_for_index(
    query_indices: np.ndarray,
    event_indices_sorted: np.ndarray,
    event_times: np.ndarray,
    missing: int,
) -> np.ndarray:
    """Return the event time of each queried index (``missing`` if it has none).

    For event lists where each index occurs at most once (bit flips), sorted
    ascending by index.
    """
    if event_indices_sorted.size == 0:
        return np.full(query_indices.shape, missing, dtype=np.int64)
    slot = np.searchsorted(event_indices_sorted, query_indices)
    clipped = np.minimum(slot, event_indices_sorted.size - 1)
    found = event_indices_sorted[clipped] == query_indices
    return np.where(found, event_times[clipped], missing)


@hot_path
def value_after_events(
    query_indices: np.ndarray,
    query_times: np.ndarray,
    event_indices: np.ndarray,
    event_times: np.ndarray,
    event_values: np.ndarray,
    initial_values: np.ndarray,
    horizon: int,
) -> np.ndarray:
    """Return the value of each queried cell as of its query time.

    ``event_*`` must be sorted by (index, time); ``horizon`` must exceed
    every time.  A cell's value at time ``t`` is the value written by the
    last event on it with time ``<= t``, or its initial value if none.
    """
    if event_indices.size == 0:
        return initial_values.copy()
    step = np.int64(horizon)
    event_keys = event_indices.astype(np.int64) * step + event_times.astype(np.int64)
    query_keys = query_indices.astype(np.int64) * step + query_times.astype(np.int64)
    slot = np.searchsorted(event_keys, query_keys, side="right")
    previous = np.maximum(slot - 1, 0)
    has_event = (slot > 0) & (event_indices[previous] == query_indices)
    return np.where(has_event, event_values[previous], initial_values)


def cached_positions_matrix(
    batch: Any, family: Any, cache: dict[object, np.ndarray]
) -> np.ndarray:
    """Return the ``(n_users, family.m)`` virtual-sketch position matrix.

    Shared by the CSE and vHLL batch paths: cached rows are reused, missing
    rows are computed in one vectorised family evaluation (bit-identical to
    the scalar ``family.positions`` path) and written back to ``cache``,
    exactly as the scalar updates would.
    """
    matrix = np.empty((batch.n_users, family.m), dtype=np.int64)
    missing = []
    for code, user in enumerate(batch.users):
        cached = cache.get(user)
        if cached is not None:
            matrix[code] = cached
        else:
            missing.append(code)
    if missing:
        rows = family.positions_from_hashes(
            batch.user_hashes[np.asarray(missing, dtype=np.int64)]
        )
        for row_index, code in enumerate(missing):
            row = rows[row_index].copy()
            matrix[code] = row
            cache[batch.users[code]] = row
    return matrix


def touched_query_positions(
    query_indices: np.ndarray, event_indices: np.ndarray, domain_size: int
) -> np.ndarray:
    """Return the positions of queries whose cell has at least one event.

    Batch estimates typically query far more cells (every user's whole
    virtual sketch) than the batch actually modified, and untouched cells
    just keep their initial value — so the per-query time-travel search only
    needs to run on this subset.  The filter is a dense boolean map over the
    cell domain (1 byte per cell), which beats a binary search per query as
    long as the domain is not vastly larger than the query set; above that
    threshold the filter is skipped and every query position is returned.
    """
    total = int(query_indices.shape[0])
    everything = np.arange(total, dtype=np.int64)
    if event_indices.size == 0:
        return np.empty(0, dtype=np.int64)
    if domain_size > max(1 << 24, 32 * total):
        return everything
    present = np.zeros(domain_size, dtype=bool)
    present[event_indices] = True
    return np.nonzero(present[query_indices])[0]


def grouped_indices(
    codes: np.ndarray, n_codes: int
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(code, positions)`` for every code present, positions in arrival order.

    The grouping primitive of the per-user batch paths: one stable argsort,
    then contiguous segments.
    """
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundaries = np.nonzero(np.diff(sorted_codes))[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [sorted_codes.shape[0]]))
    for start, end in zip(starts, ends):
        if end > start:
            yield int(sorted_codes[start]), order[start:end]
