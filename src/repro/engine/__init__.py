"""Unified vectorised sketch-engine layer.

The engine separates the three concerns every estimator in this library
mixes on its hot path:

* **encoding** (:mod:`repro.engine.encoding`) — one shared hash/encode
  pipeline that folds (user, item) pairs to integer arrays once and derives
  every estimator-specific hash (pair keys, item hashes, virtual-sketch
  positions, shard ids) from the folds;
* **kernels** (:mod:`repro.engine.kernels`) — storage-agnostic vectorised
  change-event detection and time-travel lookups, shared by the FreeBS /
  FreeRS / CSE / vHLL batch paths;
* **interface** (:mod:`repro.engine.base`) — the :class:`BatchUpdatable`
  mixin plus :func:`process_stream`, the chunked fast path that
  :meth:`repro.core.base.CardinalityEstimator.process` routes through by
  default.

On top of those, :mod:`repro.engine.sharded` partitions users across ``K``
independent sub-sketches with mergeable state for multi-worker replay.

Every batch path is bit-identical to its scalar twin (asserted by the
test-suite on randomized streams), so the cross-method throughput benchmarks
compare vectorised implementations against vectorised implementations.
"""

from repro.engine.base import (
    DEFAULT_CHUNK_PAIRS,
    BatchUpdatable,
    hot_path,
    process_stream,
    supports_batch,
)
from repro.engine.encoding import (
    EncodedBatch,
    encode_int_pairs,
    encode_pairs,
    seed_mix,
)
from repro.engine.query import (
    gather_cached_estimates,
    positions_matrix_for_users,
    row_harmonic_sums,
    row_register_values,
    row_zero_bit_counts,
    row_zero_counts,
)
from repro.engine.sharded import ShardedEstimator, route_pair_shards, route_user_hashes

__all__ = [
    "DEFAULT_CHUNK_PAIRS",
    "BatchUpdatable",
    "EncodedBatch",
    "ShardedEstimator",
    "encode_int_pairs",
    "encode_pairs",
    "gather_cached_estimates",
    "hot_path",
    "positions_matrix_for_users",
    "process_stream",
    "route_pair_shards",
    "route_user_hashes",
    "row_harmonic_sums",
    "row_register_values",
    "row_zero_bit_counts",
    "row_zero_counts",
    "seed_mix",
    "supports_batch",
]
