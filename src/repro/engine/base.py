"""Engine-level batch interface and the chunked stream fast path.

The engine gives every estimator two equivalent update paths:

* the scalar path, ``update(user, item)`` — the paper's streaming model,
  one pair at a time;
* the vectorised path, ``update_encoded(batch)`` — a whole
  :class:`~repro.engine.encoding.EncodedBatch` at once, with numpy doing the
  hashing and change-event detection.

Both paths are required to produce **bit-identical** estimator state (the
test-suite asserts this per estimator on randomized streams), so callers can
pick purely on throughput grounds.  :func:`process_stream` does exactly
that: it chunks an arbitrary pair iterable and routes each chunk through the
batch path when the estimator supports it, falling back to the scalar loop
otherwise.  :meth:`repro.core.base.CardinalityEstimator.process` delegates
here, which is how the CLI, the experiment runner and the benchmarks all get
the fast path without call-site changes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from typing import Any, TypeVar

from repro.engine.encoding import EncodedBatch

UserItemPair = tuple[object, object]

_F = TypeVar("_F", bound=Callable[..., object])


def hot_path(func: _F) -> _F:
    """Mark a function as hot-path: vectorized-only, no per-element Python.

    Zero runtime cost — the marker only tags the function so tooling (the
    ``RL003`` checker in :mod:`repro.lint`) holds it to the hot-path purity
    contract: no per-element loops over user collections, no dict hops, no
    numpy calls inside Python loops.  Apply it to any function outside the
    always-hot modules (``engine/kernels.py`` / ``engine/query.py`` /
    ``state/arena.py``) that sits on a per-pair or per-user path.
    """
    func.__repro_hot_path__ = True  # type: ignore[attr-defined]
    return func

#: Default number of pairs per chunk in :func:`process_stream`.  Large enough
#: to amortise numpy call overhead, small enough that the per-chunk scratch
#: arrays (notably the CSE/vHLL position matrices, ``unique_users x m``)
#: stay modest even on adversarial all-distinct-user streams.
DEFAULT_CHUNK_PAIRS = 8192


class BatchUpdatable:
    """Mixin adding the engine's vectorised batch interface to an estimator.

    Subclasses implement :meth:`update_encoded`; the mixin provides the
    pairs-shaped convenience wrapper.  The contract, enforced by the
    test-suite: feeding a stream through the batch path (in any chunking)
    leaves the estimator in exactly the state the scalar path produces.
    """

    def update_batch(self, pairs: Iterable[UserItemPair]) -> None:
        """Encode and process a batch of raw (user, item) pairs."""
        if not isinstance(pairs, (list, tuple)):
            pairs = list(pairs)
        if not pairs:
            return
        self.update_encoded(EncodedBatch.from_pairs(pairs))

    def update_encoded(self, batch: EncodedBatch) -> None:
        """Process a pre-encoded batch (implemented per estimator)."""
        raise NotImplementedError


def supports_batch(estimator: object) -> bool:
    """True if ``estimator`` exposes the batch update path."""
    return callable(getattr(estimator, "update_batch", None))


def process_stream(
    estimator: Any, stream: Iterable[UserItemPair], chunk_size: int | None = None
) -> Any:
    """Consume a stream through the fastest available path; return the estimator.

    Batch-capable estimators receive the stream in chunks of ``chunk_size``
    pairs (default :data:`DEFAULT_CHUNK_PAIRS`); everything else gets the
    plain scalar loop.  Results are identical either way.
    """
    if not supports_batch(estimator):
        for user, item in stream:
            estimator.update(user, item)
        return estimator
    if chunk_size is None:
        chunk = DEFAULT_CHUNK_PAIRS
    else:
        chunk = int(chunk_size)
        if chunk <= 0:
            raise ValueError("chunk_size must be positive")
    buffer: list[UserItemPair] = []
    append = buffer.append
    for pair in stream:
        append(pair)
        if len(buffer) >= chunk:
            estimator.update_batch(buffer)
            buffer = []
            append = buffer.append
    if buffer:
        estimator.update_batch(buffer)
    return estimator
