"""The engine's shared hash/encode pipeline.

Every estimator in this library ultimately consumes the same three hash
quantities per arriving (user, item) pair:

* a 64-bit fold of the *user* (CSE/vHLL derive the virtual-sketch positions
  from it, the sharding layer derives the shard id from it),
* a 64-bit fold of the *item* (CSE/vHLL derive the bucket and rank from it,
  the per-user baselines feed it to the private sketches),
* a seed-independent 64-bit *pair key* (FreeBS/FreeRS hash the pair as a
  whole; duplicate pairs must collide).

:class:`EncodedBatch` computes the folds once per batch and derives
everything else lazily, so one encoded batch can be replayed through any
number of estimators with any seeds — this generalises the original
``encode_int_pairs`` fast path (which only produced pair keys, and therefore
could only feed FreeBS/FreeRS) to the whole method zoo.

All folds go through :func:`repro.hashing.fold_key` /
:func:`repro.hashing.fold_key_array`, which agree bit-for-bit with the scalar
estimators' hashing for every key type, including negative and ``>= 2**63``
integer ids.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from dataclasses import dataclass, field

import numpy as np

from repro.hashing import MASK64, fold_key, fold_key_array, splitmix64, splitmix64_array
from repro.hashing.mix import _GOLDEN_GAMMA

UserItemPair = tuple[object, object]

_GAMMA64 = np.uint64(_GOLDEN_GAMMA)


def _as_exact_array(values: Sequence[object] | np.ndarray, name: str) -> np.ndarray:
    """Coerce encoder input to an array without losing integer precision.

    ``np.asarray`` turns a Python list that mixes negative ids with ids
    ``>= 2**63`` into ``float64`` — silently rounding distinct 64-bit ids
    onto each other.  Lists/tuples that coerce to an inexact dtype are
    rebuilt as ``object`` arrays (lossless, folded per element); float
    *arrays* are rejected because the damage already happened upstream.
    """
    array = np.asarray(values)
    if array.dtype.kind in "iuO":
        return array
    if not isinstance(values, np.ndarray):
        return np.array(list(values), dtype=object)
    raise TypeError(
        f"{name} must be an integer or object array, got dtype {array.dtype}; "
        "float dtypes cannot represent 64-bit ids exactly"
    )


def seed_mix(seed: int) -> np.uint64:
    """Return ``splitmix64(seed)`` as a ``uint64`` scalar (hash-seed premix).

    ``hash64(key, seed)`` and ``hash_pair(user, item, seed)`` both mix their
    key with ``splitmix64(seed & MASK64)``; pre-computing that constant keeps
    the vectorised paths down to a single xor + mix per element.
    """
    return np.uint64(splitmix64(seed & MASK64))


@dataclass
class EncodedBatch:
    """A batch of (user, item) pairs folded to integer arrays.

    Attributes
    ----------
    user_codes:
        ``int64`` array, one dense user code per pair (``users[code]`` is the
        original user object).
    user_hashes:
        ``uint64`` array, one raw 64-bit fold per *unique* user, aligned with
        ``users``.
    item_hashes:
        ``uint64`` array, one raw 64-bit item fold per pair.
    users:
        List mapping user codes back to the original user objects.
    """

    user_codes: np.ndarray
    user_hashes: np.ndarray
    item_hashes: np.ndarray
    users: list[object]
    _pair_keys: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return int(self.user_codes.shape[0])

    @property
    def n_users(self) -> int:
        """Number of distinct users in the batch."""
        return len(self.users)

    def pair_keys(self) -> np.ndarray:
        """Seed-independent 64-bit pair keys, equal to ``pair_key(u, i)``.

        Computed lazily and cached: FreeBS/FreeRS need them, CSE/vHLL and the
        per-user baselines do not.
        """
        if self._pair_keys is None:
            user_folds = self.user_hashes[self.user_codes]
            self._pair_keys = splitmix64_array(user_folds ^ _GAMMA64) ^ splitmix64_array(
                self.item_hashes
            )
        return self._pair_keys

    def item_hashes_with_seed(self, seed: int) -> np.ndarray:
        """Per-pair ``hash64(item, seed)`` values (the item-hash hot path)."""
        return splitmix64_array(self.item_hashes ^ seed_mix(seed))

    def decode_table(self) -> dict[int, object]:
        """Return the legacy ``{code: user}`` decode dict."""
        return dict(enumerate(self.users))

    def subset(self, mask: np.ndarray) -> EncodedBatch:
        """Return a new batch containing only the pairs selected by ``mask``.

        User codes are re-densified; the relative order of the selected pairs
        (and therefore every arrival-order-dependent estimate) is preserved.
        Used by the sharding layer to split one encoded batch across shards.
        """
        codes = self.user_codes[mask]
        items = self.item_hashes[mask]
        unique_codes, inverse = np.unique(codes, return_inverse=True)
        users = [self.users[int(code)] for code in unique_codes]
        return EncodedBatch(
            user_codes=inverse.astype(np.int64),
            user_hashes=self.user_hashes[unique_codes],
            item_hashes=items,
            users=users,
        )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Sequence[UserItemPair]) -> EncodedBatch:
        """Encode arbitrary (user, item) pairs (one scalar fold per element)."""
        users: list[object] = []
        codes_of: dict[object, int] = {}
        user_folds: list[int] = []
        codes: list[int] = []
        item_folds: list[int] = []
        for user, item in pairs:
            code = codes_of.get(user)
            if code is None:
                code = len(users)
                codes_of[user] = code
                users.append(user)
                user_folds.append(fold_key(user))
            codes.append(code)
            item_folds.append(fold_key(item))
        return cls(
            user_codes=np.asarray(codes, dtype=np.int64),
            user_hashes=np.asarray(user_folds, dtype=np.uint64),
            item_hashes=np.asarray(item_folds, dtype=np.uint64),
            users=users,
        )

    @classmethod
    def from_int_arrays(cls, users: np.ndarray, items: np.ndarray) -> EncodedBatch:
        """Vectorised encoding for streams of integer users and items.

        Accepts signed, unsigned and ``object`` (big Python int) arrays; the
        folds match the scalar path for every representable id, including
        negative and ``>= 2**63`` values (see :func:`repro.hashing.fold_key_array`).
        Float arrays are rejected: they cannot represent 64-bit ids exactly,
        and silently folding them would merge distinct users.
        """
        users = _as_exact_array(users, "users")
        items = _as_exact_array(items, "items")
        if users.shape != items.shape:
            raise ValueError("users and items must have the same length")
        if users.ndim != 1:
            raise ValueError("users and items must be one-dimensional")
        item_folds = fold_key_array(items)
        unique_users, codes = np.unique(users, return_inverse=True)
        user_folds = fold_key_array(unique_users)
        return cls(
            user_codes=codes.astype(np.int64),
            user_hashes=user_folds,
            item_hashes=item_folds,
            users=[int(user) for user in unique_users],
        )


def encode_pairs(
    pairs: Iterable[UserItemPair],
) -> tuple[np.ndarray, np.ndarray, dict[int, object]]:
    """Encode arbitrary (user, item) pairs into integer arrays for batch APIs.

    Legacy tuple-shaped API kept for the original FreeBS/FreeRS batch
    estimators: returns ``(user_codes, pair_hash_keys, decode_table)``.  New
    code should prefer :meth:`EncodedBatch.from_pairs`, which also carries the
    separate user/item folds the other estimators need.
    """
    batch = EncodedBatch.from_pairs(list(pairs))
    return batch.user_codes, batch.pair_keys(), batch.decode_table()


def encode_int_pairs(
    users: np.ndarray, items: np.ndarray
) -> tuple[np.ndarray, np.ndarray, dict[int, object]]:
    """Vectorised :func:`encode_pairs` for streams of integer users and items.

    Produces exactly the same keys as the scalar path (``pair_key(u, i)``)
    for the full integer range — negative ids and ids ``>= 2**63`` included —
    without a Python-level loop for fixed-width dtypes.  The decode table maps
    each user code to the original integer user id.
    """
    batch = EncodedBatch.from_int_arrays(users, items)
    return batch.user_codes, batch.pair_keys(), batch.decode_table()
