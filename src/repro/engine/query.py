"""Vectorised query-side kernels: batch estimation over many users at once.

PR 1 vectorised the *update* side of every method; this module is the
query-side twin.  The expensive per-user work when answering
``estimate_many`` / ``estimate_fresh_many`` queries is always one of two
shapes:

* **virtual-sketch decode** (CSE, vHLL) — gather each user's ``m`` physical
  cells from the shared array and reduce them (zero counts, harmonic sums).
  Done per user this is an O(m) Python round-trip; done for a batch it is a
  single ``(n_users, m)`` gather plus one axis-1 numpy reduction.
* **cache gather** (FreeBS, FreeRS, the per-user baselines and every cached
  ``estimate()``) — one dict lookup per user, which only needs a tight
  bound-method loop rather than a method call per user.

Every helper here is *bit-identical* to the scalar loop it replaces: the
reductions produce exactly the integer counts / float sums the scalar
``estimate`` path computes (numpy's axis-1 reduction of a C-contiguous row
matches the 1-D reduction of that row), and the final closed-form formulas
stay in the estimator classes so both paths share one implementation.  The
property suite (``tests/test_query_engine.py``) enforces this per method.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.hashing import fold_key


def gather_cached_estimates(cache: Dict[object, float], users: Sequence[object]) -> List[float]:
    """Per-user cached estimates in input order (0.0 for unseen users).

    The batch twin of ``cache.get(user, 0.0)``: one bound-method loop, no
    per-user method dispatch.  Trivially bit-identical to the scalar path.
    """
    get = cache.get
    return [get(user, 0.0) for user in users]


def positions_matrix_for_users(family, cache: Dict[object, np.ndarray], users: Sequence[object]) -> np.ndarray:
    """Return the ``(len(users), family.m)`` virtual-sketch position matrix.

    The query-side sibling of :func:`repro.engine.kernels.cached_positions_matrix`
    for plain user sequences (no :class:`~repro.engine.encoding.EncodedBatch`
    in hand): cached rows are reused, missing rows are folded and evaluated
    in one vectorised family pass — bit-identical to ``family.positions`` —
    and written back to ``cache``.
    """
    matrix = np.empty((len(users), family.m), dtype=np.int64)
    missing: List[int] = []
    for row, user in enumerate(users):
        cached = cache.get(user)
        if cached is not None:
            matrix[row] = cached
        else:
            missing.append(row)
    if missing:
        folds = np.array([fold_key(users[row]) for row in missing], dtype=np.uint64)
        rows = family.positions_from_hashes(folds)
        for row_index, row in enumerate(missing):
            computed = rows[row_index].copy()
            matrix[row] = computed
            cache[users[row]] = computed
    return matrix


def row_zero_bit_counts(bits, positions_matrix: np.ndarray) -> np.ndarray:
    """Per-row count of *zero* bits at the given positions of a ``BitArray``.

    One flat gather plus an axis-1 count; row ``i`` equals the scalar
    ``int(np.count_nonzero(~bits.get_bits(positions_matrix[i])))`` exactly
    (integer counting has no rounding to disagree on).
    """
    flat = positions_matrix.ravel()
    zero = ~bits.get_bits(flat)
    return zero.reshape(positions_matrix.shape).sum(axis=1)


def row_register_values(registers, positions_matrix: np.ndarray) -> np.ndarray:
    """Gather the register values at every position of a ``(n, m)`` matrix."""
    flat = positions_matrix.ravel()
    return registers.get_many(flat).reshape(positions_matrix.shape)


def row_harmonic_sums(values_matrix: np.ndarray) -> np.ndarray:
    """Per-row ``sum_j 2^-values[j]`` of a register-value matrix.

    Row ``i`` equals ``float(np.sum(np.exp2(-values_matrix[i].astype(f8))))``
    bit-for-bit: numpy reduces the last axis of a C-contiguous float64 array
    with the same pairwise algorithm it applies to the standalone row.
    """
    return np.sum(np.exp2(-values_matrix.astype(np.float64)), axis=1)


def row_zero_counts(values_matrix: np.ndarray) -> np.ndarray:
    """Per-row count of zero-valued registers of a register-value matrix."""
    return np.count_nonzero(values_matrix == 0, axis=1)
