"""Vectorised query-side kernels: batch estimation over many users at once.

PR 1 vectorised the *update* side of every method; this module is the
query-side twin.  The expensive per-user work when answering
``estimate_many`` / ``estimate_fresh_many`` queries is always one of two
shapes:

* **virtual-sketch decode** (CSE, vHLL) — gather each user's ``m`` physical
  cells from the shared array and reduce them (zero counts, harmonic sums).
  Done per user this is an O(m) Python round-trip; done for a batch it is a
  single ``(n_users, m)`` gather plus one axis-1 numpy reduction.
* **cache gather** (FreeBS, FreeRS, the per-user baselines and every cached
  ``estimate()``) — one dict lookup per user, which only needs a tight
  bound-method loop rather than a method call per user.

Every helper here is *bit-identical* to the scalar loop it replaces: the
reductions produce exactly the integer counts / float sums the scalar
``estimate`` path computes (numpy's axis-1 reduction of a C-contiguous row
matches the 1-D reduction of that row), and the final closed-form formulas
stay in the estimator classes so both paths share one implementation.  The
property suite (``tests/test_query_engine.py``) enforces this per method.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.hashing import fold_key


def gather_cached_estimates(cache: Any, users: Sequence[object]) -> list[float]:
    """Per-user cached estimates in input order (0.0 for unseen users).

    Arena-backed caches (:class:`repro.state.EstimatesView`) resolve the
    whole batch as one vectorised code lookup plus a single masked column
    gather; plain dicts fall back to one bound-method loop, no per-user
    method dispatch.  Both are trivially bit-identical to the scalar
    ``cache.get(user, 0.0)`` path (the gathered column holds the exact
    float64 values the scalar path would read).
    """
    gather = getattr(cache, "gather_default_zero", None)
    if gather is not None:
        return gather(users)
    get = cache.get
    return [get(user, 0.0) for user in users]


def positions_matrix_for_users(
    family: Any, cache: Any, users: Sequence[object]
) -> np.ndarray:
    """Return the ``(len(users), family.m)`` virtual-sketch position matrix.

    The query-side sibling of :func:`repro.engine.kernels.cached_positions_matrix`
    for plain user sequences (no :class:`~repro.engine.encoding.EncodedBatch`
    in hand).  An arena-backed cache (:class:`repro.state.PositionsView`)
    answers with one interned-code gather over its columnar positions block
    (or one vectorised fold evaluation in fold mode) — bit-identical to
    ``family.positions`` by the hashing layer's contract.  For plain dict
    caches, cached rows are stacked in one fancy-indexed copy, missing rows
    are folded and evaluated in one vectorised family pass and written back
    to ``cache``.
    """
    arena = getattr(cache, "_arena", None)
    if arena is not None:
        return arena.positions_rows(arena.intern_many(users))
    n = len(users)
    matrix = np.empty((n, family.m), dtype=np.int64)
    missing: list[int] = []
    hit_rows: list[int] = []
    hit_values: list[np.ndarray] = []
    for row, user in enumerate(users):
        cached = cache.get(user)
        if cached is not None:
            hit_rows.append(row)
            hit_values.append(cached)
        else:
            missing.append(row)
    if hit_values:
        if len(hit_values) == n:
            # All hits: one stacked bulk copy, no index pass.
            np.stack(hit_values, out=matrix)
        else:
            matrix[hit_rows] = np.stack(hit_values)
    if missing:
        folds = np.array([fold_key(users[row]) for row in missing], dtype=np.uint64)
        rows = family.positions_from_hashes(folds)
        matrix[missing] = rows
        for row_index, row in enumerate(missing):
            cache[users[row]] = rows[row_index].copy()
    return matrix


def row_zero_bit_counts(bits: Any, positions_matrix: np.ndarray) -> np.ndarray:
    """Per-row count of *zero* bits at the given positions of a ``BitArray``.

    One flat gather plus an axis-1 count; row ``i`` equals the scalar
    ``int(np.count_nonzero(~bits.get_bits(positions_matrix[i])))`` exactly
    (integer counting has no rounding to disagree on).
    """
    flat = positions_matrix.ravel()
    zero = ~bits.get_bits(flat)
    return zero.reshape(positions_matrix.shape).sum(axis=1)


def row_register_values(registers: Any, positions_matrix: np.ndarray) -> np.ndarray:
    """Gather the register values at every position of a ``(n, m)`` matrix."""
    flat = positions_matrix.ravel()
    return registers.get_many(flat).reshape(positions_matrix.shape)


def row_harmonic_sums(values_matrix: np.ndarray) -> np.ndarray:
    """Per-row ``sum_j 2^-values[j]`` of a register-value matrix.

    Row ``i`` equals ``float(np.sum(np.exp2(-values_matrix[i].astype(f8))))``
    bit-for-bit: numpy reduces the last axis of a C-contiguous float64 array
    with the same pairwise algorithm it applies to the standalone row.
    """
    return np.sum(np.exp2(-values_matrix.astype(np.float64)), axis=1)


def row_zero_counts(values_matrix: np.ndarray) -> np.ndarray:
    """Per-row count of zero-valued registers of a register-value matrix."""
    return np.count_nonzero(values_matrix == 0, axis=1)
