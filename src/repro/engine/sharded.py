"""User-partitioned sharding with mergeable state.

A :class:`ShardedEstimator` splits the user population across ``K``
independent sub-sketches by hashing the user id, which is the standard
scale-out move for the paper's shared-memory estimators: each shard is a
full estimator over ``1/K``-th of the users, shards never interact, and the
combined estimates are exactly what each shard would report if it had been
run alone on its slice of the stream (the test-suite asserts this property).

Because the partition is deterministic in the user id, sharding also gives a
multi-worker replay story: workers that own disjoint shard ranges can
process disjoint slices of the stream and later :meth:`~ShardedEstimator.merge`
their states, reproducing a single-process run bit-for-bit.  This is the
"mergeable state" the engine layer promises; it works for every estimator
the factory can build, because merging only ever adopts whole untouched
shards (no sketch-level interleaving is required).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import copy

import numpy as np

from repro.core.base import CardinalityEstimator
from repro.engine.base import BatchUpdatable, hot_path, supports_batch
from repro.engine.encoding import EncodedBatch, seed_mix
from repro.hashing import MASK64, fold_key, fold_key_array, hash64, splitmix64_array

UserItemPair = tuple[object, object]

#: Salt xor-ed into the routing seed so the shard choice is independent of the
#: hash functions the sub-estimators draw from the same seed.
_SHARD_SALT = 0x5AD5

EstimatorFactory = Callable[[int], CardinalityEstimator]


@hot_path
def route_user_hashes(user_hashes: np.ndarray, shards: int, seed: int) -> np.ndarray:
    """Shard ids for raw 64-bit user folds under the estimator's routing.

    This is the one routing function: :meth:`ShardedEstimator.shard_of`, the
    estimator's internal batch splitting and the parallel-ingest runtime's
    coordinator all derive shard ownership from it, which is what makes
    multi-worker runs bit-identical to a single sharded estimator.
    """
    route_seed = (seed ^ _SHARD_SALT) & MASK64
    mixed = splitmix64_array(user_hashes ^ seed_mix(route_seed))
    return (mixed % np.uint64(shards)).astype(np.int64)


@hot_path
def route_pair_shards(batch: EncodedBatch, shards: int, seed: int) -> np.ndarray:
    """Per-pair shard ids of an encoded batch (vectorised, bit-identical)."""
    return route_user_hashes(batch.user_hashes, shards, seed)[batch.user_codes]


class ShardedEstimator(BatchUpdatable, CardinalityEstimator):
    """Partition users across ``K`` independent sub-estimators.

    Parameters
    ----------
    factory:
        Callable building the estimator of shard ``k`` (called with ``k``).
        Shards must be independent instances; they may share a seed.
    shards:
        Number of shards ``K``.
    seed:
        Seed of the user -> shard routing hash.  Two sharded estimators can
        only be merged if they agree on ``shards`` and ``seed``.
    """

    name = "Sharded"

    def __init__(self, factory: EstimatorFactory, shards: int, seed: int = 0) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        self.num_shards = shards
        self.seed = seed
        self._route_seed = (seed ^ _SHARD_SALT) & MASK64
        self._shards: list[CardinalityEstimator] = [factory(k) for k in range(shards)]
        self._shard_pairs: list[int] = [0] * shards
        base_name = getattr(self._shards[0], "name", "estimator")
        self.name = f"Sharded[{shards}x{base_name}]"

    # -- routing --------------------------------------------------------------

    def shard_of(self, user: object) -> int:
        """Return the shard index that owns ``user`` (deterministic in the id)."""
        return hash64(user, seed=self._route_seed) % self.num_shards

    def _shards_from_hashes(self, user_hashes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`shard_of` over raw user folds (bit-identical)."""
        return route_user_hashes(user_hashes, self.num_shards, self.seed)

    # -- streaming API --------------------------------------------------------

    def update(self, user: object, item: object) -> float:
        """Route one pair to its owner shard; return the user's estimate."""
        shard = self.shard_of(user)
        self._shard_pairs[shard] += 1
        return self._shards[shard].update(user, item)

    def estimate(self, user: object) -> float:
        """Return the owner shard's estimate of ``user``."""
        return self._shards[self.shard_of(user)].estimate(user)

    def estimate_many(self, users: Iterable[object]) -> list[float]:
        """Batch estimates in input order: route once, query each shard once.

        Users are routed with the same vectorised hash as :meth:`shard_of`,
        grouped per shard, answered with the shard's own ``estimate_many``
        and scattered back — bit-identical to the per-user loop.
        """
        users = list(users)
        if not users:
            return []
        try:
            array = np.asarray(users)
        except ValueError:  # ragged keys (e.g. mixed-length tuples)
            array = None
        if array is not None and array.ndim == 1 and array.dtype.kind in "iu":
            folds = fold_key_array(array)
        else:
            folds = np.array([fold_key(user) for user in users], dtype=np.uint64)
        shard_ids = route_user_hashes(folds, self.num_shards, self.seed)
        results: list[float] = [0.0] * len(users)
        for shard_index in np.unique(shard_ids):
            positions = np.nonzero(shard_ids == shard_index)[0].tolist()
            values = self._shards[int(shard_index)].estimate_many(
                [users[position] for position in positions]
            )
            for position, value in zip(positions, values):
                results[position] = value
        return results

    def estimates(self) -> dict[object, float]:
        """Union of the shard estimates (user sets are disjoint by routing)."""
        combined: dict[object, float] = {}
        for shard in self._shards:
            combined.update(shard.estimates())
        return combined

    def memory_bits(self) -> int:
        """Total accounted memory across all shards."""
        return sum(shard.memory_bits() for shard in self._shards)

    # -- batch path -----------------------------------------------------------

    def update_batch(self, pairs: Iterable[UserItemPair]) -> None:
        """Partition a batch across shards; use sub-batch paths when available."""
        if not isinstance(pairs, (list, tuple)):
            pairs = list(pairs)
        if not pairs:
            return
        if all(supports_batch(shard) for shard in self._shards):
            self.update_encoded(EncodedBatch.from_pairs(pairs))
            return
        routed: dict[int, list[UserItemPair]] = {}
        for user, item in pairs:
            routed.setdefault(self.shard_of(user), []).append((user, item))
        for shard_index, shard_pairs in routed.items():
            self._shard_pairs[shard_index] += len(shard_pairs)
            shard = self._shards[shard_index]
            if supports_batch(shard):
                shard.update_batch(shard_pairs)
            else:
                for user, item in shard_pairs:
                    shard.update(user, item)

    def update_encoded(self, batch: EncodedBatch) -> None:
        """Split an encoded batch by shard and delegate to the sub-estimators."""
        user_shards = self._shards_from_hashes(batch.user_hashes)
        pair_shards = user_shards[batch.user_codes]
        for shard_index in np.unique(pair_shards):
            index = int(shard_index)
            sub_batch = batch.subset(pair_shards == shard_index)
            self._shard_pairs[index] += len(sub_batch)
            self._shards[index].update_encoded(sub_batch)

    # -- mergeable state ------------------------------------------------------

    @property
    def shards(self) -> list[CardinalityEstimator]:
        """The sub-estimators, indexed by shard id."""
        return list(self._shards)

    @property
    def shard_pair_counts(self) -> list[int]:
        """Pairs routed to each shard so far (duplicates included)."""
        return list(self._shard_pairs)

    def touched_shards(self) -> list[int]:
        """Shard ids that have received at least one pair."""
        return [k for k, count in enumerate(self._shard_pairs) if count > 0]

    def merge(self, other: ShardedEstimator) -> ShardedEstimator:
        """Absorb the shards ``other`` touched; return ``self``.

        The two runs must share the shard count and routing seed, and must
        have touched *disjoint* shard sets — the multi-worker contract where
        each worker filters the stream to the shards it owns.  Under that
        contract the merged estimator is bit-identical to a single run over
        the concatenated streams, because every pair lands in a shard that
        saw exactly the same sub-stream either way.

        Adopted shards are deep-copied, so ``other`` stays independent:
        a worker that keeps streaming into its local estimator after a
        coordinator merged it cannot silently mutate the merged state.
        """
        if not isinstance(other, ShardedEstimator):
            raise TypeError("can only merge with another ShardedEstimator")
        if (other.num_shards, other.seed) != (self.num_shards, self.seed):
            raise ValueError(
                "cannot merge: shard count and routing seed must match "
                f"(self: {self.num_shards}/{self.seed}, other: {other.num_shards}/{other.seed})"
            )
        overlap = [
            k
            for k in range(self.num_shards)
            if self._shard_pairs[k] > 0 and other._shard_pairs[k] > 0
        ]
        if overlap:
            raise ValueError(
                f"cannot merge: shards {overlap} were updated on both sides; "
                "merge requires workers to own disjoint shard sets"
            )
        for k in other.touched_shards():
            self._shards[k] = copy.deepcopy(other._shards[k])
            self._shard_pairs[k] = other._shard_pairs[k]
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}(pairs={sum(self._shard_pairs)})"
