"""The metrics core: a process-global registry of cheap instruments.

Serving millions of users is pointless if the only way to see what the
system is doing is an offline benchmark.  This module is the telemetry
spine every layer above hangs its numbers on — dependency-free (stdlib
only), always-on-cheap, and snapshot-able to plain dicts so the same
state feeds the service's ``metrics`` op, the Prometheus endpoint
(:mod:`repro.obs.prometheus`) and ad-hoc debugging alike.

Three instrument types:

* :class:`Counter` — a monotone float total (requests served, pairs
  ingested, worker failures).  ``add()`` takes the instrument's lock, so
  concurrent increments from the ingest thread, the asyncio executor pool
  and worker-collection code never lose updates.
* :class:`Gauge` — a point-in-time value (queue depth, slots in flight,
  active connections); ``set`` / ``add`` under the same locking.
* :class:`Histogram` — fixed-bucket, log-scale latency/size distribution.
  ``observe`` is a ``bisect`` plus one list-element increment (plain
  ``int`` counts: a C-level increment, with no scalar boxing on the hot
  path).  Bounds are fixed at construction (default: base-2 decades from
  1 µs to ~67 s), so snapshots from different processes or runs are
  always mergeable bucket by bucket.

Instruments are identified by ``(name, labels)`` — the registry returns
the *same* object for the same identity, which is what makes module-level
``counter(...)`` calls in hot paths safe and cheap (a dict hit under the
registry lock, then attribute access forever after).

Disabled mode: :meth:`MetricsRegistry.set_enabled` flips one attribute;
every mutation checks it first, so a disabled registry costs one attribute
load and a branch per call site (the overhead benchmark gates the enabled
path at <3% of ingest/query throughput).  Instruments created with
``always=True`` ignore the flag — they carry *operational* state
(ingest progress, queries served) that ``describe()``/``stats`` report
from, and turning telemetry off must not change program behaviour.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import threading
import time
from typing import Any, TypeVar, cast
from bisect import bisect_left

#: Default histogram bounds: base-2 log scale from 1 µs to ~67 s (27
#: buckets + overflow).  Chosen once for the whole repository so latency
#: histograms from any layer (or process) can be merged bucket by bucket.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2.0**i for i in range(27))

#: Identity of one instrument: (name, sorted (label, value) pairs).
MetricKey = tuple[str, tuple[tuple[str, str], ...]]

_InstrumentT = TypeVar("_InstrumentT", bound="_Instrument")


def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """State shared by every instrument type."""

    __slots__ = ("name", "labels", "always", "_registry", "_lock")

    kind = "instrument"

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        labels: tuple[tuple[str, str], ...],
        always: bool = False,
    ) -> None:
        self.name = name
        self.labels = labels
        self.always = always
        self._registry = registry
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether mutations apply right now (always-on instruments: yes)."""
        return self.always or self._registry.enabled

    def _identity(self) -> dict[str, object]:
        return {"type": self.kind, "name": self.name, "labels": dict(self.labels)}


class Counter(_Instrument):
    """Monotone total.  ``add(n)`` is thread-safe; negative ``n`` is refused."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        labels: tuple[tuple[str, str], ...],
        always: bool = False,
    ) -> None:
        super().__init__(registry, name, labels, always)
        self._value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        if not (self.always or self._registry.enabled):
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, object]:
        return {**self._identity(), "value": self._value}


class Gauge(_Instrument):
    """Point-in-time value with ``set`` / ``add`` (``add`` may be negative)."""

    __slots__ = ("_value",)

    kind = "gauge"

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        labels: tuple[tuple[str, str], ...],
        always: bool = False,
    ) -> None:
        super().__init__(registry, name, labels, always)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not (self.always or self._registry.enabled):
            return
        with self._lock:
            self._value = float(value)

    def add(self, amount: float = 1.0) -> None:
        if not (self.always or self._registry.enabled):
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, object]:
        return {**self._identity(), "value": self._value}


class Histogram(_Instrument):
    """Fixed-bucket distribution; plain-int counts, log-scale by default.

    ``bounds`` are inclusive upper edges (Prometheus ``le`` semantics): an
    observation lands in the first bucket whose bound is >= the value; one
    implicit overflow bucket catches everything beyond the last bound.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count")

    kind = "histogram"

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        labels: tuple[tuple[str, str], ...],
        bounds: Iterable[float] | None = None,
        always: bool = False,
    ) -> None:
        super().__init__(registry, name, labels, always)
        chosen = DEFAULT_LATENCY_BOUNDS if bounds is None else tuple(bounds)
        if not chosen or list(chosen) != sorted(chosen):
            raise ValueError("histogram bounds must be a non-empty ascending sequence")
        self.bounds: tuple[float, ...] = tuple(float(b) for b in chosen)
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not (self.always or self._registry.enabled):
            return
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            total, observed = self._sum, self._count
        return {
            **self._identity(),
            "bounds": list(self.bounds),
            "counts": counts,
            "count": observed,
            "sum": total,
        }


class timed:
    """Context manager recording a span's wall-clock seconds in a histogram.

    The no-op fast path matters: when the histogram's registry is disabled,
    ``__enter__`` skips the clock read entirely, so an instrumented block
    costs two attribute loads and two branches — nothing else.

        with timed(histogram):
            handle_request()
    """

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start: float | None = None

    def __enter__(self) -> timed:
        if self._histogram.enabled:
            self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> bool:
        if self._start is not None:
            self._histogram.observe(time.perf_counter() - self._start)
            self._start = None
        return False


class MetricsRegistry:
    """Get-or-create home of every instrument; snapshot-able to plain dicts."""

    def __init__(self) -> None:
        self.enabled = True
        self._lock = threading.Lock()
        self._metrics: dict[MetricKey, _Instrument] = {}

    # -- instrument construction ----------------------------------------------

    def _get_or_create(
        self,
        cls: type[_InstrumentT],
        name: str,
        labels: Mapping[str, object],
        always: bool,
        **kwargs: Any,
    ) -> _InstrumentT:
        key: MetricKey = (name, _label_key(labels))
        instrument = self._metrics.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._metrics.get(key)
                if instrument is None:
                    instrument = cls(self, name, key[1], always=always, **kwargs)
                    self._metrics[key] = instrument
        if type(instrument) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as a {instrument.kind}"
            )
        return cast("_InstrumentT", instrument)

    def counter(self, name: str, always: bool = False, **labels: object) -> Counter:
        """The counter ``(name, labels)``, created on first use."""
        return self._get_or_create(Counter, name, labels, always)

    def gauge(self, name: str, always: bool = False, **labels: object) -> Gauge:
        """The gauge ``(name, labels)``, created on first use."""
        return self._get_or_create(Gauge, name, labels, always)

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] | None = None,
        always: bool = False,
        **labels: object,
    ) -> Histogram:
        """The histogram ``(name, labels)``, created on first use.

        ``bounds`` applies only on creation; later calls for the same
        identity return the existing instrument regardless.
        """
        return self._get_or_create(Histogram, name, labels, always, bounds=bounds)

    # -- global switches --------------------------------------------------------

    def set_enabled(self, enabled: bool) -> None:
        """Flip telemetry collection (``always=True`` instruments ignore this)."""
        self.enabled = bool(enabled)

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark isolation only)."""
        with self._lock:
            self._metrics.clear()

    # -- export -----------------------------------------------------------------

    def snapshot(self) -> list[dict[str, object]]:
        """Every instrument as a plain dict, in deterministic (name, labels)
        order — the payload of the ``metrics`` service op."""
        with self._lock:
            instruments = sorted(self._metrics.items())
        return [instrument.snapshot() for _key, instrument in instruments]


#: The process-global registry every layer instruments against.
REGISTRY = MetricsRegistry()

#: Module-level conveniences bound to the global registry — the form the
#: instrumented call sites use (``obs.counter("service.requests", op=op)``).
counter = REGISTRY.counter
gauge = REGISTRY.gauge
histogram = REGISTRY.histogram
metrics_snapshot = REGISTRY.snapshot
set_enabled = REGISTRY.set_enabled
