"""Observability: metrics registry, Prometheus exposition, structured logs.

The telemetry layer every runtime surface instruments against:

* :mod:`repro.obs.metrics` — the process-global :data:`REGISTRY` of
  counters, gauges and log-scale histograms, plus the :class:`timed` span
  helper.  Always-on-cheap: disabled collection costs one branch per call.
* :mod:`repro.obs.prometheus` — text exposition (format 0.0.4) and the
  stdlib-only ``GET /metrics`` HTTP endpoint (``repro.cli serve
  --metrics-port N``).
* :mod:`repro.obs.log` — structured JSON/key-value logging on stdlib
  ``logging`` (``--log-json`` / ``--log-level``).

The live snapshot is also served by the query service's ``metrics`` op
(NDJSON and binary transports alike).  See the metric-name catalog in
``docs/architecture.md``.
"""

from repro.obs.log import (
    JsonFormatter,
    StructuredLogger,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    metrics_snapshot,
    set_enabled,
    timed,
)
from repro.obs.prometheus import (
    MetricsHTTPServer,
    render as prometheus_text,
    start_http_server,
)

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "StructuredLogger",
    "configure_logging",
    "counter",
    "gauge",
    "get_logger",
    "histogram",
    "metrics_snapshot",
    "prometheus_text",
    "set_enabled",
    "start_http_server",
    "timed",
]
