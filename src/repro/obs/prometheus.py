"""Prometheus text exposition and the stdlib-only scrape endpoint.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` snapshot in the
Prometheus text exposition format (version 0.0.4) and serves it on an
``http.server`` endpoint — no client library, no dependency, just the
bytes a Prometheus/VictoriaMetrics/Grafana-agent scraper expects:

.. code-block:: text

    # TYPE freesketch_service_requests_total counter
    freesketch_service_requests_total{op="batch_spread",transport="ndjson"} 42
    # TYPE freesketch_service_request_seconds histogram
    freesketch_service_request_seconds_bucket{op="topk",le="0.000256"} 17
    ...
    freesketch_service_request_seconds_sum{op="topk"} 0.0041
    freesketch_service_request_seconds_count{op="topk"} 17

Naming: dotted internal names (``service.requests``) become underscored
metric names under the ``freesketch_`` namespace; counters get the
conventional ``_total`` suffix; histograms expand to cumulative
``_bucket{le=...}`` series plus ``_sum`` / ``_count`` (the internal
buckets are stored non-cumulative — the renderer does the running sum).

The endpoint (:func:`start_http_server`) answers ``GET /metrics`` from a
daemon-threaded ``ThreadingHTTPServer``, so a scrape never touches the
asyncio event loop or the ingest thread — reading the registry is
lock-per-instrument, not stop-the-world.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.metrics import REGISTRY, MetricsRegistry

#: Metric namespace every exported name is prefixed with.
NAMESPACE = "freesketch"

#: Content type of the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _metric_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    return f"{NAMESPACE}_{cleaned}"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Shortest faithful rendering; integers without the trailing ``.0``."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _labels_text(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def render(registry: MetricsRegistry = REGISTRY) -> str:
    """The whole registry in text exposition format (one trailing newline)."""
    lines: list[str] = []
    typed: set[str] = set()
    metric: dict[str, Any]
    for metric in registry.snapshot():
        kind = metric["type"]
        labels = metric["labels"]
        if kind == "counter":
            name = _metric_name(metric["name"]) + "_total"
            prom_type = "counter"
        elif kind == "gauge":
            name = _metric_name(metric["name"])
            prom_type = "gauge"
        else:
            name = _metric_name(metric["name"])
            prom_type = "histogram"
        if name not in typed:
            lines.append(f"# TYPE {name} {prom_type}")
            typed.add(name)
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{_labels_text(labels)} {_format_value(metric['value'])}")
            continue
        cumulative = 0
        for bound, count in zip(metric["bounds"], metric["counts"]):
            cumulative += count
            lines.append(
                f"{name}_bucket{_labels_text(labels, {'le': repr(float(bound))})} "
                f"{cumulative}"
            )
        lines.append(
            f"{name}_bucket{_labels_text(labels, {'le': '+Inf'})} {metric['count']}"
        )
        lines.append(f"{name}_sum{_labels_text(labels)} {repr(float(metric['sum']))}")
        lines.append(f"{name}_count{_labels_text(labels)} {metric['count']}")
    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    """GET /metrics -> text exposition; anything else -> 404.  Silent logs."""

    registry: MetricsRegistry = REGISTRY

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics is served here")
            return
        body = render(self.registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *_args: object) -> None:  # scrapes happen every few seconds
        return None


class MetricsHTTPServer:
    """A running scrape endpoint; ``close()`` stops it (context-manager too)."""

    def __init__(self, server: ThreadingHTTPServer, thread: threading.Thread) -> None:
        self._server = server
        self._thread = thread

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}/metrics"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> MetricsHTTPServer:
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def start_http_server(
    port: int,
    host: str = "127.0.0.1",
    registry: MetricsRegistry = REGISTRY,
) -> MetricsHTTPServer:
    """Serve ``GET /metrics`` for ``registry`` on a daemon thread.

    ``port=0`` binds a free port (read it back from ``.port``).  The server
    thread is a daemon: it never blocks process exit, matching the ingest
    thread's lifecycle semantics.
    """
    handler = type("_BoundMetricsHandler", (_MetricsHandler,), {"registry": registry})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics-http", daemon=True
    )
    thread.start()
    return MetricsHTTPServer(server, thread)
