"""Structured runtime logging on stdlib ``logging``.

The layers below used to operate silently: a worker death surfaced only as
an exception message, a pickle fallback vanished entirely, snapshot writes
left no trace.  This module gives them one structured channel:

* :func:`get_logger` returns a :class:`StructuredLogger` — thin sugar over
  a stdlib logger in the ``repro.*`` hierarchy whose methods take an
  *event name* plus keyword fields (``log.warning("worker_failed",
  worker=3, exitcode=-9)``).  Unconfigured, events >= WARNING still reach
  stderr through logging's last-resort handler, so failure forensics never
  require opting in.
* :func:`configure_logging` installs the process-wide handler:
  ``--log-json`` renders each record as one JSON object per line
  (machine-parseable post-mortems, same spirit as the replay feed),
  otherwise a compact ``level logger event key=value ...`` line.

The structured fields ride in ``record.fields`` (via ``extra``), so any
stdlib handler/filter infrastructure composes with them.  The check in
:meth:`StructuredLogger._log` keeps disabled levels at one
``isEnabledFor`` call — logging in hot paths stays cheap when turned off.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

#: Root of the repository's logger hierarchy.
ROOT_LOGGER = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def _level_for(name: str) -> int:
    try:
        return _LEVELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {name!r}; choose from {', '.join(_LEVELS)}"
        ) from None


def _json_safe(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event, then fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, _json_safe(value))
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(",", ":"))


class KeyValueFormatter(logging.Formatter):
    """Human-first line: ``HH:MM:SS level logger event key=value ...``."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = f"{stamp} {record.levelname.lower():7s} {record.name} {record.getMessage()}"
        fields = getattr(record, "fields", None)
        if fields:
            rendered = " ".join(f"{key}={_json_safe(value)}" for key, value in fields.items())
            line = f"{line} {rendered}"
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


class StructuredLogger:
    """Event + keyword-fields facade over one stdlib logger."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    def _log(self, level: int, event: str, fields: dict[str, object]) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={"fields": fields})

    def debug(self, event: str, **fields: object) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._log(logging.ERROR, event, fields)

    def isEnabledFor(self, level: int) -> bool:  # noqa: N802 - stdlib parity
        return self._logger.isEnabledFor(level)


def get_logger(name: str) -> StructuredLogger:
    """The structured logger ``repro.<name>`` (idempotent, config-free)."""
    qualified = name if name.startswith(ROOT_LOGGER) else f"{ROOT_LOGGER}.{name}"
    return StructuredLogger(logging.getLogger(qualified))


def configure_logging(
    level: str = "info",
    json_mode: bool = False,
    stream: IO[str] | None = None,
) -> logging.Handler:
    """Install (or replace) the process-wide handler on the ``repro`` root.

    Called by the CLI from ``--log-level`` / ``--log-json``; safe to call
    again — the previous handler installed here is removed first, so tests
    and long-lived sessions can reconfigure without duplicating output.
    Returns the installed handler (tests capture its stream).
    """
    root = logging.getLogger(ROOT_LOGGER)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else KeyValueFormatter())
    for existing in list(root.handlers):
        if getattr(existing, "_repro_obs_handler", False):
            root.removeHandler(existing)
    setattr(handler, "_repro_obs_handler", True)
    root.addHandler(handler)
    root.setLevel(_level_for(level))
    root.propagate = False
    return handler
