"""Geometric(1/2) rank functions used by HLL-style sketches.

HyperLogLog, HLL++, vHLL and FreeRS all map each element to a register index
``h`` and a rank ``rho`` distributed Geometric(1/2):
``P(rho = k) = 2^-k`` for ``k = 1, 2, ...``.  The rank is obtained from the
number of leading zero bits of (part of) the element's hash.

We derive both the index and the rank from a single 64-bit hash: the low
bits pick the register, the remaining high bits feed the leading-zero count.
``max_rank`` caps the rank so it fits a ``w``-bit register (the cap is the
same truncation HLL applies when a register has only ``w`` bits).
"""

from __future__ import annotations

import numpy as np

from repro.hashing.mix import MASK64


def rho_from_hash(bits: int, width: int) -> int:
    """Return the position of the first 1-bit in the top ``width`` bits.

    ``bits`` is interpreted as a ``width``-bit unsigned integer; the return
    value is in ``{1, ..., width + 1}`` where ``width + 1`` means all bits
    were zero.  This matches the rho() definition of Flajolet et al.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    bits &= (1 << width) - 1
    if bits == 0:
        return width + 1
    return width - bits.bit_length() + 1


def geometric_rank(hash_value: int, max_rank: int = 64) -> int:
    """Return a Geometric(1/2) rank derived from a 64-bit hash.

    The rank is the number of leading zeros of the hash plus one, capped at
    ``max_rank`` so the value fits in a fixed-width register.
    """
    if max_rank <= 0:
        raise ValueError("max_rank must be positive")
    value = hash_value & MASK64
    rank = 65 - value.bit_length() if value else 65
    return min(rank, max_rank)


def geometric_rank_array(hash_values: np.ndarray, max_rank: int = 64) -> np.ndarray:
    """Vectorised :func:`geometric_rank` over an array of ``uint64`` hashes."""
    if max_rank <= 0:
        raise ValueError("max_rank must be positive")
    values = hash_values.astype(np.uint64, copy=False)
    # bit_length of v is 64 - clz(v); emulate clz via log2 on the float path
    # is unsafe for values near 2**64, so compute bit lengths by successive
    # comparisons on the integer path instead.
    ranks = np.full(values.shape, 65, dtype=np.int64)
    nonzero = values != 0
    if np.any(nonzero):
        nz = values[nonzero]
        bit_lengths = np.zeros(nz.shape, dtype=np.int64)
        work = nz.copy()
        for shift in (32, 16, 8, 4, 2, 1):
            mask = work >= (np.uint64(1) << np.uint64(shift))
            bit_lengths[mask] += shift
            work[mask] >>= np.uint64(shift)
        bit_lengths += 1  # work is now 1 for every nonzero input
        ranks[nonzero] = 65 - bit_lengths
    return np.minimum(ranks, max_rank)
