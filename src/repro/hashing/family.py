"""Indexed families of independent hash functions.

CSE and vHLL build a *virtual sketch* for every user by picking ``m``
positions from a shared array with ``m`` independent hash functions
``f_1(s), ..., f_m(s)``.  :class:`HashFamily` provides exactly that: a family
of ``m`` seeded functions with a common output range, plus a cached
vectorised evaluation that returns all ``m`` positions of a user at once
(the shape needed for the O(m) estimation step of CSE/vHLL).
"""

from __future__ import annotations

import numpy as np

from repro.hashing.mix import MASK64, hash64, hash64_array, splitmix64, splitmix64_array


class HashFamily:
    """A family of ``m`` independent hash functions onto ``{0, ..., range_size-1}``.

    Parameters
    ----------
    m:
        Number of functions in the family.
    range_size:
        Size of the output range of every function.
    seed:
        Master seed; two families with different master seeds are independent.
    """

    def __init__(self, m: int, range_size: int, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError("m must be positive")
        if range_size <= 0:
            raise ValueError("range_size must be positive")
        self.m = m
        self.range_size = range_size
        self.seed = seed
        # Pre-derive one sub-seed per function so evaluation is a single mix.
        base = splitmix64(seed & MASK64)
        self._sub_seeds = np.array(
            [splitmix64((base + 0x632BE59BD9B4E019 * (i + 1)) & MASK64) for i in range(m)],
            dtype=np.uint64,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFamily(m={self.m}, range_size={self.range_size}, seed={self.seed})"

    def position(self, key: object, index: int) -> int:
        """Return ``f_index(key)``, a position in ``{0, ..., range_size-1}``.

        Computed with exactly the same mixing as :meth:`positions`, so the
        scalar and vectorised paths always agree.
        """
        if not 0 <= index < self.m:
            raise IndexError(f"function index {index} outside [0, {self.m})")
        folded = hash64(key)
        return splitmix64(int(self._sub_seeds[index]) ^ folded) % self.range_size

    def positions(self, key: object) -> np.ndarray:
        """Return all ``m`` positions ``(f_1(key), ..., f_m(key))`` as an array.

        The evaluation mixes the folded key with each function's sub-seed in
        one vectorised pass, which keeps the O(m) estimation step of CSE and
        vHLL tolerable in pure Python.
        """
        folded = np.uint64(hash64(key))
        mixed = splitmix64_array(self._sub_seeds ^ folded)
        return (mixed % np.uint64(self.range_size)).astype(np.int64)

    def positions_for_many(self, keys: np.ndarray) -> np.ndarray:
        """Return an ``(len(keys), m)`` matrix of positions for integer keys.

        Row ``i`` equals ``positions(int(keys[i]))``: the integer keys are
        folded through the same seed-0 hash as the scalar path before mixing
        with the per-function sub-seeds.
        """
        return self.positions_from_hashes(keys.astype(np.uint64))

    def positions_from_hashes(self, folded_keys: np.ndarray) -> np.ndarray:
        """Return an ``(len(folded_keys), m)`` position matrix for folded keys.

        ``folded_keys`` are raw 64-bit folds (:func:`repro.hashing.fold_key`)
        — the representation the engine's :class:`~repro.engine.encoding.EncodedBatch`
        carries for users of any type.  Row ``i`` equals ``positions(key_i)``
        bit-for-bit, because the scalar path folds its key through exactly the
        same seed-0 hash before mixing with the per-function sub-seeds.
        """
        folded = hash64_array(folded_keys)[:, None]
        mixed = splitmix64_array(self._sub_seeds[None, :] ^ folded)
        return (mixed % np.uint64(self.range_size)).astype(np.int64)
