"""Low-level 64-bit mixing functions.

The scalar path uses the splitmix64 finaliser, a well-studied avalanche mix
(Steele et al., "Fast splittable pseudorandom number generators") that passes
the usual avalanche tests and is extremely cheap.  Arbitrary Python keys
(strings, bytes, tuples) are first folded to a 64-bit integer with blake2b,
which is deterministic and collision-resistant; integers skip that step and
go straight through the mixer, which is the common case on the hot path
because callers are encouraged to pre-encode users and items as integers.

A vectorised numpy implementation of the same mixer is provided so the
experiment harness can hash millions of edges per call.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

MASK64 = 0xFFFFFFFFFFFFFFFF

_GOLDEN_GAMMA = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB


def splitmix64(value: int) -> int:
    """Return the splitmix64 finaliser of ``value`` (a 64-bit integer).

    The function is a bijection on 64-bit integers with strong avalanche
    behaviour, so it is safe to derive many quantities (bucket index, rank,
    sampling decisions) from disjoint bit ranges of a single output.
    """
    z = (value + _GOLDEN_GAMMA) & MASK64
    z = ((z ^ (z >> 30)) * _MIX_1) & MASK64
    z = ((z ^ (z >> 27)) * _MIX_2) & MASK64
    return (z ^ (z >> 31)) & MASK64


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`splitmix64` over an array of ``uint64`` values."""
    z = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        z += np.uint64(_GOLDEN_GAMMA)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX_1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_2)
        z ^= z >> np.uint64(31)
    return z


def fold_key(key: object) -> int:
    """Fold an arbitrary hashable key into a 64-bit integer.

    Integers are used as-is (modulo 2**64); everything else is serialised and
    digested with blake2b, which keeps the result stable across processes.
    """
    if isinstance(key, (int, np.integer)):
        return int(key) & MASK64
    # Type tags keep values of different types from colliding (e.g. "42" vs
    # b"42"), which matters when users and items come from mixed sources.
    if isinstance(key, bytes):
        data = b"b:" + key
    elif isinstance(key, str):
        data = b"s:" + key.encode("utf-8")
    elif isinstance(key, tuple):
        data = b"t:" + repr(key).encode("utf-8")
    else:
        data = b"o:" + repr(key).encode("utf-8")
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return struct.unpack("<Q", digest)[0]


# Backwards-compatible private alias (the fold was originally module-private).
_fold_key = fold_key


def fold_key_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`fold_key` for arrays of integer keys.

    Returns ``uint64`` folds that agree with ``fold_key(v)`` for every
    element, including the untrusted edges of the integer range:

    * negative ids fold to their two's complement (``v & MASK64``), matching
      the scalar path for signed dtypes;
    * ids ``>= 2**63`` arrive either as ``uint64`` arrays or as ``object``
      arrays of Python ints (numpy cannot represent a mix of negative and
      ``>= 2**63`` values in any fixed dtype) — both are folded per element
      with the scalar rules, so arbitrarily large Python ints wrap modulo
      ``2**64`` exactly like ``fold_key`` does.

    A plain ``astype(np.uint64)`` is *not* equivalent: for ``object`` arrays
    numpy raises ``OverflowError`` on negative values and refuses ints above
    ``2**64``, and float arrays would silently lose low bits, so those inputs
    are routed through the scalar fold.
    """
    array = np.asarray(values)
    if array.dtype.kind == "u":
        return array.astype(np.uint64, copy=False)
    if array.dtype.kind == "i":
        # Signed -> unsigned casts wrap modulo 2**64 (two's complement),
        # which is exactly the scalar `int(key) & MASK64`.
        return array.astype(np.int64).astype(np.uint64)
    return np.array([fold_key(value) for value in array.tolist()], dtype=np.uint64)


def hash64(key: object, seed: int = 0) -> int:
    """Return a deterministic 64-bit hash of ``key`` under ``seed``.

    Different seeds give (approximately) independent hash functions, which is
    how :class:`repro.hashing.family.HashFamily` builds the ``f_1 .. f_m``
    functions required by CSE and vHLL.
    """
    folded = fold_key(key)
    return splitmix64(folded ^ splitmix64(seed & MASK64))


def pair_key(user: object, item: object) -> int:
    """Return a seed-independent 64-bit key identifying a (user, item) edge.

    Equal edges map to equal keys.  ``hash_pair(user, item, seed)`` is defined
    as one extra mix of this key with the seed, which lets batch processors
    pre-compute the key once and re-mix it cheaply for any seed
    (see :mod:`repro.core.batch`).
    """
    hu = fold_key(user)
    hi = fold_key(item)
    return splitmix64(hu ^ _GOLDEN_GAMMA) ^ splitmix64(hi)


def hash_pair(user: object, item: object, seed: int = 0) -> int:
    """Return a 64-bit hash of a (user, item) edge.

    This is the ``h*(e)`` primitive of FreeBS/FreeRS: the hash depends on the
    *pair*, so duplicate edges always collide (a requirement for duplicate
    insensitivity) while distinct edges collide only by chance.
    """
    return splitmix64(pair_key(user, item) ^ splitmix64(seed & MASK64))


def hash64_array(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorised :func:`hash64` for arrays of integer keys."""
    seed_mix = np.uint64(splitmix64(seed & MASK64))
    return splitmix64_array(values.astype(np.uint64) ^ seed_mix)


def to_unit_interval(hash_value: int) -> float:
    """Map a 64-bit hash to a float uniform in ``[0, 1)``.

    Only the top 53 bits are used so that the result is exactly representable
    as a double.
    """
    return (hash_value >> 11) / float(1 << 53)
