"""Deterministic, seedable hashing substrate used by every sketch.

All sketches in this library (LPC, HLL, HLL++, CSE, vHLL, FreeBS, FreeRS)
require hash functions that are

* deterministic across processes (Python's builtin ``hash`` is salted per
  process and therefore unusable),
* cheap to evaluate on the hot update path,
* seedable, so that independent hash functions can be drawn from a family,
* available both for scalar keys and for numpy arrays of pre-hashed keys
  (the vectorised path used by the benchmark harness).

The public surface is:

``hash64(key, seed=0)``
    64-bit hash of an arbitrary key (int, str, bytes, tuple).

``hash_pair(user, item, seed=0)``
    64-bit hash of a (user, item) edge, the primitive used by FreeBS/FreeRS.

``HashFamily(m, seed)``
    An indexed family ``f_1 .. f_m`` of independent hash functions mapping
    keys to ``{0, .., range-1}``, used by CSE and vHLL to pick the bits /
    registers of a user's virtual sketch.

``geometric_rank(hash_value, max_rank)``
    The HLL ``rho`` function: number of leading zeros (plus one) of the hash
    suffix, i.e. a Geometric(1/2) random variable derived from the hash.
"""

from repro.hashing.mix import (
    MASK64,
    fold_key,
    fold_key_array,
    hash64,
    hash_pair,
    hash64_array,
    pair_key,
    splitmix64,
    splitmix64_array,
    to_unit_interval,
)
from repro.hashing.family import HashFamily
from repro.hashing.geometric import geometric_rank, geometric_rank_array, rho_from_hash

__all__ = [
    "MASK64",
    "fold_key",
    "fold_key_array",
    "hash64",
    "hash_pair",
    "hash64_array",
    "pair_key",
    "splitmix64",
    "splitmix64_array",
    "to_unit_interval",
    "HashFamily",
    "geometric_rank",
    "geometric_rank_array",
    "rho_from_hash",
]
