"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes a ``run(config)`` function returning an
:class:`repro.experiments.report.Table` (or a list of them) that prints the
same rows/series the paper reports.  The registry in
:mod:`repro.experiments.runner` maps experiment identifiers (``table1``,
``figure5`` ...) to those functions; the CLI and the benchmark suite both go
through it, so a benchmark run and ``freesketch run-experiment figure5``
produce identical numbers for the same configuration.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import Table
from repro.experiments.runner import EXPERIMENTS, list_experiments, run_experiment

__all__ = ["ExperimentConfig", "Table", "EXPERIMENTS", "run_experiment", "list_experiments"]
