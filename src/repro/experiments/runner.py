"""Experiment registry and runner.

Maps stable experiment identifiers to the ``run(config)`` functions of the
per-experiment modules.  The identifiers follow the paper's artefact names
(``table1``, ``figure3`` ...), plus ``ablation_*`` for the additional studies
described in DESIGN.md.
"""

from __future__ import annotations

from collections.abc import Callable

import inspect

from repro.experiments import (
    ablation_bs_vs_rs,
    ablation_m_sensitivity,
    ablation_memory,
    ablation_register_width,
    figure2_ccdf,
    figure3_runtime,
    figure4_scatter,
    figure5_rse,
    figure6_spreaders_time,
    parallel_ingest,
    table1_datasets,
    table2_spreaders,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import Table

ExperimentFunction = Callable[..., Table]

#: Registry of every reproducible artefact, keyed by experiment id.
EXPERIMENTS: dict[str, ExperimentFunction] = {
    "table1": table1_datasets.run,
    "figure2": figure2_ccdf.run,
    "figure3": figure3_runtime.run,
    "figure4": figure4_scatter.run,
    "figure5": figure5_rse.run,
    "figure6": figure6_spreaders_time.run,
    "table2": table2_spreaders.run,
    "ablation_m_sensitivity": ablation_m_sensitivity.run,
    "ablation_bs_vs_rs": ablation_bs_vs_rs.run,
    "ablation_memory": ablation_memory.run,
    "ablation_register_width": ablation_register_width.run,
    "parallel_ingest": parallel_ingest.run,
}

#: Short human-readable description per experiment id (shown by the CLI).
DESCRIPTIONS: dict[str, str] = {
    "table1": "Table I — dataset summary statistics",
    "figure2": "Figure 2 — CCDF of user cardinalities",
    "figure3": "Figure 3 — per-update runtime vs m",
    "figure4": "Figure 4 — estimated vs actual cardinality (Orkut)",
    "figure5": "Figure 5 — RSE vs cardinality on every dataset",
    "figure6": "Figure 6 — super-spreader detection over time (sanjose)",
    "table2": "Table II — super-spreader detection on every dataset",
    "ablation_m_sensitivity": "Ablation — CSE/vHLL sensitivity to m",
    "ablation_bs_vs_rs": "Ablation — FreeBS vs FreeRS cross-over",
    "ablation_memory": "Ablation — accuracy vs memory budget",
    "ablation_register_width": "Ablation — FreeRS register width under fixed memory",
    "parallel_ingest": "Runtime — multiprocess parallel-ingest scaling and parity",
}


def list_experiments() -> list[str]:
    """Return the identifiers of all registered experiments."""
    return list(EXPERIMENTS)


def run_experiment(name: str, config: ExperimentConfig | None = None, **kwargs) -> Table:
    """Run one experiment by identifier and return its result table.

    Keyword arguments are validated against the experiment function's
    signature *before* the run starts, so a typo fails immediately with the
    accepted names instead of exploding minutes into a sweep.
    """
    try:
        function = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {name!r}; known experiments: {known}") from None
    parameters = inspect.signature(function).parameters
    accepts_any = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD for parameter in parameters.values()
    )
    if not accepts_any:
        accepted = list(parameters)[1:]  # first parameter is the config
        unknown = sorted(set(kwargs) - set(accepted))
        if unknown:
            raise TypeError(
                f"experiment {name!r} got unexpected keyword arguments {unknown}; "
                f"accepted keywords: {accepted}"
            )
    return function(config, **kwargs)
