"""Ablation A3 — accuracy versus the shared memory budget ``M``.

Sweeps the shared memory budget and reports the RSE of all four sharing
methods (FreeBS, FreeRS, CSE, vHLL) on one dataset.  Every method improves
as ``M`` grows, but the parameter-free methods improve monotonically and
remain ahead at every budget, while CSE/vHLL are additionally limited by
their fixed ``m`` — the practical message of the paper's Section V.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.metrics import relative_standard_error
from repro.baselines.exact import ExactCounter
from repro.experiments.config import ExperimentConfig
from repro.experiments.estimators import build_estimators
from repro.experiments.report import Table
from repro.streams.datasets import DATASETS

#: Memory budgets swept by the ablation, as multipliers of the config budget.
DEFAULT_MULTIPLIERS = [0.25, 0.5, 1.0, 2.0]


def run(
    config: ExperimentConfig | None = None,
    dataset: str = "chicago",
    multipliers: list[float] | None = None,
) -> Table:
    """Sweep the memory budget and report every sharing method's RSE."""
    config = config or ExperimentConfig()
    multipliers = multipliers or DEFAULT_MULTIPLIERS
    stream = DATASETS[dataset].load(scale=config.dataset_scale)
    pairs = stream.pairs()
    exact = ExactCounter()
    for user, item in pairs:
        exact.update(user, item)
    truth = exact.cardinalities()
    methods = ["FreeBS", "FreeRS", "CSE", "vHLL"]
    table = Table(
        title=f"Ablation — accuracy vs memory budget ({dataset})",
        columns=["memory_bits", "method", "rse"],
    )
    for multiplier in multipliers:
        memory_bits = max(1 << 12, int(config.memory_bits * multiplier))
        point_config = replace(config, memory_bits=memory_bits)
        estimators = build_estimators(point_config, stream.user_count, methods=methods)
        for user, item in pairs:
            for estimator in estimators.values():
                estimator.update(user, item)
        for method in methods:
            table.add_row(
                memory_bits,
                method,
                relative_standard_error(truth, estimators[method].estimates(), 2),
            )
    table.add_note("all methods improve with memory; FreeBS/FreeRS stay ahead at every budget")
    return table
