"""Experiment — parallel-ingest runtime scaling and consistency.

Not a paper artefact: the paper's Section VI argues FreeBS/FreeRS sustain
line-rate ingest under a fixed memory budget; this experiment exercises the
reproduction's scale-out path (:mod:`repro.runtime`) on a dataset stand-in.
For each worker count it reports wall-clock ingest time and throughput, plus
whether the merged estimates are *bit-identical* to the single-process run
with the same shard count — the runtime's correctness contract.

Speedup numbers are hardware-dependent (worker processes must fit on real
cores); the ``estimates_match`` column must be ``True`` everywhere on any
machine.
"""

from __future__ import annotations

from collections.abc import Iterable


from repro.experiments.config import ExperimentConfig
from repro.experiments.report import Table
from repro.runtime import parallel_ingest
from repro.streams.datasets import DATASETS


def run(
    config: ExperimentConfig | None = None,
    dataset: str = "chicago",
    method: str = "vHLL",
    workers: Iterable[int] = (1, 2),
    chunk_size: int | None = None,
) -> Table:
    """Sweep worker counts over one dataset; verify single-process parity."""
    config = config or ExperimentConfig()
    worker_counts: list[int] = sorted({int(count) for count in workers})
    if not worker_counts or worker_counts[0] <= 0:
        raise ValueError("workers must be a non-empty iterable of positive counts")
    stream = DATASETS[dataset].load(scale=config.dataset_scale)
    stream.pairs()  # materialise once so every run replays identical input
    shards = max(worker_counts)
    table = Table(
        title=f"Parallel ingest — {method} on {dataset} ({shards} shards)",
        columns=[
            "workers",
            "shards",
            "pairs",
            "seconds",
            "pairs_per_sec",
            "speedup",
            "estimates_match",
        ],
    )
    reference = None
    for count in worker_counts:
        report = parallel_ingest(
            stream,
            method=method,
            config=config,
            expected_users=max(1, stream.user_count),
            workers=count,
            shards=shards,
            chunk_size=chunk_size,
        )
        if reference is None:
            reference = report
        table.add_row(
            count,
            shards,
            report.pairs,
            round(report.seconds, 4),
            round(report.pairs_per_second),
            round(reference.seconds / report.seconds, 2) if report.seconds else 0.0,
            report.estimates() == reference.estimates(),
        )
    table.add_note(
        "estimates_match must be True on every row (bit-identical merge contract); "
        "speedup depends on available cores"
    )
    return table
