"""Experiment E2 — Figure 2: CCDFs of user cardinalities.

Figure 2 of the paper plots, for every dataset, the complementary CDF of
user cardinalities on log-log axes; all curves are heavy tailed.  This
experiment prints the CCDF of each stand-in evaluated at logarithmically
spaced cardinalities — the same series a plotting script would consume.
"""

from __future__ import annotations

from repro.analysis.ccdf import ccdf_at, logarithmic_thresholds
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import Table
from repro.streams.datasets import DATASETS


def run(config: ExperimentConfig | None = None) -> Table:
    """Compute the CCDF series of every dataset stand-in."""
    config = config or ExperimentConfig()
    table = Table(
        title="Figure 2 — CCDF of user cardinalities",
        columns=["dataset", "cardinality", "ccdf"],
    )
    for name in config.datasets:
        stream = DATASETS[name].load(scale=config.dataset_scale)
        cardinalities = stream.cardinalities()
        thresholds = logarithmic_thresholds(max(cardinalities.values()), points_per_decade=3)
        evaluated = ccdf_at(cardinalities, thresholds)
        for threshold in thresholds:
            table.add_row(name, threshold, evaluated[threshold])
    table.add_note("heavy-tailed (approximately straight on log-log axes), as in the paper")
    return table
