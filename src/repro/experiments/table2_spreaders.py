"""Experiment E7 — Table II: super-spreader detection on every dataset.

Table II of the paper reports, for every dataset, the final FNR and FPR of
super-spreader detection (threshold ``Delta``) for FreeBS, FreeRS, CSE, vHLL
and HLL++.  The paper marks CSE as "N/A" on Twitter and Orkut because its
bounded estimation range makes it report an empty spreader set; the
reproduction reports whatever the implementation produces and flags empty
detections in a dedicated column.
"""

from __future__ import annotations

from collections.abc import Iterable


from repro.detection.evaluation import detection_error_at_end
from repro.experiments.config import ExperimentConfig
from repro.experiments.estimators import build_estimators
from repro.experiments.report import Table
from repro.streams.datasets import DATASETS

#: Methods shown in the paper's Table II.
TABLE2_METHODS = ["FreeBS", "FreeRS", "CSE", "vHLL", "HLL++"]


def run(
    config: ExperimentConfig | None = None,
    methods: Iterable[str] | None = None,
) -> Table:
    """Evaluate end-of-stream detection FNR/FPR on every dataset."""
    config = config or ExperimentConfig()
    method_names: list[str] = list(methods) if methods is not None else list(TABLE2_METHODS)
    table = Table(
        title=f"Table II — super-spreader detection (delta={config.delta})",
        columns=["dataset", "method", "true_spreaders", "detected", "fnr", "fpr"],
    )
    for dataset in config.datasets:
        stream = DATASETS[dataset].load(scale=config.dataset_scale)
        pairs = stream.pairs()
        estimators = build_estimators(config, stream.user_count, methods=method_names)
        for method in method_names:
            result = detection_error_at_end(estimators[method], pairs, delta=config.delta)
            table.add_row(
                dataset,
                method,
                result.true_spreaders,
                result.detected_spreaders,
                result.false_negative_rate,
                result.false_positive_rate,
            )
    table.add_note("paper reports CSE as N/A on Twitter/Orkut (empty detection set)")
    return table
