"""Experiment E1 — Table I: summary of the evaluation datasets.

The paper's Table I lists, for each dataset, the number of users, the
maximum user cardinality and the total cardinality.  This experiment
regenerates the same three columns for the synthetic stand-ins and prints
the paper's original values next to them, so the scaling factor applied by
the reproduction is visible at a glance.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import Table
from repro.streams.datasets import DATASETS


def run(config: ExperimentConfig | None = None) -> Table:
    """Regenerate Table I for every dataset stand-in in the configuration."""
    config = config or ExperimentConfig()
    table = Table(
        title="Table I — dataset summary (stand-ins vs paper)",
        columns=[
            "dataset",
            "users",
            "max_cardinality",
            "total_cardinality",
            "paper_users",
            "paper_max_cardinality",
            "paper_total_cardinality",
        ],
    )
    for name in config.datasets:
        spec = DATASETS[name]
        stream = spec.load(scale=config.dataset_scale)
        table.add_row(
            name,
            stream.user_count,
            stream.max_cardinality,
            stream.total_cardinality,
            spec.paper_users,
            spec.paper_max_cardinality,
            spec.paper_total_cardinality,
        )
    table.add_note(
        f"stand-ins generated at dataset_scale={config.dataset_scale}; "
        "paper columns quote the original Table I"
    )
    return table
