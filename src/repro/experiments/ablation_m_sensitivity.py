"""Ablation A1 — sensitivity of CSE/vHLL to the virtual sketch size ``m``.

Challenge 1 of the paper: CSE and vHLL need ``m`` tuned per workload — a
small ``m`` cannot represent heavy users, a large ``m`` drowns light users in
noisy bits/registers — whereas FreeBS and FreeRS have no such parameter.
This ablation sweeps ``m`` for CSE and vHLL on one dataset and reports the
RSE separately for light users and heavy users, with the (m-independent)
FreeBS/FreeRS errors as reference lines.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.metrics import relative_standard_error
from repro.baselines.exact import ExactCounter
from repro.experiments.config import ExperimentConfig
from repro.experiments.estimators import build_estimators
from repro.experiments.report import Table
from repro.streams.datasets import DATASETS

#: Virtual sketch sizes swept by the ablation.
DEFAULT_SWEEP = [64, 128, 256, 512, 1024]


def _split_rse(
    truth: dict[object, int], estimates: dict[object, float], split: int
) -> dict[str, float]:
    light = {user: n for user, n in truth.items() if 0 < n < split}
    heavy = {user: n for user, n in truth.items() if n >= split}
    return {
        "light": relative_standard_error(light, estimates) if light else 0.0,
        "heavy": relative_standard_error(heavy, estimates) if heavy else 0.0,
    }


def run(
    config: ExperimentConfig | None = None,
    dataset: str = "Orkut",
    sweep: list[int] | None = None,
) -> Table:
    """Sweep ``m`` for CSE/vHLL and report light/heavy-user RSE per point."""
    config = config or ExperimentConfig()
    sweep = sweep or DEFAULT_SWEEP
    stream = DATASETS[dataset].load(scale=config.dataset_scale)
    pairs = stream.pairs()
    exact = ExactCounter()
    for user, item in pairs:
        exact.update(user, item)
    truth = exact.cardinalities()
    split = max(10, int(sorted(truth.values())[int(0.9 * len(truth))]))
    table = Table(
        title=f"Ablation — CSE/vHLL sensitivity to m ({dataset}, heavy means n >= {split})",
        columns=["m", "method", "rse_light_users", "rse_heavy_users"],
    )
    # Reference: parameter-free methods, evaluated once (their error does not
    # depend on m).
    reference = build_estimators(config, stream.user_count, methods=["FreeBS", "FreeRS"])
    for user, item in pairs:
        for estimator in reference.values():
            estimator.update(user, item)
    for method, estimator in reference.items():
        rse = _split_rse(truth, estimator.estimates(), split)
        table.add_row("-", method, rse["light"], rse["heavy"])
    for m in sweep:
        point_config = replace(config, virtual_size=m)
        estimators = build_estimators(point_config, stream.user_count, methods=["CSE", "vHLL"])
        for user, item in pairs:
            for estimator in estimators.values():
                estimator.update(user, item)
        for method, estimator in estimators.items():
            rse = _split_rse(truth, estimator.estimates(), split)
            table.add_row(m, method, rse["light"], rse["heavy"])
    table.add_note(
        "CSE/vHLL light-user error grows with m while heavy-user error shrinks — "
        "no single m wins; FreeBS/FreeRS need no such parameter"
    )
    return table
