"""Experiment E3 — Figure 3: per-update runtime versus the virtual sketch size m.

The paper measures the average time to process one element (update the
shared sketch *and* refresh the arriving user's estimate) as ``m`` grows.
FreeBS/FreeRS do O(1) work per element so their curves are flat, while CSE,
vHLL, LPC and HLL++ do O(m) work (the virtual/private sketch must be scanned
to refresh the estimate) so their curves grow roughly linearly with ``m``.

Absolute times are pure-Python times and therefore orders of magnitude
slower than the paper's C implementations; the reproduced claim is the
*relative shape* — flat versus growing — and the ordering of the methods.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.core.base import CardinalityEstimator
from repro.experiments.config import ExperimentConfig
from repro.experiments.estimators import METHOD_ORDER, build_estimators
from repro.experiments.report import Table
from repro.streams.generators import zipf_bipartite_stream

#: Virtual sketch sizes swept by the experiment (paper: 2**7 .. 2**13).
DEFAULT_SWEEP = [64, 128, 256, 512, 1024]


def _time_updates(estimator: CardinalityEstimator, pairs: list[tuple]) -> float:
    """Return the average seconds per update over the given pairs."""
    start = time.perf_counter()
    for user, item in pairs:
        estimator.update(user, item)
    elapsed = time.perf_counter() - start
    return elapsed / max(1, len(pairs))


def run(
    config: ExperimentConfig | None = None,
    sweep: list[int] | None = None,
    pairs_per_point: int = 4000,
) -> Table:
    """Measure per-update time for every method at every virtual sketch size."""
    config = config or ExperimentConfig()
    sweep = sweep or DEFAULT_SWEEP
    pairs = zipf_bipartite_stream(
        n_users=500,
        n_pairs=pairs_per_point,
        alpha=1.3,
        max_cardinality=500,
        duplicate_factor=0.3,
        seed=config.seed,
    )[:pairs_per_point]
    expected_users = len({user for user, _ in pairs})
    table = Table(
        title="Figure 3 — average update time (seconds) vs m",
        columns=["m"] + METHOD_ORDER,
    )
    for m in sweep:
        point_config = replace(config, virtual_size=m)
        # Per-user baselines are dimensioned so each user gets ~m bits/registers,
        # matching the x-axis semantics of the paper's figure.
        estimators: dict[str, CardinalityEstimator] = build_estimators(
            point_config, expected_users=max(1, point_config.memory_bits // max(m, 1))
        )
        row: list[object] = [m]
        for method in METHOD_ORDER:
            row.append(_time_updates(estimators[method], pairs))
        table.add_row(*row)
    table.add_note(
        "FreeBS/FreeRS are O(1) per update (flat); CSE/vHLL/LPC/HLL++ are O(m) "
        "(growing), matching the paper's Figure 3 shape"
    )
    return table
