"""Experiment E5 — Figure 5: RSE versus cardinality on every dataset.

The paper's headline accuracy figure: for each dataset and each method, the
relative standard error of the cardinality estimates as a function of the
true cardinality.  FreeBS and FreeRS sit one or more orders of magnitude
below CSE, vHLL and HLL++ across the whole range; CSE's error blows up once
cardinalities approach its ``m ln m`` range limit; bit sharing beats register
sharing for small cardinalities and vice versa for large ones.
"""

from __future__ import annotations

from collections.abc import Iterable


from repro.analysis.metrics import rse_curve
from repro.baselines.exact import ExactCounter
from repro.experiments.config import ExperimentConfig
from repro.experiments.estimators import build_estimators
from repro.experiments.report import Table
from repro.streams.datasets import DATASETS

#: Methods shown in the paper's Figure 5 (LPC is dropped there as well).
FIGURE5_METHODS = ["FreeBS", "FreeRS", "CSE", "vHLL", "HLL++"]


def run(
    config: ExperimentConfig | None = None,
    datasets: Iterable[str] | None = None,
    methods: Iterable[str] | None = None,
) -> Table:
    """Compute RSE-vs-cardinality curves for every dataset and method."""
    config = config or ExperimentConfig()
    dataset_names: list[str] = list(datasets) if datasets is not None else list(config.datasets)
    method_names: list[str] = list(methods) if methods is not None else list(FIGURE5_METHODS)
    table = Table(
        title="Figure 5 — RSE vs cardinality",
        columns=["dataset", "method", "cardinality", "rse", "users_in_bucket"],
    )
    for dataset in dataset_names:
        stream = DATASETS[dataset].load(scale=config.dataset_scale)
        pairs = stream.pairs()
        exact = ExactCounter()
        estimators = build_estimators(config, stream.user_count, methods=method_names)
        for user, item in pairs:
            exact.update(user, item)
            for estimator in estimators.values():
                estimator.update(user, item)
        truth = exact.cardinalities()
        for method in method_names:
            estimates: dict[object, float] = estimators[method].estimates()
            for center, rse, count in rse_curve(truth, estimates, buckets_per_decade=3):
                table.add_row(dataset, method, center, rse, count)
    table.add_note(
        "FreeBS/FreeRS RSE should sit well below CSE/vHLL/HLL++ across the range "
        "(paper reports up to 10,000x)"
    )
    return table
