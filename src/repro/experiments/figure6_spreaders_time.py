"""Experiment E6 — Figure 6: super-spreader detection quality over time.

The paper cuts the sanjose trace into minutes and reports FNR/FPR of
super-spreader detection (relative threshold ``Delta``) after each minute,
for FreeBS, FreeRS, CSE, vHLL and HLL++.  The reproduction cuts the
sanjose stand-in into ``checkpoints`` equal slices and evaluates the same
metrics at every slice boundary with exact ground truth at that point.
"""

from __future__ import annotations

from collections.abc import Iterable


from repro.detection.evaluation import detection_error_over_time
from repro.experiments.config import ExperimentConfig
from repro.experiments.estimators import build_estimators
from repro.experiments.report import Table
from repro.streams.datasets import DATASETS

#: Methods shown in the paper's Figure 6.
FIGURE6_METHODS = ["FreeBS", "FreeRS", "CSE", "vHLL", "HLL++"]


def run(
    config: ExperimentConfig | None = None,
    dataset: str = "sanjose",
    methods: Iterable[str] | None = None,
) -> Table:
    """Evaluate detection FNR/FPR at every checkpoint of the stream."""
    config = config or ExperimentConfig()
    method_names: list[str] = list(methods) if methods is not None else list(FIGURE6_METHODS)
    stream = DATASETS[dataset].load(scale=config.dataset_scale)
    pairs = stream.pairs()
    table = Table(
        title=f"Figure 6 — super-spreader detection over time ({dataset}, delta={config.delta})",
        columns=["method", "checkpoint", "pairs_processed", "true_spreaders", "fnr", "fpr"],
    )
    estimators = build_estimators(config, stream.user_count, methods=method_names)
    for method in method_names:
        results = detection_error_over_time(
            estimators[method], pairs, delta=config.delta, checkpoints=config.checkpoints
        )
        for result in results:
            table.add_row(
                method,
                result.checkpoint,
                result.pairs_processed,
                result.true_spreaders,
                result.false_negative_rate,
                result.false_positive_rate,
            )
    table.add_note("FreeBS/FreeRS FNR and FPR should be several times below the baselines")
    return table
