"""Factory that builds the six compared estimators under one memory budget.

Implements the paper's equal-memory protocol (Section V-B):

* FreeBS and CSE get ``M`` bits;
* FreeRS and vHLL get ``M / w`` registers of ``w`` bits;
* per-user LPC gets ``M / |S|`` bits per user;
* per-user HLL++ gets ``M / (6 |S|)`` six-bit registers per user;
* CSE and vHLL share the same virtual sketch size ``m``.

``expected_users`` is the dataset's user count, mirroring the paper's setup
where the per-user baselines are dimensioned from the known population.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.baselines import CSE, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.core import FreeBS, FreeRS
from repro.core.base import CardinalityEstimator
from repro.experiments.config import ExperimentConfig

#: Order in which methods appear in every table (matches the paper's legends).
METHOD_ORDER = ["FreeBS", "FreeRS", "CSE", "vHLL", "LPC", "HLL++"]


def build_estimators(
    config: ExperimentConfig,
    expected_users: int,
    methods: Iterable[str] | None = None,
) -> Dict[str, CardinalityEstimator]:
    """Build the requested estimators under the configuration's memory budget.

    Parameters
    ----------
    config:
        Experiment configuration (memory budget, virtual sketch size, seed).
    expected_users:
        User population used to dimension the per-user baselines.
    methods:
        Subset of :data:`METHOD_ORDER` to build; defaults to all six.
    """
    selected: List[str] = list(methods) if methods is not None else list(METHOD_ORDER)
    unknown = set(selected) - set(METHOD_ORDER)
    if unknown:
        raise ValueError(f"unknown methods {sorted(unknown)}; known: {METHOD_ORDER}")
    registers = config.registers
    virtual_size = min(config.virtual_size, max(16, registers // 4))
    estimators: Dict[str, CardinalityEstimator] = {}
    for method in selected:
        if method == "FreeBS":
            estimators[method] = FreeBS(config.memory_bits, seed=config.seed)
        elif method == "FreeRS":
            estimators[method] = FreeRS(
                registers, register_width=config.register_width, seed=config.seed
            )
        elif method == "CSE":
            estimators[method] = CSE(
                config.memory_bits, virtual_size=config.virtual_size, seed=config.seed
            )
        elif method == "vHLL":
            estimators[method] = VirtualHLL(
                registers,
                virtual_size=virtual_size,
                register_width=config.register_width,
                seed=config.seed,
            )
        elif method == "LPC":
            estimators[method] = PerUserLPC(
                config.memory_bits, expected_users=expected_users, seed=config.seed
            )
        elif method == "HLL++":
            estimators[method] = PerUserHLLPP(
                config.memory_bits, expected_users=expected_users, seed=config.seed
            )
    return estimators
