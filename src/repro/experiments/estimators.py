"""Factory that builds the six compared estimators under one memory budget.

Implements the paper's equal-memory protocol (Section V-B):

* FreeBS and CSE get ``M`` bits;
* FreeRS and vHLL get ``M / w`` registers of ``w`` bits;
* per-user LPC gets ``M / |S|`` bits per user;
* per-user HLL++ gets ``M / (6 |S|)`` six-bit registers per user;
* CSE and vHLL share the same virtual sketch size ``m``.

``expected_users`` is the dataset's user count, mirroring the paper's setup
where the per-user baselines are dimensioned from the known population.

With ``shards=K`` every method is wrapped in a
:class:`repro.engine.ShardedEstimator` that partitions users across ``K``
independent sub-sketches, each dimensioned at ``1/K`` of the memory budget
(so the total stays ``M``) — the scale-out configuration exposed by the CLI's
``--shards`` flag.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List

from repro.baselines import CSE, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.core import FreeBS, FreeRS
from repro.core.base import CardinalityEstimator
from repro.engine import ShardedEstimator
from repro.experiments.config import ExperimentConfig

#: Order in which methods appear in every table (matches the paper's legends).
METHOD_ORDER = ["FreeBS", "FreeRS", "CSE", "vHLL", "LPC", "HLL++"]


def build_estimator(
    method: str,
    config: ExperimentConfig,
    expected_users: int,
) -> CardinalityEstimator:
    """Build one estimator by method name under the configuration's budget."""
    registers = config.registers
    virtual_size = min(config.virtual_size, max(16, registers // 4), registers - 1)
    if method == "FreeBS":
        return FreeBS(config.memory_bits, seed=config.seed)
    if method == "FreeRS":
        return FreeRS(registers, register_width=config.register_width, seed=config.seed)
    if method == "CSE":
        # Clamp so heavily-sharded (small per-shard budget) configs stay valid.
        cse_virtual = min(config.virtual_size, config.memory_bits)
        return CSE(config.memory_bits, virtual_size=cse_virtual, seed=config.seed)
    if method == "vHLL":
        return VirtualHLL(
            registers,
            virtual_size=virtual_size,
            register_width=config.register_width,
            seed=config.seed,
        )
    if method == "LPC":
        return PerUserLPC(config.memory_bits, expected_users=expected_users, seed=config.seed)
    if method == "HLL++":
        return PerUserHLLPP(config.memory_bits, expected_users=expected_users, seed=config.seed)
    raise ValueError(f"unknown method {method!r}; known: {METHOD_ORDER}")


def build_estimators(
    config: ExperimentConfig,
    expected_users: int,
    methods: Iterable[str] | None = None,
    shards: int = 1,
) -> Dict[str, CardinalityEstimator]:
    """Build the requested estimators under the configuration's memory budget.

    Parameters
    ----------
    config:
        Experiment configuration (memory budget, virtual sketch size, seed).
    expected_users:
        User population used to dimension the per-user baselines.
    methods:
        Subset of :data:`METHOD_ORDER` to build; defaults to all six.
    shards:
        With ``shards > 1`` every estimator is a
        :class:`~repro.engine.ShardedEstimator` of that many sub-sketches,
        each with ``1/shards`` of the memory budget and expected users.
    """
    selected: List[str] = list(methods) if methods is not None else list(METHOD_ORDER)
    unknown = set(selected) - set(METHOD_ORDER)
    if unknown:
        raise ValueError(f"unknown methods {sorted(unknown)}; known: {METHOD_ORDER}")
    if shards <= 0:
        raise ValueError("shards must be positive")
    if shards == 1:
        return {
            method: build_estimator(method, config, expected_users) for method in selected
        }
    shard_memory = config.memory_bits // shards
    if shard_memory < 64:
        raise ValueError(
            f"memory budget of {config.memory_bits} bits is too small for "
            f"{shards} shards (each shard would get {shard_memory} < 64 bits); "
            "raise the budget or lower the shard count"
        )
    shard_config = replace(config, memory_bits=shard_memory)
    shard_users = max(1, expected_users // shards)
    estimators: Dict[str, CardinalityEstimator] = {}
    for method in selected:

        def factory(_shard_index: int, _method: str = method) -> CardinalityEstimator:
            return build_estimator(_method, shard_config, shard_users)

        estimators[method] = ShardedEstimator(factory, shards=shards, seed=config.seed)
    return estimators
