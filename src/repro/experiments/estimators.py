"""Facade over :mod:`repro.registry` kept for the historical import path.

The six compared estimators used to be constructed here by an if/elif chain
implementing the paper's equal-memory protocol (Section V-B).  Construction
now lives in the central method registry — one documented
:class:`~repro.registry.MethodSpec` per method, including the unified
``virtual_size`` clamp — and this module simply re-exports the factory under
its original names so experiments, tests and downstream scripts keep working
unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable


from repro.core.base import CardinalityEstimator
from repro.registry import METHOD_ORDER, build, build_many

__all__ = ["METHOD_ORDER", "build_estimator", "build_estimators"]


def build_estimator(
    method: str,
    config,
    expected_users: int,
) -> CardinalityEstimator:
    """Build one estimator by method name (delegates to :func:`repro.registry.build`)."""
    return build(method, config, expected_users)


def build_estimators(
    config,
    expected_users: int,
    methods: Iterable[str] | None = None,
    shards: int = 1,
) -> dict[str, CardinalityEstimator]:
    """Build the requested estimators under one shared memory budget.

    Delegates to :func:`repro.registry.build_many`; with ``shards > 1`` every
    estimator is a :class:`~repro.engine.ShardedEstimator` of that many
    sub-sketches, each with ``1/shards`` of the memory budget.
    """
    return build_many(config, expected_users, methods=methods, shards=shards)
