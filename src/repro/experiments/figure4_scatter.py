"""Experiment E4 — Figure 4: estimated versus actual cardinalities (Orkut).

The paper's Figure 4 is a scatter plot of estimated versus actual
cardinality for each of the six methods on the Orkut dataset.  A terminal
reproduction summarises the scatter per geometric cardinality bucket: the
mean estimate plus a p10–p90 band.  Points near the diagonal (mean close to
the bucket centre, narrow band) indicate good estimates; CSE and LPC pin at
their ``m ln m`` range limit for heavy users, and vHLL/HLL++ show a wide
band at small cardinalities — the paper's qualitative findings.
"""

from __future__ import annotations


from repro.analysis.metrics import scatter_summary
from repro.baselines.exact import ExactCounter
from repro.experiments.config import ExperimentConfig
from repro.experiments.estimators import METHOD_ORDER, build_estimators
from repro.experiments.report import Table
from repro.streams.datasets import DATASETS


def run(config: ExperimentConfig | None = None, dataset: str = "Orkut") -> Table:
    """Reproduce the Figure 4 scatter summaries on one dataset."""
    config = config or ExperimentConfig()
    stream = DATASETS[dataset].load(scale=config.dataset_scale)
    pairs = stream.pairs()
    exact = ExactCounter()
    estimators = build_estimators(config, expected_users=stream.user_count)
    for user, item in pairs:
        exact.update(user, item)
        for estimator in estimators.values():
            estimator.update(user, item)
    truth = exact.cardinalities()
    table = Table(
        title=f"Figure 4 — estimated vs actual cardinality ({dataset})",
        columns=["method", "actual_bucket", "mean_estimate", "p10_estimate", "p90_estimate"],
    )
    for method in METHOD_ORDER:
        estimates: dict[object, float] = estimators[method].estimates()
        for center, mean, p10, p90 in scatter_summary(truth, estimates):
            table.add_row(method, center, mean, p10, p90)
    table.add_note(
        "rows near the diagonal (mean_estimate ~ actual_bucket) are accurate; "
        "CSE/LPC saturate at m ln m for heavy users"
    )
    return table
