"""Shared experiment configuration.

The paper's configuration is ``M = 5e8`` bits, ``m = 1024`` and 5-bit
registers on datasets with millions of users.  A pure-Python reproduction
cannot replay billions of updates, so the default configuration scales the
datasets down (see :mod:`repro.streams.datasets`) and scales the memory
budget with them; the *load factor* (distinct pairs per shared bit), which is
the quantity that controls every estimator's error, stays in the same regime
as the paper's.

Two presets are provided:

* :meth:`ExperimentConfig.quick` — finishes in seconds; used by the test
  suite and the default benchmark run.
* :meth:`ExperimentConfig.full` — a few minutes per experiment; closer to the
  paper's operating point and the preset used for EXPERIMENTS.md numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by every experiment."""

    #: Dataset scale factor applied to every stand-in (1.0 = registry size).
    dataset_scale: float = 1.0
    #: Shared memory budget M in bits (bit-sharing methods use M bits,
    #: register-sharing methods use M / register_width registers).
    memory_bits: int = 1 << 20
    #: Number of bits/registers in each user's virtual sketch (CSE / vHLL).
    virtual_size: int = 256
    #: Register width in bits (the paper uses 5 for vHLL/FreeRS, 6 for HLL++).
    register_width: int = 5
    #: Relative super-spreader threshold Delta.  The paper uses 5e-5 on
    #: datasets with tens of millions of distinct pairs; the scaled-down
    #: stand-ins have ~100x fewer pairs, so the default threshold is scaled
    #: up by the same factor to keep targeting genuinely heavy users.
    delta: float = 5e-4
    #: Number of checkpoints for the over-time experiments (Figure 6).
    checkpoints: int = 10
    #: Master seed; every estimator derives its hash seeds from it.
    seed: int = 7
    #: Datasets included in multi-dataset experiments.
    datasets: list[str] = field(
        default_factory=lambda: [
            "sanjose",
            "chicago",
            "Twitter",
            "Flickr",
            "Orkut",
            "LiveJournal",
        ]
    )

    @property
    def registers(self) -> int:
        """Number of shared registers under the same memory budget."""
        return max(16, self.memory_bits // self.register_width)

    def scaled(self, dataset_scale: float) -> ExperimentConfig:
        """Return a copy with a different dataset scale."""
        return replace(self, dataset_scale=dataset_scale)

    @classmethod
    def quick(cls) -> ExperimentConfig:
        """Small configuration for tests and fast benchmark runs (seconds)."""
        return cls(
            dataset_scale=0.08,
            memory_bits=1 << 17,
            virtual_size=128,
            delta=5e-3,
            checkpoints=5,
            datasets=["sanjose", "chicago", "Orkut"],
        )

    @classmethod
    def full(cls) -> ExperimentConfig:
        """Configuration used for the EXPERIMENTS.md numbers (minutes)."""
        return cls(
            dataset_scale=0.5,
            memory_bits=1 << 20,
            virtual_size=256,
            delta=1e-3,
            checkpoints=10,
        )
