"""Ablation A2 — FreeBS versus FreeRS under equal memory.

Section IV-C of the paper predicts a cross-over between the two proposed
methods under the same memory budget (``M`` bits vs ``M/w`` registers):

* users whose pairs arrive *early* (while the shared structures are sparse)
  are estimated more accurately by FreeBS, because the bit array offers
  ``w`` times more cells than the register array;
* users that arrive *late*, after many distinct pairs have been observed,
  are estimated more accurately by FreeRS, whose sampling probability decays
  like ``M/(1.386 n)`` instead of ``e^(-n/M)``.

The ablation constructs a two-phase stream (an early user group followed by a
late user group, equal cardinalities) and reports each method's RSE per
group, plus the analytic variance bounds of Theorems 1 and 2 for context.
"""

from __future__ import annotations

import math

from repro.analysis.metrics import relative_standard_error
from repro.analysis.variance import freebs_rse_bound, freers_rse_bound
from repro.baselines.exact import ExactCounter
from repro.core import FreeBS, FreeRS
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import Table
from repro.streams.generators import interleaved_stream


def run(
    config: ExperimentConfig | None = None,
    group_users: int = 150,
    cardinality: int = 300,
) -> Table:
    """Compare FreeBS and FreeRS on early-arriving versus late-arriving users."""
    config = config or ExperimentConfig()
    pairs = interleaved_stream(
        early_users=group_users,
        late_users=group_users,
        cardinality=cardinality,
        seed=config.seed,
    )
    exact = ExactCounter()
    freebs = FreeBS(config.memory_bits, seed=config.seed)
    freers = FreeRS(config.registers, register_width=config.register_width, seed=config.seed)
    for user, item in pairs:
        exact.update(user, item)
        freebs.update(user, item)
        freers.update(user, item)
    truth = exact.cardinalities()
    early = {user: n for user, n in truth.items() if int(user) < group_users}
    late = {user: n for user, n in truth.items() if int(user) >= group_users}
    total = exact.total_cardinality
    table = Table(
        title=(
            "Ablation — FreeBS vs FreeRS under equal memory "
            f"(M={config.memory_bits} bits vs {config.registers} registers)"
        ),
        columns=["group", "method", "empirical_rse", "analytic_rse_bound"],
    )
    groups: dict[str, dict[object, int]] = {"early_users": early, "late_users": late}
    for group_name, group_truth in groups.items():
        # The analytic bound is evaluated at the stream load seen by that
        # group: half the total for the early group, the full total for the
        # late group.
        load = total / 2 if group_name == "early_users" else total
        table.add_row(
            group_name,
            "FreeBS",
            relative_standard_error(group_truth, freebs.estimates()),
            freebs_rse_bound(cardinality, load, config.memory_bits),
        )
        table.add_row(
            group_name,
            "FreeRS",
            relative_standard_error(group_truth, freers.estimates()),
            freers_rse_bound(cardinality, load, config.registers),
        )
    crossover = 0.772 * config.register_width * config.registers
    table.add_note(
        "paper Section IV-C: FreeBS wins while the distinct-pair count is below "
        f"~0.772*w*M = {math.floor(crossover)}; FreeRS wins beyond it"
    )
    return table
