"""Ablation A5 — register width ``w`` for the register-sharing methods.

The paper fixes 5-bit registers for vHLL/FreeRS (and 6-bit for HLL++) without
an ablation.  The width controls a three-way trade-off under a fixed memory
budget ``M`` bits:

* more bits per register ⇒ fewer registers (``M / w``), so more sharing noise
  and a larger sampling variance;
* fewer bits per register ⇒ earlier saturation (a ``w``-bit register caps at
  rank ``2^w - 1``), which truncates the estimation range to about
  ``(M/w) * 2^(2^w - 1)`` distinct pairs and biases heavy-user estimates down
  once the stream approaches it;
* ``w = 5`` caps the per-register rank at 31, i.e. a range of billions of
  pairs per register — effectively unbounded at any realistic load, which is
  why the paper's choice is safe.

This ablation sweeps ``w`` for FreeRS on one dataset stand-in and reports the
RSE split into light and heavy users, plus the implied register count and
range cap, so the trade-off is visible in one table.
"""

from __future__ import annotations


from repro.analysis.metrics import relative_standard_error
from repro.baselines.exact import ExactCounter
from repro.core import FreeRS
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import Table
from repro.streams.datasets import DATASETS

#: Register widths swept by the ablation (w = 5 is the paper's choice).
DEFAULT_WIDTHS = [3, 4, 5, 6, 8]


def run(
    config: ExperimentConfig | None = None,
    dataset: str = "Orkut",
    widths: list[int] | None = None,
) -> Table:
    """Sweep the register width for FreeRS under a fixed memory budget."""
    config = config or ExperimentConfig()
    widths = widths or DEFAULT_WIDTHS
    stream = DATASETS[dataset].load(scale=config.dataset_scale)
    pairs = stream.pairs()
    exact = ExactCounter()
    for user, item in pairs:
        exact.update(user, item)
    truth = exact.cardinalities()
    split = max(10, int(sorted(truth.values())[int(0.9 * len(truth))]))
    light = {user: n for user, n in truth.items() if 0 < n < split}
    heavy = {user: n for user, n in truth.items() if n >= split}

    table = Table(
        title=(
            f"Ablation — FreeRS register width under M={config.memory_bits} bits "
            f"({dataset}, heavy means n >= {split})"
        ),
        columns=["width_bits", "registers", "max_rank", "rse_light_users", "rse_heavy_users"],
    )
    for width in widths:
        registers = max(16, config.memory_bits // width)
        estimator = FreeRS(registers, register_width=width, seed=config.seed)
        for user, item in pairs:
            estimator.update(user, item)
        estimates: dict[object, float] = estimator.estimates()
        table.add_row(
            width,
            registers,
            (1 << width) - 1,
            relative_standard_error(light, estimates) if light else 0.0,
            relative_standard_error(heavy, estimates) if heavy else 0.0,
        )
    table.add_note(
        "w trades registers (sampling noise) against per-register range; the paper's "
        "w=5 keeps the range effectively unbounded while nearly maximising the register count"
    )
    return table
