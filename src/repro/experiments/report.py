"""Textual tables produced by the experiments.

The paper reports its results as figures and two tables; a terminal-only
reproduction renders everything as aligned text tables (one row per series
point).  :class:`Table` is intentionally tiny: column names, rows of values,
a title, and helpers to render, to convert to CSV, and to extract columns for
assertions in tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import csv
from dataclasses import dataclass, field
from pathlib import Path

Value = str | int | float


def _format_value(value: Value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A titled table of experiment results."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Value]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Value) -> None:
        """Append a row; the number of values must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values ({', '.join(self.columns)}), "
                f"got {len(values)}"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Attach a free-text note rendered under the table."""
        self.notes.append(note)

    def column(self, name: str) -> list[Value]:
        """Return all values of one column (for assertions and plots)."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"unknown column {name!r}; columns: {list(self.columns)}") from None
        return [row[index] for row in self.rows]

    def row_dicts(self) -> list[dict[str, Value]]:
        """Return the rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def render(self) -> str:
        """Render the table as aligned monospaced text."""
        header = [str(column) for column in self.columns]
        formatted_rows = [[_format_value(value) for value in row] for row in self.rows]
        widths = [len(column) for column in header]
        for row in formatted_rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(column.ljust(widths[i]) for i, column in enumerate(header)))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for row in formatted_rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self, path: str | Path) -> None:
        """Write the table to a CSV file."""
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self.rows)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_tables(tables: Iterable[Table]) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(table.render() for table in tables)
