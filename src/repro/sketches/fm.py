"""Flajolet–Martin probabilistic counting (PCSA variant, 1985).

The FM sketch keeps ``m`` bitmaps of ``width`` bits.  Every element is routed
to one bitmap and sets the bit whose position follows a Geometric(1/2) law;
the estimate is derived from the average position of the lowest unset bit
across bitmaps:

    n_hat = (m / phi) * 2^(mean lowest-unset-bit position)

with the standard PCSA correction factor ``phi ~= 0.77351``.

FM is the historical ancestor of LogLog/HLL and is included both for the
related-work ablations and because FreeRS registers are exactly FM/HLL
registers shared across users.
"""

from __future__ import annotations

import numpy as np

from repro.hashing import hash64, rho_from_hash

_PHI = 0.77351  # Flajolet & Martin's correction factor.


class FlajoletMartinSketch:
    """A PCSA sketch with ``m`` bitmaps of ``width`` bits each."""

    def __init__(self, m: int = 64, width: int = 32, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError("m must be positive")
        if width <= 0 or width > 56:
            raise ValueError("width must be in (0, 56]")
        self.m = m
        self.width = width
        self.seed = seed
        self._bitmaps = np.zeros(m, dtype=np.uint64)

    def add(self, item: object) -> bool:
        """Insert ``item``; return True if the insertion changed the sketch."""
        return self.add_hashed(hash64(item, seed=self.seed))

    def add_hashed(self, hash_value: int) -> bool:
        """Insert a pre-hashed 64-bit value."""
        bucket = hash_value % self.m
        suffix = hash_value // self.m
        position = rho_from_hash(suffix, self.width) - 1  # zero-based bit position
        position = min(position, self.width - 1)
        mask = np.uint64(1) << np.uint64(position)
        before = self._bitmaps[bucket]
        if before & mask:
            return False
        self._bitmaps[bucket] = before | mask
        return True

    def _lowest_unset_positions(self) -> np.ndarray:
        positions = np.zeros(self.m, dtype=np.int64)
        for i, bitmap in enumerate(self._bitmaps):
            value = int(bitmap)
            position = 0
            while value & 1:
                value >>= 1
                position += 1
            positions[i] = position
        return positions

    def estimate(self) -> float:
        """Return the PCSA cardinality estimate."""
        mean_position = float(self._lowest_unset_positions().mean())
        return (self.m / _PHI) * (2.0 ** mean_position - 1.0) if mean_position else 0.0

    def memory_bits(self) -> int:
        """Memory footprint of the sketch in bits."""
        return self.m * self.width

    def merge(self, other: FlajoletMartinSketch) -> None:
        """Merge another FM sketch built with the same parameters (bitwise OR)."""
        if (other.m, other.width, other.seed) != (self.m, self.width, self.seed):
            raise ValueError("can only merge FM sketches with identical parameters")
        self._bitmaps |= other._bitmaps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlajoletMartinSketch(m={self.m}, width={self.width})"
