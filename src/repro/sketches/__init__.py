"""Single-stream cardinality sketches and the array substrates they share.

This subpackage implements, from scratch, every sketch the paper builds on or
compares against:

* :class:`~repro.sketches.bitarray.BitArray` — packed bit array substrate.
* :class:`~repro.sketches.registers.RegisterArray` — packed w-bit register
  array substrate.
* :class:`~repro.sketches.lpc.LinearProbabilisticCounter` — LPC (Whang et
  al. 1990).
* :class:`~repro.sketches.fm.FlajoletMartinSketch` — FM / PCSA (Flajolet &
  Martin 1985).
* :class:`~repro.sketches.loglog.LogLogSketch` — LogLog (Durand & Flajolet
  2003).
* :class:`~repro.sketches.hll.HyperLogLog` — HLL (Flajolet et al. 2007).
* :class:`~repro.sketches.hllpp.HyperLogLogPlusPlus` — HLL++ (Heule et
  al. 2013).

These classes estimate the cardinality of a *single* multiset.  The per-user
streaming estimators live in :mod:`repro.core` and :mod:`repro.baselines`.
"""

from repro.sketches.bitarray import BitArray
from repro.sketches.registers import RegisterArray
from repro.sketches.lpc import LinearProbabilisticCounter
from repro.sketches.fm import FlajoletMartinSketch
from repro.sketches.loglog import LogLogSketch
from repro.sketches.hll import HyperLogLog, alpha_m
from repro.sketches.hllpp import HyperLogLogPlusPlus

__all__ = [
    "BitArray",
    "RegisterArray",
    "LinearProbabilisticCounter",
    "FlajoletMartinSketch",
    "LogLogSketch",
    "HyperLogLog",
    "HyperLogLogPlusPlus",
    "alpha_m",
]
