"""Packed bit array with constant-time zero-bit accounting.

The bit array is the shared substrate of LPC, CSE and FreeBS.  Both CSE and
FreeBS need to know, at every time step, how many bits of the array are still
zero (the "fill" of the array); FreeBS additionally needs that count to be
maintained in O(1) per update.  The array therefore tracks the number of set
bits incrementally and never recounts unless explicitly asked to
(:meth:`BitArray.recount`, used by the test-suite to cross-check the
incremental bookkeeping).

Bits are stored packed, 64 per ``numpy.uint64`` word, so a 2**20-bit array
costs 128 KiB rather than the 8 MiB a byte-per-bit representation would use.
"""

from __future__ import annotations

import numpy as np


class BitArray:
    """A fixed-size array of ``size`` bits, all initially zero."""

    __slots__ = ("size", "_words", "_ones")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        n_words = (size + 63) // 64
        self._words = np.zeros(n_words, dtype=np.uint64)
        self._ones = 0

    # -- mutation -----------------------------------------------------------

    def set_bit(self, index: int) -> bool:
        """Set bit ``index`` to one; return True if the bit was previously zero."""
        if not 0 <= index < self.size:
            raise IndexError(f"bit index {index} outside [0, {self.size})")
        word_index, bit = divmod(index, 64)
        mask = np.uint64(1) << np.uint64(bit)
        word = self._words[word_index]
        if word & mask:
            return False
        self._words[word_index] = word | mask
        self._ones += 1
        return True

    def set_bits(self, indices: np.ndarray) -> int:
        """Set many bits at once; return how many transitioned from 0 to 1.

        Duplicates inside ``indices`` are handled correctly (each bit is
        counted at most once).
        """
        return self.set_many(indices)

    def set_many(self, indices: np.ndarray) -> int:
        """Vectorised bulk bit-set; return how many bits transitioned 0 -> 1.

        This is the commit step of the engine's batch update paths: the word
        updates go through ``np.bitwise_or.at`` instead of a Python loop, so
        committing a batch costs O(unique bits) numpy work rather than one
        Python-level ``set_bit`` per bit.
        """
        idx = np.unique(np.asarray(indices, dtype=np.int64))
        if idx.size == 0:
            return 0
        if idx[0] < 0 or idx[-1] >= self.size:
            raise IndexError("bit index outside the array")
        word_indices = idx // 64
        masks = np.uint64(1) << (idx % 64).astype(np.uint64)
        newly_set = int(np.count_nonzero((self._words[word_indices] & masks) == 0))
        np.bitwise_or.at(self._words, word_indices, masks)
        self._ones += newly_set
        return newly_set

    def union_update(self, other: BitArray) -> None:
        """OR another same-size array into this one (sketch-level union).

        The storage primitive behind every bit-sketch merge (LPC, CSE,
        FreeBS): one vectorised word-wise OR plus a popcount recount.
        """
        if other.size != self.size:
            raise ValueError("can only union bit arrays of identical size")
        np.bitwise_or(self._words, other._words, out=self._words)
        self._ones = self.recount()

    def clear(self) -> None:
        """Reset every bit to zero."""
        self._words.fill(0)
        self._ones = 0

    # -- queries ------------------------------------------------------------

    def get_bit(self, index: int) -> bool:
        """Return True if bit ``index`` is one."""
        if not 0 <= index < self.size:
            raise IndexError(f"bit index {index} outside [0, {self.size})")
        word_index, bit = divmod(index, 64)
        return bool(self._words[word_index] >> np.uint64(bit) & np.uint64(1))

    def get_bits(self, indices: np.ndarray) -> np.ndarray:
        """Return a boolean array with the values of the requested bits."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise IndexError("bit index outside the array")
        words = self._words[idx // 64]
        return ((words >> (idx % 64).astype(np.uint64)) & np.uint64(1)).astype(bool)

    @property
    def ones(self) -> int:
        """Number of bits currently set to one (maintained incrementally)."""
        return self._ones

    @property
    def zeros(self) -> int:
        """Number of bits currently equal to zero."""
        return self.size - self._ones

    @property
    def zero_fraction(self) -> float:
        """Fraction of bits equal to zero (the ``U/M`` of LPC/CSE/FreeBS)."""
        return (self.size - self._ones) / self.size

    def recount(self) -> int:
        """Recount set bits from the raw words (O(size/64)); used for checks."""
        counts = np.bitwise_count(self._words) if hasattr(np, "bitwise_count") else None
        if counts is None:
            total = sum(int(word).bit_count() for word in self._words)
        else:
            total = int(counts.sum())
        return total

    def memory_bits(self) -> int:
        """Memory footprint of the bit payload in bits."""
        return self.size

    def to_numpy(self) -> np.ndarray:
        """Return the full array as a boolean numpy vector (for analysis)."""
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return bits[: self.size].astype(bool)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitArray(size={self.size}, ones={self._ones})"
