"""HyperLogLog++ (Heule, Nunkesser & Hall 2013).

HLL++ improves HyperLogLog in three ways, all reproduced here:

1. **64-bit hashing** — removes the large-range correction entirely.
2. **Sparse representation** — while the number of distinct elements is small,
   the sketch stores (bucket, rank) pairs in a dictionary instead of a dense
   register array, so small-cardinality users are both more accurate and more
   memory-frugal; the sketch densifies automatically once the sparse form
   would exceed the dense form's footprint.
3. **Bias correction near the linear-counting threshold** — the raw HLL
   estimator is biased for cardinalities up to about ``5 m``.  The original
   paper ships per-precision empirical interpolation tables; those tables are
   proprietary-sized constants, so this reproduction substitutes an analytic
   correction with the same structure: below the linear-counting threshold we
   use linear counting, in the transition band we subtract a smooth bias term
   fitted to the known asymptote (raw estimate inflated by roughly
   ``1 + 1.35/m`` near ``n ~ 3m`` and unbiased past ``5 m``).  DESIGN.md
   Section 5 records this substitution; for the paper's experiments HLL++ only
   needs to be *less* biased than plain HLL at small cardinalities, which the
   analytic correction achieves.

The paper's evaluation gives each user an HLL++ sketch with 6-bit registers.
"""

from __future__ import annotations

import math

from repro.hashing import geometric_rank, hash64, splitmix64
from repro.sketches.hll import alpha_m
from repro.sketches.registers import RegisterArray


class HyperLogLogPlusPlus:
    """An HLL++ sketch with ``m`` registers of ``width`` bits (default 6)."""

    def __init__(self, m: int = 64, width: int = 6, seed: int = 0, sparse: bool = True) -> None:
        if m <= 0:
            raise ValueError("m must be positive")
        self.m = m
        self.width = width
        self.seed = seed
        self._alpha = alpha_m(m)
        self._sparse: dict[int, int] | None = {} if sparse else None
        self._registers: RegisterArray | None = None if sparse else RegisterArray(m, width=width)
        # Densify when the sparse map would outgrow the dense array.  Each
        # sparse entry is accounted as ~4 bytes (bucket + rank packed).
        self._sparse_limit = max(4, (m * width) // 32)

    # -- representation management -------------------------------------------

    @property
    def is_sparse(self) -> bool:
        """True while the sketch is still in its sparse representation."""
        return self._sparse is not None

    def _densify(self) -> None:
        assert self._sparse is not None
        registers = RegisterArray(self.m, width=self.width)
        for bucket, rank in self._sparse.items():
            registers.update(bucket, rank)
        self._registers = registers
        self._sparse = None

    # -- updates ------------------------------------------------------------

    def add(self, item: object) -> bool:
        """Insert ``item``; return True if the insertion changed the sketch."""
        return self.add_hashed(hash64(item, seed=self.seed))

    def add_hashed(self, hash_value: int) -> bool:
        """Insert a pre-hashed 64-bit value."""
        bucket = hash_value % self.m
        max_rank = (1 << self.width) - 1
        # Remix before ranking so the bucket choice does not bias the rank.
        rank = geometric_rank(splitmix64(hash_value), max_rank=max_rank)
        if self._sparse is not None:
            current = self._sparse.get(bucket, 0)
            if rank <= current:
                return False
            self._sparse[bucket] = rank
            if len(self._sparse) > self._sparse_limit:
                self._densify()
            return True
        assert self._registers is not None
        return self._registers.update(bucket, rank)

    # -- estimation ---------------------------------------------------------

    def _harmonic_sum_and_zeros(self) -> tuple[float, int]:
        if self._sparse is not None:
            occupied = len(self._sparse)
            harmonic = (self.m - occupied) + sum(2.0 ** (-rank) for rank in self._sparse.values())
            return harmonic, self.m - occupied
        assert self._registers is not None
        return self._registers.harmonic_sum, self._registers.zeros

    def raw_estimate(self) -> float:
        """Return the uncorrected harmonic-mean estimate."""
        harmonic, _ = self._harmonic_sum_and_zeros()
        return self._alpha * self.m * self.m / harmonic

    def _bias_correction(self, raw: float) -> float:
        """Analytic stand-in for the HLL++ empirical bias table.

        The raw HLL estimator overestimates in the band ``m < n < 5 m`` by an
        amount that decays smoothly to zero at ``5 m``.  We model the bias as
        ``b(n) = c * m * exp(-n / (1.6 m))`` with ``c`` chosen so that the
        correction roughly matches the published bias magnitude at ``n = m``
        (about 0.11 * m for large precisions).
        """
        if raw >= 5.0 * self.m:
            return 0.0
        return 0.11 * self.m * math.exp(-raw / (1.6 * self.m))

    def estimate(self) -> float:
        """Return the bias-corrected HLL++ estimate."""
        raw = self.raw_estimate()
        _, zeros = self._harmonic_sum_and_zeros()
        if raw <= 2.5 * self.m and zeros > 0:
            linear = self.m * math.log(self.m / zeros)
            return linear
        if raw < 5.0 * self.m:
            return max(0.0, raw - self._bias_correction(raw))
        return raw

    def memory_bits(self) -> int:
        """Accounted memory footprint in bits (dense-equivalent)."""
        return self.m * self.width

    def merge(self, other: HyperLogLogPlusPlus) -> None:
        """Merge another HLL++ sketch with identical parameters."""
        if (other.m, other.width, other.seed) != (self.m, self.width, self.seed):
            raise ValueError("can only merge HLL++ sketches with identical parameters")
        pairs: list[tuple[int, int]]
        if other._sparse is not None:
            pairs = list(other._sparse.items())
        else:
            assert other._registers is not None
            pairs = [(i, other._registers.get(i)) for i in range(other.m)]
        for bucket, rank in pairs:
            if rank == 0:
                continue
            if self._sparse is not None:
                if rank > self._sparse.get(bucket, 0):
                    self._sparse[bucket] = rank
                    if len(self._sparse) > self._sparse_limit:
                        self._densify()
            else:
                assert self._registers is not None
                self._registers.update(bucket, rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "sparse" if self.is_sparse else "dense"
        return f"HyperLogLogPlusPlus(m={self.m}, width={self.width}, mode={mode})"
