"""LogLog cardinality estimation (Durand & Flajolet 2003).

LogLog keeps ``m`` registers, each storing the maximum Geometric(1/2) rank of
the elements routed to it, and estimates the cardinality from the *arithmetic*
mean of the registers:

    n_hat = alpha_loglog(m) * m * 2^(mean register)

HyperLogLog later replaced the arithmetic mean with the harmonic mean, which
is what the paper's register-sharing methods build on.  LogLog is included as
an ablation baseline and to exercise the shared RegisterArray substrate with
a second estimator.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing import geometric_rank, hash64, splitmix64
from repro.sketches.registers import RegisterArray


def loglog_alpha(m: int) -> float:
    """Return the LogLog bias-correction constant for ``m`` registers.

    The asymptotic constant is ``(Gamma(-1/m) * (1 - 2^(1/m)) / ln 2)^-m``,
    which converges to about 0.39701 for large ``m``; the closed form is used
    directly for every ``m`` larger than 2.
    """
    if m <= 2:
        return 0.39701
    gamma = math.gamma(-1.0 / m)
    return (gamma * (1.0 - 2.0 ** (1.0 / m)) / math.log(2.0)) ** (-m)


class LogLogSketch:
    """A LogLog sketch with ``m`` registers of ``width`` bits each."""

    def __init__(self, m: int = 64, width: int = 5, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError("m must be positive")
        self.m = m
        self.seed = seed
        self._registers = RegisterArray(m, width=width)
        self._alpha = loglog_alpha(m)

    def add(self, item: object) -> bool:
        """Insert ``item``; return True if the insertion changed the sketch."""
        return self.add_hashed(hash64(item, seed=self.seed))

    def add_hashed(self, hash_value: int) -> bool:
        """Insert a pre-hashed 64-bit value."""
        bucket = hash_value % self.m
        # Remix before ranking so the bucket choice does not bias the rank.
        rank = geometric_rank(splitmix64(hash_value), max_rank=self._registers.max_value)
        return self._registers.update(bucket, rank)

    def estimate(self) -> float:
        """Return the LogLog cardinality estimate."""
        mean_register = float(np.mean(self._registers.values.astype(np.float64)))
        return self._alpha * self.m * (2.0 ** mean_register)

    def memory_bits(self) -> int:
        """Memory footprint of the sketch in bits."""
        return self._registers.memory_bits()

    def merge(self, other: LogLogSketch) -> None:
        """Merge another LogLog sketch with identical parameters (register max)."""
        if (other.m, other.seed, other._registers.width) != (
            self.m,
            self.seed,
            self._registers.width,
        ):
            raise ValueError("can only merge LogLog sketches with identical parameters")
        for index in range(self.m):
            self._registers.update(index, other._registers.get(index))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogLogSketch(m={self.m})"
