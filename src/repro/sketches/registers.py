"""Packed array of w-bit registers with incremental harmonic-sum accounting.

Register arrays are the shared substrate of HLL, HLL++, vHLL and FreeRS.
Every HLL-style estimator needs the harmonic sum ``sum_j 2^-R[j]`` over its
registers; FreeRS additionally needs the harmonic sum of the *whole shared
array* to be available in O(1) after each update (it equals ``M * q_R(t)``).
The array therefore maintains the sum incrementally as registers grow, and
also tracks the number of zero registers (used by the small-range linear
counting correction of HLL/vHLL).

Registers are stored in a ``numpy.uint8`` vector.  The paper uses 5-bit
registers for vHLL/FreeRS and 6-bit registers for HLL++; we keep each
register in its own byte for simplicity but *account* memory as
``width * count`` bits so that the equal-memory comparisons of the paper are
faithful.  Register values are capped at ``2**width - 1``.
"""

from __future__ import annotations

import numpy as np


class RegisterArray:
    """A fixed-size array of ``count`` registers of ``width`` bits each."""

    __slots__ = (
        "count",
        "width",
        "max_value",
        "_values",
        "_harmonic_sum",
        "_zeros",
        "_pow_neg",
    )

    def __init__(self, count: int, width: int = 5) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        if not 1 <= width <= 8:
            raise ValueError("width must be between 1 and 8 bits")
        self.count = count
        self.width = width
        self.max_value = (1 << width) - 1
        self._values = np.zeros(count, dtype=np.uint8)
        # sum_j 2^-R[j]; all registers start at zero so the sum starts at count.
        self._harmonic_sum = float(count)
        self._zeros = count
        # 2^-r lookup table for the bulk update path; entries are computed
        # with the exact expression update() uses, so both paths accumulate
        # identical floats.
        self._pow_neg = [2.0 ** (-value) for value in range(self.max_value + 1)]

    # -- mutation -----------------------------------------------------------

    def update(self, index: int, rank: int) -> bool:
        """Raise register ``index`` to ``rank`` if larger; return True on change.

        ``rank`` is clipped to the register capacity ``2**width - 1``, exactly
        as a hardware register of that width would saturate.
        """
        if not 0 <= index < self.count:
            raise IndexError(f"register index {index} outside [0, {self.count})")
        rank = min(int(rank), self.max_value)
        current = int(self._values[index])
        if rank <= current:
            return False
        self._values[index] = rank
        self._harmonic_sum += 2.0 ** (-rank) - 2.0 ** (-current)
        if current == 0:
            self._zeros -= 1
        return True

    def apply_max_updates(self, indices: np.ndarray, ranks: np.ndarray):
        """Raise many registers sequentially; return per-event trajectories.

        The bulk twin of :meth:`update` for pre-filtered *change events*:
        every ``(index, rank)`` must strictly exceed the register's value at
        its turn (e.g. the output of
        :func:`repro.engine.kernels.register_change_events`).  The
        harmonic-sum and zero-count bookkeeping follows exactly the same
        sequential floating-point trajectory as calling :meth:`update` once
        per event; the returned arrays hold both statistics *after* each
        event, which is what the batch estimators need to reconstruct
        ``q_R`` / the global HLL estimate at any arrival position.
        """
        index_array = np.asarray(indices, dtype=np.int64)
        rank_array = np.minimum(np.asarray(ranks, dtype=np.int64), self.max_value)
        count = int(index_array.shape[0])
        harmonic_trajectory = np.empty(count, dtype=np.float64)
        zeros_trajectory = np.empty(count, dtype=np.int64)
        if count == 0:
            return harmonic_trajectory, zeros_trajectory
        if index_array.min() < 0 or index_array.max() >= self.count:
            raise IndexError("register index outside the array")
        table = self._pow_neg
        harmonic = self._harmonic_sum
        zeros = self._zeros
        current_values: dict = {}
        initial = self._values[index_array].astype(np.int64)
        position = 0
        for index, rank, start_value in zip(
            index_array.tolist(), rank_array.tolist(), initial.tolist()
        ):
            current = current_values.get(index, start_value)
            if rank <= current:
                raise ValueError(
                    "apply_max_updates expects strictly register-raising events"
                )
            harmonic += table[rank] - table[current]
            if current == 0:
                zeros -= 1
            current_values[index] = rank
            harmonic_trajectory[position] = harmonic
            zeros_trajectory[position] = zeros
            position += 1
        np.maximum.at(self._values, index_array, rank_array.astype(np.uint8))
        self._harmonic_sum = harmonic
        self._zeros = zeros
        return harmonic_trajectory, zeros_trajectory

    def merge_max(self, other: RegisterArray) -> None:
        """Element-wise max of another same-shape array into this one.

        The storage primitive behind every register-sketch merge (HLL-style
        unions): one vectorised maximum plus a recompute of the incremental
        statistics.
        """
        if (other.count, other.width) != (self.count, self.width):
            raise ValueError("can only merge register arrays of identical shape")
        np.maximum(self._values, other._values, out=self._values)
        self._harmonic_sum = self.recompute_harmonic_sum()
        self._zeros = self.recount_zeros()

    def clear(self) -> None:
        """Reset every register to zero."""
        self._values.fill(0)
        self._harmonic_sum = float(self.count)
        self._zeros = self.count

    # -- queries ------------------------------------------------------------

    def get(self, index: int) -> int:
        """Return the value of register ``index``."""
        if not 0 <= index < self.count:
            raise IndexError(f"register index {index} outside [0, {self.count})")
        return int(self._values[index])

    def get_many(self, indices: np.ndarray) -> np.ndarray:
        """Return the values of the requested registers as an int array."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.count):
            raise IndexError("register index outside the array")
        return self._values[idx].astype(np.int64)

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the raw register values."""
        return self._values

    @property
    def harmonic_sum(self) -> float:
        """``sum_j 2^-R[j]`` maintained incrementally (the core of q_R)."""
        return self._harmonic_sum

    @property
    def zeros(self) -> int:
        """Number of registers currently equal to zero."""
        return self._zeros

    def recompute_harmonic_sum(self) -> float:
        """Recompute the harmonic sum from scratch (test cross-check)."""
        return float(np.sum(np.exp2(-self._values.astype(np.float64))))

    def recount_zeros(self) -> int:
        """Recount zero registers from scratch (test cross-check)."""
        return int(np.count_nonzero(self._values == 0))

    def memory_bits(self) -> int:
        """Accounted memory footprint in bits (``count * width``)."""
        return self.count * self.width

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisterArray(count={self.count}, width={self.width})"
