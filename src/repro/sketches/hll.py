"""HyperLogLog (Flajolet, Fusy, Gandouet & Meunier 2007).

HLL keeps ``m`` registers storing the maximum Geometric(1/2) rank of the
elements routed to each register and estimates the cardinality with the
harmonic mean:

    n_raw = alpha_m * m^2 / sum_j 2^-R[j]

with two corrections taken from the original paper:

* small range: when ``n_raw < 2.5 m`` and some registers are still zero, the
  sketch is treated as an LPC bitmap and linear counting is used instead
  (this is the same switch the paper applies inside vHLL);
* large range (32-bit hash only): not needed here because ranks are derived
  from a 64-bit hash, as in HLL++.

``alpha_m`` follows the standard numeric values (0.673 / 0.697 / 0.709 and
the asymptotic formula for m >= 128) quoted in the paper.
"""

from __future__ import annotations

import math

from repro.hashing import geometric_rank, hash64, splitmix64
from repro.sketches.registers import RegisterArray


def alpha_m(m: int) -> float:
    """Return the HLL bias-correction constant ``alpha_m`` for ``m`` registers."""
    if m <= 0:
        raise ValueError("m must be positive")
    if m <= 16:
        return 0.673
    if m <= 32:
        return 0.697
    if m <= 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


def beta_m(m: int) -> float:
    """Return the asymptotic relative-standard-error constant ``beta_m``.

    ``RSE(HLL) ~= beta_m / sqrt(m)``; the values follow Flajolet et al.
    (1.106 at m=16 decreasing toward 1.039 asymptotically).
    """
    table = {16: 1.106, 32: 1.070, 64: 1.054, 128: 1.046}
    if m in table:
        return table[m]
    if m < 16:
        return 1.106
    return 1.039 + 0.9 / m


class HyperLogLog:
    """An HLL sketch with ``m`` registers of ``width`` bits each."""

    def __init__(self, m: int = 64, width: int = 5, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError("m must be positive")
        self.m = m
        self.seed = seed
        self._registers = RegisterArray(m, width=width)
        self._alpha = alpha_m(m)

    # -- updates ------------------------------------------------------------

    def add(self, item: object) -> bool:
        """Insert ``item``; return True if the insertion changed the sketch."""
        return self.add_hashed(hash64(item, seed=self.seed))

    def add_hashed(self, hash_value: int) -> bool:
        """Insert a pre-hashed 64-bit value."""
        bucket = hash_value % self.m
        # Derive the rank from an independent remix of the hash; using the
        # quotient hash//m directly would inject ~log2(m) spurious leading
        # zeros and bias every register upward.
        rank = geometric_rank(splitmix64(hash_value), max_rank=self._registers.max_value)
        return self._registers.update(bucket, rank)

    # -- estimation ---------------------------------------------------------

    def raw_estimate(self) -> float:
        """Return the uncorrected harmonic-mean estimate."""
        return self._alpha * self.m * self.m / self._registers.harmonic_sum

    def estimate(self) -> float:
        """Return the HLL estimate with the small-range (linear counting) switch."""
        raw = self.raw_estimate()
        if raw < 2.5 * self.m:
            zeros = self._registers.zeros
            if zeros > 0:
                return self.m * math.log(self.m / zeros)
        return raw

    def memory_bits(self) -> int:
        """Memory footprint of the sketch in bits."""
        return self._registers.memory_bits()

    @property
    def registers(self) -> RegisterArray:
        """The underlying register array (read access for analysis/tests)."""
        return self._registers

    def merge(self, other: HyperLogLog) -> None:
        """Merge another HLL sketch with identical parameters (register max)."""
        if (other.m, other.seed, other._registers.width) != (
            self.m,
            self.seed,
            self._registers.width,
        ):
            raise ValueError("can only merge HLL sketches with identical parameters")
        for index in range(self.m):
            self._registers.update(index, other._registers.get(index))

    # -- analytic error model -------------------------------------------------

    def analytic_standard_error(self) -> float:
        """Asymptotic relative standard error ``beta_m / sqrt(m)``."""
        return beta_m(self.m) / math.sqrt(self.m)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HyperLogLog(m={self.m})"
