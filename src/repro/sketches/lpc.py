"""Linear-Time Probabilistic Counting (Whang, Vander-Zanden & Taylor 1990).

LPC stores a bitmap of ``m`` bits.  Every distinct element hashes to one bit,
which is set to one; the cardinality is estimated from the fraction of bits
still zero:

    n_hat = -m * ln(U / m)

where ``U`` is the number of zero bits.  The estimator is accurate while the
bitmap is not saturated; its usable range is roughly ``[0, m ln m]`` and once
all bits are set (``U = 0``) the estimate is pinned to that maximum.

In the paper LPC appears twice: as a per-user baseline (each user gets its own
small bitmap under a shared memory budget) and as the substrate that CSE
virtualises.  The analytic bias and variance of the estimator
(Section III-A.1) are exposed as :meth:`LinearProbabilisticCounter.analytic_bias`
and :meth:`analytic_variance` so the test-suite can compare empirical errors
against the paper's formulas.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing import hash64
from repro.sketches.bitarray import BitArray


class LinearProbabilisticCounter:
    """An LPC sketch of ``m`` bits for a single multiset."""

    def __init__(self, m: int, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError("m must be positive")
        self.m = m
        self.seed = seed
        self._bits = BitArray(m)

    # -- updates ------------------------------------------------------------

    def add(self, item: object) -> bool:
        """Insert ``item``; return True if the insertion changed the sketch."""
        index = hash64(item, seed=self.seed) % self.m
        return self._bits.set_bit(index)

    def add_hashed(self, hash_value: int) -> bool:
        """Insert a pre-hashed 64-bit value (hot-path variant of :meth:`add`)."""
        return self._bits.set_bit(hash_value % self.m)

    def add_hashed_many(self, hash_values) -> int:
        """Insert many pre-hashed 64-bit values at once; return bits flipped.

        The vectorised twin of :meth:`add_hashed`, used by the engine's batch
        path for the per-user LPC baseline.  The final bitmap (and therefore
        the estimate) is identical to adding the values one by one.
        """
        values = np.asarray(hash_values, dtype=np.uint64)
        if values.size == 0:
            return 0
        indices = (values % np.uint64(self.m)).astype(np.int64)
        return self._bits.set_many(indices)

    # -- estimation ---------------------------------------------------------

    @property
    def zero_bits(self) -> int:
        """Number of zero bits ``U`` in the bitmap."""
        return self._bits.zeros

    @property
    def max_estimate(self) -> float:
        """Upper end of the usable estimation range, ``m ln m``."""
        return self.m * math.log(self.m)

    def estimate(self) -> float:
        """Return the LPC cardinality estimate ``-m ln(U/m)``.

        When the bitmap saturates (``U = 0``) the estimate is pinned at
        ``m ln m``, the maximum value the estimator can express.
        """
        zeros = self._bits.zeros
        if zeros == 0:
            return self.max_estimate
        return -self.m * math.log(zeros / self.m)

    def is_saturated(self) -> bool:
        """True when every bit is set and the estimate is pinned at its max."""
        return self._bits.zeros == 0

    def memory_bits(self) -> int:
        """Memory footprint of the sketch in bits."""
        return self._bits.memory_bits()

    def merge(self, other: LinearProbabilisticCounter) -> None:
        """Merge another LPC sketch built with the same ``m`` and seed.

        Merging ORs the bitmaps, which makes the merged sketch equal to the
        sketch of the union of the two input multisets.
        """
        if other.m != self.m or other.seed != self.seed:
            raise ValueError("can only merge LPC sketches with identical m and seed")
        self._bits.union_update(other._bits)

    # -- analytic error model (paper Section III-A.1) -------------------------

    def analytic_bias(self, true_cardinality: float) -> float:
        """Expected bias of the estimator at a given true cardinality."""
        load = true_cardinality / self.m
        return 0.5 * (math.exp(load) - load - 1.0)

    def analytic_variance(self, true_cardinality: float) -> float:
        """Approximate variance of the estimator at a given true cardinality."""
        load = true_cardinality / self.m
        return self.m * (math.exp(load) - load - 1.0)

    def analytic_standard_error(self, true_cardinality: float) -> float:
        """Relative standard error predicted by the analytic variance."""
        if true_cardinality <= 0:
            return 0.0
        return math.sqrt(self.analytic_variance(true_cardinality)) / true_cardinality

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinearProbabilisticCounter(m={self.m}, zeros={self._bits.zeros})"
