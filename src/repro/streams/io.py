"""Text IO for edge streams.

The on-disk format is deliberately minimal and interoperable: one edge per
line, ``user<sep>item``, with ``#``-prefixed comment lines ignored.  This is
the format of the SNAP / KONECT edge lists the paper's social-graph datasets
ship in, so a user of this library can drop in the real Twitter / Flickr /
Orkut / LiveJournal files if they have them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Tuple, Union

from repro.streams.stream import GraphStream

UserItemPair = Tuple[object, object]
PathLike = Union[str, Path]


def iter_edge_file(
    path: PathLike,
    separator: str | None = None,
    as_int: bool = True,
) -> Iterator[UserItemPair]:
    """Yield (user, item) pairs from an edge-list file.

    Parameters
    ----------
    path:
        File with one edge per line; lines starting with ``#`` are skipped.
    separator:
        Field separator; ``None`` means any whitespace.
    as_int:
        Parse endpoints as integers when possible (the common case for the
        public social-graph dumps); otherwise keep them as strings.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            fields = stripped.split(separator)
            if len(fields) < 2:
                raise ValueError(
                    f"{path}:{line_number}: expected at least two fields, got {stripped!r}"
                )
            user_raw, item_raw = fields[0], fields[1]
            if as_int:
                try:
                    yield int(user_raw), int(item_raw)
                    continue
                except ValueError:
                    pass
            yield user_raw, item_raw


def read_edge_file(
    path: PathLike,
    separator: str | None = None,
    as_int: bool = True,
    name: str | None = None,
) -> GraphStream:
    """Read an edge-list file into a replayable :class:`GraphStream`."""
    pairs = list(iter_edge_file(path, separator=separator, as_int=as_int))
    return GraphStream(pairs, name=name or Path(path).stem)


def write_edge_file(
    path: PathLike,
    pairs: Iterable[UserItemPair],
    separator: str = "\t",
    header: str | None = None,
) -> int:
    """Write (user, item) pairs to an edge-list file; return the edge count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for user, item in pairs:
            handle.write(f"{user}{separator}{item}\n")
            count += 1
    return count
