"""Text IO for edge streams.

The on-disk format is deliberately minimal and interoperable: one edge per
line, ``user<sep>item``, with ``#``-prefixed comment lines ignored.  This is
the format of the SNAP / KONECT edge lists the paper's social-graph datasets
ship in, so a user of this library can drop in the real Twitter / Flickr /
Orkut / LiveJournal files if they have them.

An optional third column carries the edge's arrival timestamp (a float),
which the continuous-monitoring subsystem uses for time-based epoching.
Files without the column keep working everywhere: readers fall back to the
monotonic event index, matching :meth:`repro.streams.GraphStream.timestamps`.
Because real edge dumps sometimes carry *other* third columns (weights,
labels), :func:`read_edge_file` only attaches an explicit arrival clock
when every line has a numeric third field and the sequence is
non-decreasing — the property actual timestamps have and weights almost
never do; anything else is ignored, preserving the historical "extra
fields are ignored" behaviour.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from pathlib import Path

from repro.streams.stream import GraphStream

UserItemPair = tuple[object, object]
TimedPair = tuple[object, object, float]
PathLike = str | Path


def _parse_endpoints(user_raw: str, item_raw: str, as_int: bool) -> UserItemPair:
    # Both endpoints parse as integers or neither does, preserving the
    # historical "homogeneous line" behaviour of this reader.
    if as_int:
        try:
            return int(user_raw), int(item_raw)
        except ValueError:
            pass
    return user_raw, item_raw


def iter_edge_file(
    path: PathLike,
    separator: str | None = None,
    as_int: bool = True,
) -> Iterator[UserItemPair]:
    """Yield (user, item) pairs from an edge-list file.

    Parameters
    ----------
    path:
        File with one edge per line; lines starting with ``#`` are skipped.
    separator:
        Field separator; ``None`` means any whitespace.
    as_int:
        Parse endpoints as integers when possible (the common case for the
        public social-graph dumps); otherwise keep them as strings.
    """
    for user, item, _ in iter_timed_edge_file(path, separator=separator, as_int=as_int):
        yield user, item


def _iter_rows(
    path: PathLike,
    separator: str | None,
    as_int: bool,
) -> Iterator[tuple]:
    """Yield ``(user, item, timestamp_or_None)`` rows; None = no numeric third field."""
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            fields = stripped.split(separator)
            if len(fields) < 2:
                raise ValueError(
                    f"{path}:{line_number}: expected at least two fields, got {stripped!r}"
                )
            timestamp = None
            if len(fields) >= 3:
                try:
                    timestamp = float(fields[2])
                except ValueError:
                    pass
            user, item = _parse_endpoints(fields[0], fields[1], as_int)
            yield user, item, timestamp


def iter_timed_edge_file(
    path: PathLike,
    separator: str | None = None,
    as_int: bool = True,
) -> Iterator[TimedPair]:
    """Yield (user, item, timestamp) triples from an edge-list file.

    The timestamp is the line's third field when present and numeric, and the
    zero-based event index otherwise (non-numeric third fields are treated as
    unrelated extra columns and ignored), so timestamp-less files replay with
    the default monotonic clock.
    """
    for index, (user, item, timestamp) in enumerate(_iter_rows(path, separator, as_int)):
        yield user, item, float(index) if timestamp is None else timestamp


def read_edge_file(
    path: PathLike,
    separator: str | None = None,
    as_int: bool = True,
    name: str | None = None,
) -> GraphStream:
    """Read an edge-list file into a replayable :class:`GraphStream`.

    When the file carries a timestamp column — a numeric, non-decreasing
    third field on every line — the timestamps are attached to the stream
    (``stream.has_timestamps``).  Two-column files, and files whose third
    column is some other attribute (a weight, a label), produce a plain
    stream whose :meth:`~GraphStream.timestamps` default to the event index.
    """
    pairs = []
    timestamps = []
    attach = True
    previous = None
    for user, item, timestamp in _iter_rows(path, separator, as_int):
        pairs.append((user, item))
        if timestamp is None or (previous is not None and timestamp < previous):
            attach = False
        previous = timestamp
        timestamps.append(timestamp)
    return GraphStream(
        pairs,
        name=name or Path(path).stem,
        timestamps=timestamps if attach and timestamps else None,
    )


def write_edge_file(
    path: PathLike,
    pairs: Iterable[UserItemPair],
    separator: str = "\t",
    header: str | None = None,
    timestamps: Sequence[float] | None = None,
) -> int:
    """Write (user, item) pairs to an edge-list file; return the edge count.

    With ``timestamps`` (one per pair, or a timestamped
    :class:`GraphStream`'s :meth:`~GraphStream.timestamps`), a third column is
    written so the arrival clock survives the file round-trip.
    """
    if timestamps is None and isinstance(pairs, GraphStream) and pairs.has_timestamps:
        timestamps = pairs.timestamps()
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        if timestamps is None:
            for user, item in pairs:
                handle.write(f"{user}{separator}{item}\n")
                count += 1
        else:
            timestamps = [float(value) for value in timestamps]
            # strict zip: a length mismatch in either direction is an error,
            # never a silent truncation.  repr() keeps full float precision
            # (Unix-epoch timestamps need more than %g's 6 digits).
            for (user, item), timestamp in zip(pairs, timestamps, strict=True):
                handle.write(f"{user}{separator}{item}{separator}{timestamp!r}\n")
                count += 1
    return count
