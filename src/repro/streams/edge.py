"""Edge model for bipartite graph streams.

The estimators themselves accept plain ``(user, item)`` tuples on their hot
path (creating an object per update would dominate the runtime of a pure
Python implementation), so :class:`Edge` is used at the boundaries: dataset
files, generators that need to carry timestamps, and the experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Edge:
    """One (user, item) occurrence in a graph stream.

    Attributes
    ----------
    user:
        Source endpoint (e.g. the monitored network host).
    item:
        Destination endpoint (e.g. the visited website).
    timestamp:
        Position of the edge in the stream; generators assign consecutive
        integers, file readers preserve whatever the file records.
    """

    user: object
    item: object
    timestamp: int = 0

    def as_pair(self) -> tuple[object, object]:
        """Return the (user, item) tuple consumed by the estimators."""
        return (self.user, self.item)

    def reversed(self) -> Edge:
        """Return the edge with endpoints swapped (for regular-graph streams)."""
        return Edge(user=self.item, item=self.user, timestamp=self.timestamp)
