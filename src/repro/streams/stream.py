"""Replayable graph streams.

A :class:`GraphStream` wraps a *factory* of (user, item) pairs so that the
same stream can be replayed for every estimator under comparison — essential
for the paper's experiments, where six methods must observe exactly the same
edge sequence.  Streams can be built from a list, a generator factory or a
file, and expose exact summary statistics (user count, per-user
cardinalities, total cardinality) computed on demand and cached.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence


UserItemPair = tuple[object, object]
TimedPair = tuple[object, object, float]


def materialize(pairs: Iterable[UserItemPair]) -> list[UserItemPair]:
    """Materialise a pair iterable into a list (convenience re-export)."""
    return list(pairs)


class GraphStream:
    """A replayable stream of (user, item) pairs with cached exact statistics."""

    def __init__(
        self,
        source: Callable[[], Iterable[UserItemPair]] | list[UserItemPair],
        name: str = "stream",
        timestamps: Sequence[float] | None = None,
    ) -> None:
        if callable(source):
            self._factory: Callable[[], Iterable[UserItemPair]] = source
            self._pairs: list[UserItemPair] | None = None
        else:
            pairs = list(source)
            self._pairs = pairs
            self._factory = lambda: pairs
        self.name = name
        self._timestamps: list[float] | None = (
            None if timestamps is None else [float(value) for value in timestamps]
        )
        if self._timestamps is not None and self._pairs is not None:
            if len(self._timestamps) != len(self._pairs):
                raise ValueError("timestamps must have one entry per pair")
        self._stats: dict[str, object] | None = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[UserItemPair], name: str = "stream") -> GraphStream:
        """Build a stream from an in-memory iterable of pairs."""
        return cls(list(pairs), name=name)

    # -- iteration -------------------------------------------------------------

    def __iter__(self) -> Iterator[UserItemPair]:
        return iter(self._factory())

    def pairs(self) -> list[UserItemPair]:
        """Return (and cache) the full list of pairs."""
        if self._pairs is None:
            self._pairs = list(self._factory())
            cached = self._pairs
            self._factory = lambda: cached
        return self._pairs

    def __len__(self) -> int:
        return len(self.pairs())

    def prefix(self, length: int) -> GraphStream:
        """Return a new stream containing only the first ``length`` pairs."""
        timestamps = None if self._timestamps is None else self._timestamps[:length]
        return GraphStream(
            self.pairs()[:length], name=f"{self.name}[:{length}]", timestamps=timestamps
        )

    # -- timestamps ------------------------------------------------------------

    @property
    def has_timestamps(self) -> bool:
        """True when explicit arrival timestamps were attached to this stream."""
        return self._timestamps is not None

    def timestamps(self) -> list[float]:
        """Arrival timestamps, one per pair.

        Defaults to the monotonic event index (0, 1, 2, ...) when no explicit
        timestamps were attached, so every existing dataset works unchanged
        with time-based consumers such as the monitoring subsystem.
        """
        if self._timestamps is not None:
            if len(self._timestamps) != len(self.pairs()):
                raise ValueError("timestamps must have one entry per pair")
            return list(self._timestamps)
        return [float(index) for index in range(len(self.pairs()))]

    def with_timestamps(self, timestamps: Sequence[float]) -> GraphStream:
        """Return a copy of this stream with explicit arrival timestamps."""
        return GraphStream(self.pairs(), name=self.name, timestamps=timestamps)

    def iter_timed(self) -> Iterator[TimedPair]:
        """Iterate ``(user, item, timestamp)`` triples."""
        return iter(
            [(user, item, ts) for (user, item), ts in zip(self.pairs(), self.timestamps())]
        )

    def to_int_arrays(self):
        """Return the stream as two numpy arrays ``(users, items)``.

        Only valid for all-integer streams (the common case for the public
        edge-list dumps); raises ``TypeError`` otherwise.  This is the input
        shape of the engine's fully-vectorised encoder
        (:meth:`repro.engine.EncodedBatch.from_int_arrays`), used by the
        high-rate replay benchmarks to skip the per-pair Python fold.
        """
        import numpy as np

        pairs = self.pairs()
        users = [user for user, _ in pairs]
        items = [item for _, item in pairs]
        if not all(isinstance(user, (int, np.integer)) for user in users) or not all(
            isinstance(item, (int, np.integer)) for item in items
        ):
            raise TypeError("to_int_arrays requires an all-integer stream")

        def as_array(values):
            array = np.asarray(values)
            if array.dtype.kind not in "iu":
                # Mixed negative / >= 2**63 ids coerce to float64 and would
                # silently merge distinct ids; keep them as exact objects.
                array = np.array(values, dtype=object)
            return array

        return as_array(users), as_array(items)

    # -- exact statistics ------------------------------------------------------

    def _compute_stats(self) -> dict[str, object]:
        cardinalities: dict[object, set] = {}
        total_pairs = 0
        for user, item in self:
            total_pairs += 1
            cardinalities.setdefault(user, set()).add(item)
        per_user = {user: len(items) for user, items in cardinalities.items()}
        return {
            "total_pairs": total_pairs,
            "user_count": len(per_user),
            "cardinalities": per_user,
            "total_cardinality": sum(per_user.values()),
            "max_cardinality": max(per_user.values()) if per_user else 0,
        }

    def stats(self) -> dict[str, object]:
        """Return exact summary statistics of the stream (cached)."""
        if self._stats is None:
            self._stats = self._compute_stats()
        return self._stats

    def cardinalities(self) -> dict[object, int]:
        """Exact per-user cardinalities."""
        return dict(self.stats()["cardinalities"])  # type: ignore[arg-type]

    @property
    def user_count(self) -> int:
        """Number of distinct users in the stream."""
        return int(self.stats()["user_count"])  # type: ignore[arg-type]

    @property
    def total_cardinality(self) -> int:
        """Sum of all user cardinalities (distinct pairs)."""
        return int(self.stats()["total_cardinality"])  # type: ignore[arg-type]

    @property
    def max_cardinality(self) -> int:
        """Largest per-user cardinality."""
        return int(self.stats()["max_cardinality"])  # type: ignore[arg-type]

    @property
    def duplicate_ratio(self) -> float:
        """Fraction of stream pairs that are duplicates of earlier pairs."""
        stats = self.stats()
        total_pairs = int(stats["total_pairs"])  # type: ignore[arg-type]
        if total_pairs == 0:
            return 0.0
        return 1.0 - int(stats["total_cardinality"]) / total_pairs  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphStream(name={self.name!r})"
