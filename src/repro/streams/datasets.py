"""Synthetic stand-ins for the paper's six evaluation datasets.

The paper evaluates on two CAIDA passive traces (equinix-sanjose,
equinix-chicago) and four social graphs (Twitter, Flickr, Orkut,
LiveJournal).  None of these can be redistributed, so this module registers
a synthetic stand-in per dataset whose *shape* matches the paper's Table I:

* the user-cardinality distribution is a truncated power law whose tail
  exponent and truncation are chosen so that the average cardinality
  (total / users) and the max/average ratio are close to the original,
* duplicates are injected at a per-dataset rate (traffic traces repeat
  edges heavily, social-graph crawls less so),
* everything is scaled down by ``scale`` (default ~1/300 of the original
  user population) so that pure-Python experiments finish in minutes; memory
  parameters in the experiments are scaled by the same factor, which keeps
  the load factor — the quantity that actually drives estimator error —
  faithful to the paper.

Users with the real datasets can bypass this module entirely:
``repro.streams.io.read_edge_file`` accepts the standard SNAP edge-list
format the originals ship in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.streams.generators import zipf_bipartite_stream
from repro.streams.stream import GraphStream

UserItemPair = tuple[int, int]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one dataset stand-in and the paper statistics it mimics."""

    name: str
    #: Paper Table I statistics of the original dataset.
    paper_users: int
    paper_max_cardinality: int
    paper_total_cardinality: int
    #: Stand-in generation parameters (at scale=1.0).
    n_users: int
    target_total_cardinality: int
    max_cardinality: int
    alpha: float
    duplicate_factor: float
    seed: int

    @property
    def paper_average_cardinality(self) -> float:
        """Average user cardinality of the original dataset."""
        return self.paper_total_cardinality / self.paper_users

    def generate(self, scale: float = 1.0, seed_offset: int = 0) -> list[UserItemPair]:
        """Materialise the stand-in stream, optionally scaled down further."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        n_users = max(50, int(self.n_users * scale))
        total = max(200, int(self.target_total_cardinality * scale))
        max_card = max(20, int(self.max_cardinality * min(1.0, scale * 2)))
        return zipf_bipartite_stream(
            n_users=n_users,
            n_pairs=total,
            alpha=self.alpha,
            max_cardinality=max_card,
            duplicate_factor=self.duplicate_factor,
            seed=self.seed + seed_offset,
        )

    def load(self, scale: float = 1.0, seed_offset: int = 0) -> GraphStream:
        """Return the stand-in as a replayable :class:`GraphStream`."""
        pairs = self.generate(scale=scale, seed_offset=seed_offset)
        return GraphStream(pairs, name=self.name)


#: Registry of dataset stand-ins, keyed by the paper's dataset names.
DATASETS: dict[str, DatasetSpec] = {
    "sanjose": DatasetSpec(
        name="sanjose",
        paper_users=8_387_347,
        paper_max_cardinality=313_772,
        paper_total_cardinality=23_073_907,
        n_users=20_000,
        target_total_cardinality=55_000,
        max_cardinality=800,
        alpha=1.9,
        duplicate_factor=1.0,
        seed=101,
    ),
    "chicago": DatasetSpec(
        name="chicago",
        paper_users=1_966_677,
        paper_max_cardinality=106_026,
        paper_total_cardinality=9_910_287,
        n_users=8_000,
        target_total_cardinality=40_000,
        max_cardinality=450,
        alpha=1.8,
        duplicate_factor=1.0,
        seed=102,
    ),
    "Twitter": DatasetSpec(
        name="Twitter",
        paper_users=40_103_281,
        paper_max_cardinality=2_997_496,
        paper_total_cardinality=1_468_365_182,
        n_users=6_000,
        target_total_cardinality=200_000,
        max_cardinality=5_000,
        alpha=1.25,
        duplicate_factor=0.3,
        seed=103,
    ),
    "Flickr": DatasetSpec(
        name="Flickr",
        paper_users=1_441_431,
        paper_max_cardinality=26_185,
        paper_total_cardinality=22_613_980,
        n_users=6_000,
        target_total_cardinality=90_000,
        max_cardinality=1_100,
        alpha=1.5,
        duplicate_factor=0.4,
        seed=104,
    ),
    "Orkut": DatasetSpec(
        name="Orkut",
        paper_users=2_997_376,
        paper_max_cardinality=31_949,
        paper_total_cardinality=223_534_301,
        n_users=4_000,
        target_total_cardinality=130_000,
        max_cardinality=2_000,
        alpha=1.3,
        duplicate_factor=0.4,
        seed=105,
    ),
    "LiveJournal": DatasetSpec(
        name="LiveJournal",
        paper_users=4_590_650,
        paper_max_cardinality=9_186,
        paper_total_cardinality=76_937_805,
        n_users=6_000,
        target_total_cardinality=100_000,
        max_cardinality=650,
        alpha=1.45,
        duplicate_factor=0.4,
        seed=106,
    ),
}


def dataset_names() -> list[str]:
    """Names of all registered dataset stand-ins, in the paper's order."""
    return list(DATASETS)


def load_dataset(name: str, scale: float = 1.0, seed_offset: int = 0) -> GraphStream:
    """Load a dataset stand-in by name.

    ``scale`` multiplies the stand-in's user population and total cardinality
    (use small values such as 0.1 for quick smoke runs); ``seed_offset``
    produces an independent realisation of the same dataset shape.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(DATASETS)
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from None
    return spec.load(scale=scale, seed_offset=seed_offset)
